//! The four L2 organisations compared in the paper (§5.2).

use nim_topology::PlacementPolicy;

/// Which L2 design a [`System`](crate::System) simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The prior-work baseline: Beckmann & Wood's CMP-DNUCA with perfect
    /// search — processors on the chip edges, migration enabled, and an
    /// oracle that knows each line's location without probing.
    CmpDnuca,
    /// Our 2D scheme: single layer, processors in the interior surrounded
    /// by banks, two-step search, migration enabled.
    CmpDnuca2d,
    /// Our 3D scheme *without* migration — isolates the benefit of the
    /// 3D topology itself.
    CmpSnuca3d,
    /// Our full 3D scheme with layer-aware migration.
    CmpDnuca3d,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::CmpDnuca,
        Scheme::CmpDnuca2d,
        Scheme::CmpSnuca3d,
        Scheme::CmpDnuca3d,
    ];

    /// Whether the scheme stacks multiple device layers.
    pub fn is_3d(self) -> bool {
        matches!(self, Scheme::CmpSnuca3d | Scheme::CmpDnuca3d)
    }

    /// Whether cache lines migrate toward their accessors.
    pub fn migrates(self) -> bool {
        !matches!(self, Scheme::CmpSnuca3d)
    }

    /// Whether the search is the baseline's perfect-location oracle.
    pub fn perfect_search(self) -> bool {
        matches!(self, Scheme::CmpDnuca)
    }

    /// The CPU placement policy the scheme uses. `cpus_exceed_pillars`
    /// selects Algorithm 1 (shared pillars) over maximal offsetting.
    pub fn placement(self, cpus_exceed_pillars: bool) -> PlacementPolicy {
        match self {
            Scheme::CmpDnuca => PlacementPolicy::Edges,
            Scheme::CmpDnuca2d => PlacementPolicy::Interior2d,
            Scheme::CmpSnuca3d | Scheme::CmpDnuca3d => {
                if cpus_exceed_pillars {
                    PlacementPolicy::Algorithm1 { k: 1 }
                } else {
                    PlacementPolicy::MaximalOffset
                }
            }
        }
    }

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::CmpDnuca => "CMP-DNUCA",
            Scheme::CmpDnuca2d => "CMP-DNUCA-2D",
            Scheme::CmpSnuca3d => "CMP-SNUCA-3D",
            Scheme::CmpDnuca3d => "CMP-DNUCA-3D",
        }
    }
}

impl core::fmt::Display for Scheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_match_the_paper() {
        assert!(!Scheme::CmpDnuca.is_3d());
        assert!(!Scheme::CmpDnuca2d.is_3d());
        assert!(Scheme::CmpSnuca3d.is_3d());
        assert!(Scheme::CmpDnuca3d.is_3d());
        assert!(Scheme::CmpDnuca.migrates());
        assert!(Scheme::CmpDnuca2d.migrates());
        assert!(!Scheme::CmpSnuca3d.migrates(), "SNUCA = static NUCA");
        assert!(Scheme::CmpDnuca3d.migrates());
        assert!(Scheme::CmpDnuca.perfect_search());
        assert!(!Scheme::CmpDnuca3d.perfect_search());
    }

    #[test]
    fn placement_policies() {
        assert_eq!(Scheme::CmpDnuca.placement(false), PlacementPolicy::Edges);
        assert_eq!(
            Scheme::CmpDnuca2d.placement(false),
            PlacementPolicy::Interior2d
        );
        assert_eq!(
            Scheme::CmpDnuca3d.placement(false),
            PlacementPolicy::MaximalOffset
        );
        assert_eq!(
            Scheme::CmpDnuca3d.placement(true),
            PlacementPolicy::Algorithm1 { k: 1 }
        );
    }

    #[test]
    fn labels_are_the_figure_names() {
        let labels: Vec<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            ["CMP-DNUCA", "CMP-DNUCA-2D", "CMP-SNUCA-3D", "CMP-DNUCA-3D"]
        );
        assert_eq!(Scheme::CmpSnuca3d.to_string(), "CMP-SNUCA-3D");
    }
}
