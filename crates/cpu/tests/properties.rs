//! Property-based tests for the in-order core and its L1 caches.

use nim_cpu::{CoreAction, InOrderCore, L1Cache};
use nim_types::{AccessKind, Address, CpuId, L1Config, TraceOp};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = TraceOp> {
    (0u32..20, 0usize..3, 0u64..64).prop_map(|(gap, kind, line)| TraceOp {
        gap,
        kind: [AccessKind::Read, AccessKind::Write, AccessKind::IFetch][kind],
        addr: Address(line * 64),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instruction accounting: the core retires exactly the instructions
    /// the trace describes (gap instructions plus one memory instruction
    /// per op), regardless of memory-system timing.
    #[test]
    fn no_instruction_is_lost_or_invented(
        ops in proptest::collection::vec(arb_op(), 1..100),
        mem_latency in 1u64..100,
    ) {
        let expected: u64 = ops.iter().map(|o| u64::from(o.gap) + 1).sum();
        let mut core = InOrderCore::new(CpuId(0), &L1Config::default());
        let mut it = ops.into_iter();
        let mut pending: Option<(u64, Address)> = None;
        let mut now = 0u64;
        while !core.is_halted() {
            now += 1;
            prop_assert!(now < 1_000_000, "core livelocked");
            if let Some((due, addr)) = pending {
                if due <= now {
                    core.data_returned(addr);
                    pending = None;
                }
            }
            match core.tick(&mut || it.next()) {
                CoreAction::Request(r) if r.kind == AccessKind::Write => {
                    core.store_completed();
                }
                CoreAction::Request(r) => {
                    pending = Some((now + mem_latency, r.addr));
                }
                _ => {}
            }
        }
        prop_assert_eq!(core.stats().instructions, expected);
        // A single-issue core can never exceed IPC 1.
        prop_assert!(core.stats().instructions <= core.stats().cycles + 1);
    }

    /// The L1 never holds more lines than its capacity, and lookups agree
    /// with a model set.
    #[test]
    fn l1_matches_a_reference_model(
        addrs in proptest::collection::vec(0u64..2048, 1..300),
    ) {
        let cfg = L1Config::default();
        let mut l1 = L1Cache::new(&cfg);
        let mut resident = std::collections::HashSet::new();
        for a in addrs {
            let addr = Address(a * 64);
            let hit = l1.access(addr);
            prop_assert_eq!(hit, resident.contains(&addr.line(64)), "model mismatch");
            if !hit {
                if let Some(evicted) = l1.fill(addr) {
                    prop_assert!(resident.remove(&evicted), "evicted a ghost");
                }
                resident.insert(addr.line(64));
            }
            prop_assert!(l1.occupancy() <= cfg.lines() as usize);
            prop_assert_eq!(l1.occupancy(), resident.len());
        }
    }

    /// skip() must preserve the same instruction totals a tick-by-tick
    /// execution produces.
    #[test]
    fn skipping_is_observationally_equivalent(
        gaps in proptest::collection::vec(2u32..60, 1..30),
    ) {
        let mk_ops = |gaps: &[u32]| -> Vec<TraceOp> {
            gaps.iter()
                .map(|&g| TraceOp {
                    gap: g,
                    kind: AccessKind::Write,
                    addr: Address(0x40),
                })
                .collect()
        };
        let run = |ops: Vec<TraceOp>, use_skip: bool| -> (u64, u64) {
            let mut core = InOrderCore::new(CpuId(0), &L1Config::default());
            let mut it = ops.into_iter();
            let mut guard = 0;
            while !core.is_halted() {
                guard += 1;
                assert!(guard < 1_000_000);
                if use_skip {
                    let s = core.skippable_cycles();
                    if s > 0 && s != u64::MAX {
                        core.skip(s);
                        continue;
                    }
                }
                if let CoreAction::Request(_) = core.tick(&mut || it.next()) {
                    core.store_completed();
                }
            }
            (core.stats().instructions, core.stats().cycles)
        };
        let (i1, c1) = run(mk_ops(&gaps), false);
        let (i2, c2) = run(mk_ops(&gaps), true);
        prop_assert_eq!(i1, i2, "instructions differ under skipping");
        prop_assert_eq!(c1, c2, "cycles differ under skipping");
    }
}
