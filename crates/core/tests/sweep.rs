//! The design-space sweep driver: the generalisation of Figures 17/18
//! into the full (layers × pillars) grid.

use nim_core::experiments::{sweep_design_space, ExperimentScale};
use nim_core::Scheme;
use nim_workload::BenchmarkProfile;

#[test]
fn sweep_covers_the_grid_and_skips_unbuildable_cells() {
    let bench = BenchmarkProfile::art();
    let cells = sweep_design_space(
        Scheme::CmpSnuca3d,
        &bench,
        &[2, 4],
        &[8],
        ExperimentScale::quick(),
    )
    .unwrap();
    assert_eq!(cells.len(), 2);
    let l2 = cells.iter().find(|c| c.layers == 2).unwrap();
    let l4 = cells.iter().find(|c| c.layers == 4).unwrap();
    assert!(
        l4.report.avg_l2_hit_latency() < l2.report.avg_l2_hit_latency(),
        "the sweep reproduces the Fig. 18 gradient"
    );
    // An unbuildable cell (5 layers do not divide 16 clusters) is skipped,
    // not an error.
    let with_bad = sweep_design_space(
        Scheme::CmpSnuca3d,
        &bench,
        &[2, 5],
        &[8],
        ExperimentScale::quick(),
    )
    .unwrap();
    assert_eq!(with_bad.len(), 1, "the 5-layer cell is unbuildable");
    assert_eq!(with_bad[0].layers, 2);
}
