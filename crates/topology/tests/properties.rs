//! Property-based tests: geometry round-trips and placement invariants
//! hold for every configuration the workspace can express.

use nim_topology::{ChipLayout, PlacementPolicy};
use nim_types::{ClusterId, SystemConfig};
use proptest::prelude::*;

/// Configurations with power-of-two geometry where clusters divide layers.
fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (0u8..=3, 1u16..=8, 2u32..=6).prop_map(|(layer_log, pillars, bank_log)| {
        let mut cfg = SystemConfig::default();
        cfg.network.layers = 1 << layer_log;
        cfg.network.pillars = pillars;
        cfg.l2.banks_per_cluster = 1 << bank_log;
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_index_round_trips_everywhere(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            prop_assert_eq!(layout.node_index(c), i);
        }
    }

    #[test]
    fn banks_and_nodes_are_a_bijection(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let mut seen = vec![false; layout.num_nodes()];
        for b in 0..cfg.l2.total_banks() {
            let c = layout.coord_of_bank(nim_types::BankId(b));
            prop_assert_eq!(layout.bank_at(c), nim_types::BankId(b));
            let idx = layout.node_index(c);
            prop_assert!(!seen[idx], "two banks on one node");
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clusters_partition_the_mesh(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let mut counts = vec![0usize; layout.num_clusters() as usize];
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            counts[layout.cluster_of(c).index()] += 1;
        }
        let per_cluster = cfg.l2.banks_per_cluster as usize;
        prop_assert!(counts.iter().all(|&n| n == per_cluster));
    }

    #[test]
    fn placements_never_collide(
        cfg in arb_config(),
        policy_idx in 0usize..5,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let policy = [
            PlacementPolicy::MaximalOffset,
            PlacementPolicy::Algorithm1 { k: 1 },
            PlacementPolicy::Stacked,
            PlacementPolicy::Edges,
            PlacementPolicy::Interior2d,
        ][policy_idx];
        if let Ok(seats) = policy.place(&layout, cfg.num_cpus) {
            let set: std::collections::HashSet<_> =
                seats.iter().map(|s| s.coord).collect();
            prop_assert_eq!(set.len(), seats.len(), "seats distinct");
            let pillar_based = matches!(
                policy,
                PlacementPolicy::MaximalOffset
                    | PlacementPolicy::Algorithm1 { .. }
                    | PlacementPolicy::Stacked
            );
            for s in &seats {
                prop_assert!(layout.contains(s.coord), "seat on the mesh");
                if layout.layers() > 1 && pillar_based {
                    prop_assert!(s.pillar.is_some(), "3D seats carry a pillar");
                }
            }
        }
    }

    #[test]
    fn lateral_and_vertical_neighbours_are_symmetric(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        for a in 0..layout.num_clusters() {
            let a = ClusterId(a);
            for b in layout.lateral_neighbors(a) {
                prop_assert!(layout.lateral_neighbors(b).contains(&a));
            }
            for b in layout.vertical_neighbors(a) {
                prop_assert!(layout.vertical_neighbors(b).contains(&a));
            }
        }
    }
}
