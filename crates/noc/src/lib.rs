//! Cycle-accurate 3D network-on-chip with dTDMA vertical bus pillars.
//!
//! This crate is the communication substrate of the network-in-memory
//! architecture (paper §3): wormhole-switched 2D meshes on every device
//! layer — single-stage routers, 3 virtual channels per physical channel,
//! dimension-order routing, 128-bit flits — joined vertically by dTDMA
//! bus *communication pillars* that give single-hop transfer between any
//! two layers. The rejected 7-port full-3D-mesh router is also available
//! ([`VerticalMode::Mesh3d`]) so the paper's design-search comparison can
//! be reproduced.
//!
//! # Examples
//!
//! ```
//! use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
//! use nim_topology::ChipLayout;
//! use nim_types::{Coord, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::default();
//! let layout = ChipLayout::new(&cfg)?;
//! let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
//!
//! // A 64 B cache line crosses from layer 0 to layer 1 as one 4-flit packet.
//! let src = Coord::new(3, 3, 0);
//! let dst = Coord::new(5, 2, 1);
//! net.send(SendRequest {
//!     src,
//!     dst,
//!     via: layout.nearest_pillar(src),
//!     class: TrafficClass::Data,
//!     flits: 4,
//!     token: 0,
//! });
//! net.run_until_idle(1_000).expect("uncongested traffic drains");
//! assert_eq!(net.stats().packets_delivered, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtdma;
mod latency;
mod network;
mod packet;
mod router;
mod routing;
mod stats;
mod vc;

pub use dtdma::BusStats;
pub use latency::{zero_load_path, ZeroLoadPath};
pub use network::{Network, WindowStats};
pub use packet::{Delivered, FlitKind, SendRequest, TrafficClass};
pub use routing::VerticalMode;
pub use stats::{LatencyHistogram, NetworkStats};
