//! Error types for system construction and simulation runs.

use core::error::Error;
use core::fmt;

use nim_topology::{PlacementError, TopologyError};
use nim_types::ConfigError;

/// Error building a [`System`](crate::System).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// The chip geometry could not be derived.
    Topology(TopologyError),
    /// CPUs could not be seated.
    Placement(PlacementError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid configuration: {e}"),
            BuildError::Topology(e) => write!(f, "invalid topology: {e}"),
            BuildError::Placement(e) => write!(f, "CPU placement failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            BuildError::Topology(e) => Some(e),
            BuildError::Placement(e) => Some(e),
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<TopologyError> for BuildError {
    fn from(e: TopologyError) -> Self {
        BuildError::Topology(e)
    }
}

impl From<PlacementError> for BuildError {
    fn from(e: PlacementError) -> Self {
        BuildError::Placement(e)
    }
}

/// Error during a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// No L2 transaction completed for an implausibly long time — a
    /// protocol deadlock or livelock.
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Transactions completed before the stall.
        completed: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stalled { cycle, completed } => write!(
                f,
                "simulation stalled at cycle {cycle} after {completed} transactions"
            ),
        }
    }
}

impl Error for RunError {}

/// Error taking or restoring a simulator snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// [`System::snapshot`](crate::System::snapshot) was called with no
    /// run in progress — there is no mid-flight state to capture.
    NoRunInProgress,
    /// The clock does not sit on an epoch boundary (sampling is on and
    /// no sample row was recorded at the current cycle). Pause the run
    /// with [`System::run_until`](crate::System::run_until), which
    /// stops only at legal boundaries.
    NotEpochBoundary {
        /// The illegal cycle at which the snapshot was attempted.
        cycle: u64,
    },
    /// The snapshot bytes are malformed: truncated, version-skewed, or
    /// inconsistent with the recorded configuration.
    Codec(nim_types::codec::CodecError),
    /// Reading or writing the snapshot file failed.
    Io(String),
    /// The recorded configuration no longer builds (e.g. the snapshot
    /// was edited, or geometry validation rules changed).
    Build(BuildError),
    /// The snapshot names a benchmark this binary does not know.
    UnknownBenchmark(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NoRunInProgress => {
                write!(f, "no run in progress: nothing to snapshot")
            }
            SnapshotError::NotEpochBoundary { cycle } => write!(
                f,
                "cycle {cycle} is not an epoch boundary; pause with run_until first"
            ),
            SnapshotError::Codec(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::Build(e) => write!(f, "snapshot configuration does not build: {e}"),
            SnapshotError::UnknownBenchmark(name) => {
                write!(f, "snapshot names unknown benchmark '{name}'")
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Codec(e) => Some(e),
            SnapshotError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nim_types::codec::CodecError> for SnapshotError {
    fn from(e: nim_types::codec::CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl From<BuildError> for SnapshotError {
    fn from(e: BuildError) -> Self {
        SnapshotError::Build(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = BuildError::Config(ConfigError::Zero("num_cpus"));
        assert!(e.to_string().contains("num_cpus"));
        let e = RunError::Stalled {
            cycle: 10,
            completed: 3,
        };
        assert!(e.to_string().contains("cycle 10"));
        let e = SnapshotError::NotEpochBoundary { cycle: 77 };
        assert!(e.to_string().contains("cycle 77"));
        let e = SnapshotError::from(nim_types::codec::CodecError::BadMagic);
        assert!(e.source().is_some());
    }
}
