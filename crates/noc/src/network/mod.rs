//! The cycle-accurate network engine.
//!
//! [`Network`] owns every router, pillar bus, injection queue, and delivery
//! queue of the chip and advances them one clock cycle per [`Network::tick`].
//! Each cycle runs three phases:
//!
//! 1. **Bus phase** ([`bus_phase`]) — every dTDMA pillar transfers at most
//!    one flit from a transceiver interface to the destination layer's
//!    pillar router (round-robin over active interfaces = dynamic slot
//!    allocation).
//! 2. **Router phase** ([`router_phase`]) — every active router performs
//!    switch allocation: per output port, the winning flit traverses to
//!    the next router's input VC (single-stage router: one hop per cycle
//!    on a win).
//! 3. **Injection phase** ([`injection`]) — each node's network interface
//!    streams at most one flit of its oldest pending packet into a
//!    local-input VC.
//!
//! A flit stamped `arrived == now` cannot move again in the same cycle, so
//! ordering of phases never lets a flit traverse two hops per cycle.
//! Routers with no buffered flits are skipped entirely via a dirty list,
//! buses with nothing queued via an active-pillar list, which keeps big
//! idle meshes cheap to tick.
//!
//! Beyond per-cycle ticking, [`Network::next_event_at`] reports the
//! earliest future cycle at which any phase could change state, and
//! [`Network::advance_to`] batch-advances the clock across the provably
//! dead span before it — the hook `System::run` uses to skip serialisation
//! stalls and event waits even with traffic in flight.
//!
//! All mutable per-node state — routers, VC flit storage, injection
//! queues, dirty lists, and the transceiver interfaces of the pillar
//! nodes it owns — is grouped into one [`ShardState`] per *shard*: a
//! contiguous run of cluster rows ([`nim_topology::ShardPlan`]), which
//! may be whole device layers or horizontal bands within one. The
//! sequential tick runs all shards through a single whole-chip
//! [`lane::Lane`] (cross-shard mesh hops move a flit between two shard
//! arenas, which the lane handles natively); the window executor gives
//! each shard its own single-shard lane, where a cross-shard hop is
//! impossible by construction — the conservative mesh-boundary
//! lookahead in [`window`] ends every window before one could occur.
//! The default single shard makes the whole chip one region and behaves
//! exactly like the pre-sharding engine.

mod bus_phase;
mod injection;
mod lane;
mod router_phase;
mod snapshot;
mod window;

use std::collections::VecDeque;

use nim_obs::{Category, EventData, Obs};
use nim_topology::{ChipLayout, RouteMap, ShardPlan};
use nim_types::{Coord, Cycle, Dir, NetworkConfig, PacketId};

use crate::dtdma::{BusStats, DtdmaBus, Iface};
use crate::packet::{Delivered, Flit, FlitArena, SendRequest};
use crate::router::Router;
use crate::routing::VerticalMode;
use crate::stats::NetworkStats;

use lane::DeferredHop;
use window::SpawnTuner;
pub use window::WindowStats;

/// One pending packet at a node's network interface.
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: PacketId,
    req: SendRequest,
    seq: u32,
    injected: Cycle,
}

/// Per-node injection state.
#[derive(Clone, Debug, Default)]
struct Injector {
    queue: VecDeque<Pending>,
    /// VC the current packet is streaming into.
    vc: Option<usize>,
}

/// One movable head flit found during a router's single input scan,
/// with its route already computed (look-ahead routing runs once per
/// flit instead of once per output port probed).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    /// `in_dir * vcs + vc`, the round-robin arbitration slot.
    slot: u16,
    /// Output port the flit requests.
    out: Dir,
    flit: Flit,
}

/// The mutable state owned by one shard: a contiguous run of cluster
/// rows whose router and injection phases can advance between windows
/// without touching any other shard.
///
/// The flit arena, work lists, and scratch buffers are per-shard so a
/// shard's phases never share a cache line (or a `&mut`) with another
/// shard's. The dTDMA transceiver interfaces of the pillar nodes the
/// shard owns live here too — a vertical move fills the sender's own
/// interface; only the (sequential) bus phase drains interfaces across
/// shards.
#[derive(Clone, Debug, Default)]
pub(super) struct ShardState {
    /// Pooled backing store for every VC and transceiver FIFO of the
    /// shard's nodes.
    arena: FlitArena,
    /// Transceiver interfaces of the shard's pillar nodes; slot indices
    /// live in the network-global [`Network`]`::iface_slots` table.
    ifaces: Vec<Iface>,
    /// Routers (global node ids) with buffered flits.
    dirty: Vec<u32>,
    /// Nodes (global ids) with packets pending injection.
    inj_active: Vec<u32>,
    /// Retired work lists, kept to reuse their capacity each cycle.
    dirty_scratch: Vec<u32>,
    inj_scratch: Vec<u32>,
    cand_scratch: Vec<Candidate>,
    /// Buses that received a flit since the last settle
    /// ([`Network::settle_touched`] folds them into the active list and
    /// peak-occupancy statistics at the next barrier).
    touched_buses: Vec<u16>,
    in_touched: Vec<bool>,
}

/// The on-chip network: stacked wormhole meshes joined by dTDMA pillars
/// (or by a full 3D mesh in the ablation mode).
#[derive(Clone, Debug)]
pub struct Network {
    layout: ChipLayout,
    /// Precomputed nearest-pillar table (decision-identical to the
    /// layout's linear scan) — the O(1) fallback for unpinned routes.
    routes: RouteMap,
    mode: VerticalMode,
    vcs: usize,
    /// Cycles a flit dwells in a router before it may leave (Table 4:
    /// 1-cycle single-stage router; the 7-port ablation uses 2).
    router_latency: u64,
    /// Bus cycles per flit on the pillars (1 for a flit-wide bus; more
    /// when the via budget only affords a narrower vertical bus).
    bus_cycles_per_flit: u64,
    /// Per-bus earliest next grant time (serialisation of narrow buses).
    bus_ready_at: Vec<u64>,
    routers: Vec<Router>,
    buses: Vec<DtdmaBus>,
    /// Bus index at each node position, if the node is a pillar node.
    bus_of_node: Vec<Option<u16>>,
    injectors: Vec<Injector>,
    outbox: Vec<VecDeque<Delivered>>,
    delivered_nodes: Vec<u32>,
    in_delivered: Vec<bool>,
    in_dirty: Vec<bool>,
    in_inj: Vec<bool>,
    /// Buses with at least one queued flit (the pillar analogue of the
    /// router dirty list).
    bus_active: Vec<u16>,
    in_bus_active: Vec<bool>,
    /// Per-shard mutable state; one entry when unsharded.
    shards: Vec<ShardState>,
    /// How the chip is cut: cluster-row shard geometry plus the
    /// y-band/boundary tables the window planner's mesh-boundary
    /// lookahead reads.
    plan: ShardPlan,
    /// Nodes per shard (cluster-row cuts keep a shard's nodes
    /// contiguous under layer-major indexing, so
    /// `node / nodes_per_shard` is its shard).
    nodes_per_shard: usize,
    /// Where each pillar bus's per-layer transceiver interface lives,
    /// indexed `bus * layers + layer`.
    iface_slots: Vec<IfaceSlot>,
    /// Worker threads the window executor may use (≤ shard count).
    window_workers: usize,
    /// Minimum window length (cycles) before threads are spawned;
    /// shorter windows run inline, bit-identically. Calibrated at run
    /// time by [`SpawnTuner`] unless forced via
    /// [`Network::set_window_tuning`].
    window_spawn_min: u64,
    /// Spawn-threshold calibration state.
    tuner: SpawnTuner,
    /// Window-executor activity counters — diagnostics only, kept out
    /// of [`NetworkStats`] so results stay bit-identical across shard
    /// counts.
    win_stats: WindowStats,
    /// Per-shard deferred-hop buffers and the merge scratch, reused
    /// across windows.
    hop_bufs: Vec<Vec<DeferredHop>>,
    hop_scratch: Vec<DeferredHop>,
    /// Retired bus work list, kept to reuse its capacity each tick.
    bus_scratch: Vec<u16>,
    now: Cycle,
    next_pkt: u64,
    flits_in_flight: u64,
    stats: NetworkStats,
    /// Flit traversals through each router (node-indexed), for
    /// utilisation maps and hotspot analysis.
    traversals: Vec<u64>,
    /// Observability sink; disabled by default (one branch per event).
    obs: Obs,
}

/// A [`Coord`] as the `[x, y, layer]` triple trace events carry.
#[inline]
fn c3(c: Coord) -> [u16; 3] {
    [u16::from(c.x), u16::from(c.y), u16::from(c.layer)]
}

/// Where a pillar bus's transceiver interface for one layer lives:
/// the shard owning that layer's pillar node, and the interface's slot
/// in the shard's `ifaces` list.
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct IfaceSlot {
    pub shard: u32,
    pub slot: u32,
}

impl Network {
    /// Builds the network for a chip layout as a single shard — the
    /// plain sequential engine.
    ///
    /// `mode` selects the vertical interconnect: [`VerticalMode::Pillars`]
    /// is the paper's hybrid NoC/bus design; [`VerticalMode::Mesh3d`] is
    /// the rejected 7-port router kept for the design-search ablation.
    pub fn new(layout: &ChipLayout, cfg: &NetworkConfig, mode: VerticalMode) -> Self {
        Self::new_sharded(layout, cfg, mode, 1)
    }

    /// Builds the network cut into `shards` independently-advancing
    /// cluster-row bands, run concurrently between coupling events by
    /// [`Network::advance_window`].
    ///
    /// The request is clamped to the largest divisor of the chip's
    /// cluster-row count (`layers × cluster-grid height`; 1 for
    /// single-layer chips or the 3D-mesh ablation), so any value is
    /// safe; results are bit-identical for every shard count.
    pub fn new_sharded(
        layout: &ChipLayout,
        cfg: &NetworkConfig,
        mode: VerticalMode,
        shards: usize,
    ) -> Self {
        let vcs = cfg.vcs_per_port as usize;
        let depth = cfg.vc_depth_flits as usize;
        let n = layout.num_nodes();
        // Only pillar mode keeps all router-phase traffic within a layer
        // band; the 3D-mesh ablation's `Up`/`Down` hops cross layers
        // freely, so it cannot be cut.
        let plan = if mode == VerticalMode::Pillars && layout.layers() > 1 {
            ShardPlan::new(layout, shards)
        } else {
            ShardPlan::new(layout, 1)
        };
        let num_shards = plan.shards();
        let nodes_per_shard = plan.nodes_per_shard();
        let mut shard_states: Vec<ShardState> =
            (0..num_shards).map(|_| ShardState::default()).collect();
        let mut routers = Vec::with_capacity(n);
        let mut bus_of_node = vec![None; n];
        for i in 0..n {
            let c = layout.coord_of_index(i);
            let mut dirs = vec![Dir::Local];
            for d in Dir::MESH {
                if d.step(c.x, c.y, layout.width(), layout.height()).is_some() {
                    dirs.push(d);
                }
            }
            match mode {
                VerticalMode::Pillars => {
                    if layout.layers() > 1 && layout.is_pillar_node(c) {
                        dirs.push(Dir::Vertical);
                    }
                }
                VerticalMode::Mesh3d => {
                    if c.layer + 1 < layout.layers() {
                        dirs.push(Dir::Up);
                    }
                    if c.layer > 0 {
                        dirs.push(Dir::Down);
                    }
                }
            }
            let arena = &mut shard_states[i / nodes_per_shard].arena;
            routers.push(Router::new(arena, c, &dirs, &dirs, vcs, depth));
        }
        let mut buses = Vec::new();
        let mut iface_slots = Vec::new();
        if mode == VerticalMode::Pillars && layout.layers() > 1 {
            for p in 0..layout.num_pillars() {
                let pillar = nim_types::PillarId(p);
                let xy = layout.pillar_xy(pillar);
                for layer in 0..layout.layers() {
                    let idx = layout.node_index(Coord::new(xy.0, xy.1, layer));
                    bus_of_node[idx] = Some(p);
                }
                buses.push(DtdmaBus::new(pillar, xy));
            }
            // Each (bus, layer) interface belongs to the shard owning
            // that layer's pillar node; the slot table records where.
            for (b, bus) in buses.iter().enumerate() {
                for layer in 0..layout.layers() {
                    let idx = layout.node_index(Coord::new(bus.xy.0, bus.xy.1, layer));
                    let owner = plan.shard_of_node(idx);
                    let st = &mut shard_states[owner];
                    debug_assert_eq!(
                        iface_slots.len(),
                        b * layout.layers() as usize + layer as usize
                    );
                    iface_slots.push(IfaceSlot {
                        shard: owner as u32,
                        slot: st.ifaces.len() as u32,
                    });
                    let iface = Iface::new(&mut st.arena, depth);
                    st.ifaces.push(iface);
                }
            }
            for st in &mut shard_states {
                st.in_touched = vec![false; buses.len()];
            }
        }
        let window_workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(num_shards);
        Self {
            layout: layout.clone(),
            routes: RouteMap::new(layout),
            mode,
            vcs,
            router_latency: u64::from(cfg.router_latency).max(1),
            bus_cycles_per_flit: u64::from(cfg.bus_cycles_per_flit()).max(1),
            bus_ready_at: vec![
                0;
                if mode == VerticalMode::Pillars && layout.layers() > 1 {
                    layout.num_pillars() as usize
                } else {
                    0
                }
            ],
            in_bus_active: vec![false; buses.len()],
            routers,
            buses,
            bus_of_node,
            injectors: vec![Injector::default(); n],
            outbox: vec![VecDeque::new(); n],
            delivered_nodes: Vec::new(),
            in_delivered: vec![false; n],
            in_dirty: vec![false; n],
            in_inj: vec![false; n],
            bus_active: Vec::new(),
            shards: shard_states,
            plan,
            nodes_per_shard,
            iface_slots,
            window_workers,
            window_spawn_min: window::DEFAULT_SPAWN_MIN,
            tuner: SpawnTuner::default(),
            win_stats: WindowStats::default(),
            hop_bufs: vec![Vec::new(); num_shards],
            hop_scratch: Vec::new(),
            bus_scratch: Vec::new(),
            now: Cycle::ZERO,
            next_pkt: 0,
            flits_in_flight: 0,
            stats: NetworkStats::default(),
            traversals: vec![0; n],
            obs: Obs::disabled(),
        }
    }

    /// How many independently-advancing shards the chip was cut into
    /// (1 = the plain sequential engine).
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Overrides the window executor's tuning: the minimum window length
    /// before worker threads spawn, and the worker count. Disables the
    /// runtime spawn-threshold calibration. Results are bit-identical
    /// for any values; this only exists so tests can force the threaded
    /// path onto short windows.
    #[doc(hidden)]
    pub fn set_window_tuning(&mut self, spawn_min: u64, workers: usize) {
        self.window_spawn_min = spawn_min.max(1);
        self.window_workers = workers.clamp(1, self.shards.len());
        self.tuner.force();
    }

    /// Window-executor activity counters (windows advanced, cycles
    /// covered, spawned vs inline). Diagnostics only: these vary with
    /// shard count and thread availability and are deliberately not part
    /// of [`NetworkStats`], whose contents must stay bit-identical
    /// across shard counts.
    #[inline]
    pub fn window_stats(&self) -> WindowStats {
        self.win_stats
    }

    /// The current minimum window length before worker threads spawn —
    /// `DEFAULT_SPAWN_MIN` until the runtime calibration or a
    /// [`Network::set_window_tuning`] override replaces it.
    #[inline]
    pub fn window_spawn_min(&self) -> u64 {
        self.window_spawn_min
    }

    /// Attaches an observability handle; events and per-tick cycle
    /// stamps flow into it from now on. The network drives
    /// [`Obs::set_now`], so the same handle shared by other components
    /// sees a consistent clock.
    pub fn set_obs(&mut self, obs: Obs) {
        obs.set_now(self.now.0);
        self.obs = obs;
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether no flits are buffered, queued, or awaiting injection.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.flits_in_flight == 0
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-bus statistics, indexed by pillar.
    pub fn bus_stats(&self) -> Vec<BusStats> {
        let mut out = Vec::new();
        self.bus_stats_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with per-bus statistics, indexed by
    /// pillar — the allocation-free variant callers on a sampling path
    /// use with a reused buffer (mirrors
    /// [`Network::drain_delivered_into`]).
    pub fn bus_stats_into(&self, buf: &mut Vec<BusStats>) {
        buf.clear();
        buf.extend(self.buses.iter().map(|b| b.stats));
    }

    /// Flits currently queued at each pillar bus's transceiver
    /// interfaces, indexed by pillar — the instantaneous occupancy the
    /// epoch sampler snapshots.
    pub fn bus_occupancies(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.bus_occupancies_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with the per-pillar queued-flit counts;
    /// see [`Network::bus_stats_into`].
    pub fn bus_occupancies_into(&self, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend((0..self.buses.len()).map(|b| self.bus_queued(b)));
    }

    /// Flit traversals through each router, indexed like
    /// [`ChipLayout::node_index`](nim_topology::ChipLayout::node_index) —
    /// the utilisation map behind congestion analysis.
    pub fn traversals(&self) -> &[u64] {
        &self.traversals
    }

    /// Queues a packet for injection at `req.src`. Returns its id.
    ///
    /// The packet's latency clock starts now; injection itself contends
    /// for the node's single flit-wide link into its router.
    ///
    /// # Panics
    ///
    /// Panics if `req.flits == 0` or an endpoint is outside the mesh.
    pub fn send(&mut self, req: SendRequest) -> PacketId {
        assert!(req.flits >= 1, "packet must have at least one flit");
        assert!(
            self.layout.contains(req.src),
            "src {} outside mesh",
            req.src
        );
        assert!(
            self.layout.contains(req.dst),
            "dst {} outside mesh",
            req.dst
        );
        let id = PacketId(self.next_pkt);
        self.next_pkt += 1;
        let node = self.layout.node_index(req.src);
        self.injectors[node].queue.push_back(Pending {
            id,
            req,
            seq: 0,
            injected: self.now,
        });
        self.mark_inj(node);
        self.flits_in_flight += u64::from(req.flits);
        self.stats.packets_sent += 1;
        self.obs.emit(Category::Packet, || EventData::PacketInject {
            packet: id.0,
            src: c3(req.src),
            dst: c3(req.dst),
            class: req.class.name(),
            flits: req.flits,
        });
        id
    }

    /// Pops the oldest packet delivered at node `c`, if any.
    pub fn pop_delivered(&mut self, c: Coord) -> Option<Delivered> {
        let idx = self.layout.node_index(c);
        self.outbox[idx].pop_front()
    }

    /// Drains every delivered packet, in (node, arrival) order.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        let mut out = Vec::new();
        self.drain_delivered_into(&mut out);
        out
    }

    /// Whether any delivered packets await pickup.
    #[inline]
    pub fn has_deliveries(&self) -> bool {
        !self.delivered_nodes.is_empty()
    }

    /// Drains all delivered packets into `buf` (in node order, then
    /// arrival order per node), touching only the nodes that actually
    /// received something.
    pub fn drain_delivered_into(&mut self, buf: &mut Vec<Delivered>) {
        // Single receiver — the common case when draining every cycle —
        // needs no sort.
        if let [n] = self.delivered_nodes[..] {
            self.delivered_nodes.clear();
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
            return;
        }
        let mut nodes = std::mem::take(&mut self.delivered_nodes);
        nodes.sort_unstable();
        for &n in &nodes {
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
        }
        nodes.clear();
        self.delivered_nodes = nodes;
    }

    /// Advances the clock over a known-quiet span without ticking.
    ///
    /// # Panics
    ///
    /// Panics if any flit is in flight — skipping would change behaviour.
    pub fn advance_idle(&mut self, cycles: u64) {
        assert!(self.is_idle(), "advance_idle with traffic in flight");
        self.advance_to(Cycle(self.now.0 + cycles));
    }

    /// Batch-advances the clock to `to` without running per-cycle phases,
    /// even with traffic in flight.
    ///
    /// Callers must only jump across provably-dead spans: `to` must lie
    /// strictly before [`Network::next_event_at`], so that every skipped
    /// cycle would have been a no-op tick.
    pub fn advance_to(&mut self, to: Cycle) {
        debug_assert!(to.0 >= self.now.0, "advance_to moving backwards");
        debug_assert!(
            self.next_event_at().is_none_or(|t| to.0 < t.0),
            "advance_to({}) skips a cycle where a phase fires",
            to.0
        );
        self.now = to;
        self.obs.set_now(self.now.0);
    }

    /// The earliest future cycle at which any phase could change state —
    /// the next-event horizon — or `None` when the network is idle.
    ///
    /// The bound is exact-or-early, never late: the returned cycle may
    /// turn out to be a no-op (a speculative bus grant or switch
    /// allocation can still fail on VC backpressure, which mutates
    /// nothing), but every cycle strictly before it is provably dead, so
    /// [`Network::advance_to`] may jump to `horizon - 1` unconditionally.
    pub fn next_event_at(&self) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let next = self.now.0 + 1;
        let mut earliest = u64::MAX;
        for st in &self.shards {
            // Injection streams one flit per cycle while packets pend.
            if !st.inj_active.is_empty() {
                earliest = next;
            }
            // A router moves a front flit once it has dwelt
            // `router_latency`.
            for &n in &st.dirty {
                let r = &self.routers[n as usize];
                if r.occupancy == 0 {
                    continue;
                }
                for port in r.inputs.iter().flatten() {
                    for vc in 0..self.vcs {
                        if let Some(f) = port.vc(vc).front(&st.arena) {
                            earliest = earliest.min((f.arrived.0 + self.router_latency).max(next));
                        }
                    }
                }
            }
        }
        // A bus grants once it is free of any serialisation window and a
        // queued flit has dwelt one cycle at its transceiver interface.
        for &b in &self.bus_active {
            let b = b as usize;
            let mut front = u64::MAX;
            for layer in 0..self.layout.layers() {
                let (s, i) = self.iface_pos(b, layer);
                if let Some(f) = self.shards[s].ifaces[i].q.front(&self.shards[s].arena) {
                    front = front.min(f.arrived.0 + 1);
                }
            }
            if front != u64::MAX {
                earliest = earliest.min(front.max(self.bus_ready_at[b]).max(next));
            }
        }
        // Flits in flight always sit in some queue the scans above cover;
        // fall back to the very next cycle rather than ever over-skipping.
        Some(Cycle(if earliest == u64::MAX { next } else { earliest }))
    }

    /// Advances the network by one clock cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.obs.set_now(self.now.0);
        self.bus_phase(self.now);
        self.router_phase(self.now);
        self.injection_phase(self.now);
        self.settle_touched();
    }

    /// Ticks until the network is idle, up to `max_cycles`. Returns the
    /// number of cycles consumed, or `None` if traffic is still in flight
    /// at the limit (useful to catch livelock in tests).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Option<u64> {
        let start = self.now;
        while !self.is_idle() {
            if self.now - start >= max_cycles {
                return None;
            }
            self.tick();
        }
        Some(self.now - start)
    }

    /// The (shard, interface-slot) holding the transceiver interface of
    /// bus `b` on `layer`.
    #[inline]
    fn iface_pos(&self, b: usize, layer: u8) -> (usize, usize) {
        let s = self.iface_slots[b * self.layout.layers() as usize + layer as usize];
        (s.shard as usize, s.slot as usize)
    }

    /// Total flits queued across all of bus `b`'s interfaces.
    fn bus_queued(&self, b: usize) -> usize {
        (0..self.layout.layers())
            .map(|layer| {
                let (s, i) = self.iface_pos(b, layer);
                self.shards[s].ifaces[i].q.len()
            })
            .sum()
    }

    /// Folds per-shard bus-touch records into the global bus state:
    /// marks each touched bus active and settles its peak-occupancy
    /// statistic. Interface totals only grow between bus-phase drains
    /// (router phases enqueue, never dequeue), so settling at the end of
    /// a tick — or of a whole multi-cycle shard window — observes the
    /// running maximum the per-enqueue update used to record.
    fn settle_touched(&mut self) {
        for s in 0..self.shards.len() {
            if self.shards[s].touched_buses.is_empty() {
                continue;
            }
            let mut work = std::mem::take(&mut self.shards[s].touched_buses);
            for &b in &work {
                self.shards[s].in_touched[b as usize] = false;
            }
            for &b in &work {
                let b = b as usize;
                let queued = self.bus_queued(b) as u64;
                let stats = &mut self.buses[b].stats;
                stats.peak_queued = stats.peak_queued.max(queued);
                self.mark_bus(b);
            }
            work.clear();
            self.shards[s].touched_buses = work;
        }
    }

    /// The shard owning a (layer-major) node index.
    #[inline]
    fn shard_of_node(&self, node: usize) -> usize {
        node / self.nodes_per_shard
    }

    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.in_dirty[node] {
            self.in_dirty[node] = true;
            let s = self.shard_of_node(node);
            self.shards[s].dirty.push(node as u32);
        }
    }

    #[inline]
    fn mark_inj(&mut self, node: usize) {
        if !self.in_inj[node] {
            self.in_inj[node] = true;
            let s = self.shard_of_node(node);
            self.shards[s].inj_active.push(node as u32);
        }
    }

    #[inline]
    fn mark_bus(&mut self, bus: usize) {
        if !self.in_bus_active[bus] {
            self.in_bus_active[bus] = true;
            self.bus_active.push(bus as u16);
        }
    }
}

#[cfg(test)]
#[path = "../network_tests.rs"]
mod tests;
