//! Property-based tests for address decomposition, geometry, and the
//! FxHash map used on the simulator's hot paths.

use std::collections::HashMap;

use nim_types::addr::L2Map;
use nim_types::{Address, Coord, Dir, FxHashMap, LineAddr};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = (u32, u32, u32)> {
    // clusters, banks per cluster, sets per bank — powers of two.
    (0u32..=6, 0u32..=6, 0u32..=8).prop_map(|(c, b, s)| (1 << c, 1 << b, 1 << s))
}

proptest! {
    #[test]
    fn l2_map_compose_inverts_decompose(
        (clusters, banks, sets) in arb_geometry(),
        raw in any::<u64>(),
    ) {
        let map = L2Map::new(clusters, banks, sets);
        let line = LineAddr(raw >> 8); // leave headroom for compose shifts
        let back = map.compose(
            map.tag(line),
            map.set_in_bank(line),
            map.bank_in_cluster(line),
        );
        prop_assert_eq!(back, line);
    }

    #[test]
    fn l2_map_fields_are_in_range(
        (clusters, banks, sets) in arb_geometry(),
        raw in any::<u64>(),
    ) {
        let map = L2Map::new(clusters, banks, sets);
        let line = LineAddr(raw);
        prop_assert!(map.home_cluster(line).index() < clusters as usize);
        prop_assert!(map.bank_in_cluster(line) < banks);
        prop_assert!(map.set_in_bank(line) < sets);
    }

    #[test]
    fn global_bank_split_round_trips(
        (clusters, banks, _) in arb_geometry(),
        c in any::<u16>(),
        b in any::<u32>(),
    ) {
        let map = L2Map::new(clusters, banks, 64);
        let cluster = nim_types::ClusterId(c % clusters as u16);
        let bank = b % banks;
        let g = map.global_bank(cluster, bank);
        prop_assert_eq!(map.split_bank(g), (cluster, bank));
    }

    #[test]
    fn byte_address_and_line_round_trip(addr in any::<u64>()) {
        let a = Address(addr & !(63));
        prop_assert_eq!(a.line(64).byte_address(64), a);
    }

    #[test]
    fn manhattan_2d_is_a_metric(
        ax in 0u8..32, ay in 0u8..32,
        bx in 0u8..32, by in 0u8..32,
        cx in 0u8..32, cy in 0u8..32,
    ) {
        let a = Coord::new(ax, ay, 0);
        let b = Coord::new(bx, by, 0);
        let c = Coord::new(cx, cy, 0);
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(a.manhattan_2d(b), b.manhattan_2d(a));
        prop_assert_eq!(a.manhattan_2d(a), 0);
        prop_assert!(a.manhattan_2d(c) <= a.manhattan_2d(b) + b.manhattan_2d(c));
    }

    #[test]
    fn pillar_route_is_never_shorter_than_free_3d_route(
        ax in 0u8..16, ay in 0u8..8,
        bx in 0u8..16, by in 0u8..8,
        px in 0u8..16, py in 0u8..8,
        la in 0u8..4, lb in 0u8..4,
    ) {
        let a = Coord::new(ax, ay, la);
        let b = Coord::new(bx, by, lb);
        let pillar = Coord::new(px, py, 0);
        // Constraining vertical movement to a pillar can only add hops
        // relative to the ideal full 3D mesh.
        prop_assert!(a.hop_distance_via_pillar(b, pillar) >= a.manhattan_3d(b).min(a.manhattan_2d(b)));
    }

    #[test]
    fn dir_step_stays_in_bounds(
        x in 0u8..64, y in 0u8..64,
        w in 1u8..=64, h in 1u8..=64,
        dir_idx in 0usize..8,
    ) {
        prop_assume!(x < w && y < h);
        let d = Dir::ALL[dir_idx];
        if let Some((nx, ny)) = d.step(x, y, w, h) {
            prop_assert!(nx < w && ny < h);
        }
    }

    #[test]
    fn fxhash_map_agrees_with_std_hashmap(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u32>()),
            0..200,
        ),
    ) {
        let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for &(op, raw_key, val) in &ops {
            // Half the keys collapse into a small range so overwrites,
            // hits, and removals actually occur alongside misses.
            let key = if op & 1 == 0 { raw_key % 16 } else { raw_key };
            match op % 3 {
                0 => prop_assert_eq!(fx.insert(key, val), reference.insert(key, val)),
                1 => prop_assert_eq!(fx.remove(&key), reference.remove(&key)),
                _ => prop_assert_eq!(fx.get(&key), reference.get(&key)),
            }
            prop_assert_eq!(fx.len(), reference.len());
        }
        for (k, v) in &reference {
            prop_assert_eq!(fx.get(k), Some(v));
        }
    }
}
