//! Pillar sweep: vertical bandwidth vs L2 latency, and what each pillar
//! costs in device area at different via pitches.
//!
//! Reproduces the paper's Figure 17 sweep together with the Table 2
//! manufacturing trade-off that motivates it: coarse via pitches force
//! fewer pillars, and fewer pillars mean more contention on the shared
//! vertical links.
//!
//! ```sh
//! cargo run --release --example pillar_sweep
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::power::{pillar_area_um2, pillar_wires};
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = BenchmarkProfile::art();
    println!(
        "CMP-DNUCA-3D on {}, sweeping the pillar count\n",
        bench.name
    );
    println!(
        "{:<8} {:>12} {:>16} {:>18} {:>20}",
        "pillars", "avg L2 hit", "bus transfers", "contention cycles", "wiring area @5um"
    );
    for pillars in [8u16, 4, 2] {
        let report = SystemBuilder::new(Scheme::CmpDnuca3d)
            .pillars(pillars)
            .seed(11)
            .warmup_transactions(1_000)
            .sampled_transactions(10_000)
            .build()?
            .run(&bench)?;
        let wires = pillar_wires(128, 2);
        let area = pillar_area_um2(wires, 5.0) * f64::from(pillars);
        println!(
            "{:<8} {:>12.2} {:>16} {:>18} {:>17.0} um2",
            pillars,
            report.avg_l2_hit_latency(),
            report.bus_transfers,
            report.bus_contention_cycles,
            area,
        );
    }
    println!(
        "\nFewer pillars -> more vertical contention -> higher L2 latency\n\
         (paper Fig. 17: 1-7 cycles from 8 pillars down to 2), while the\n\
         through-silicon wiring area shrinks proportionally (Table 2)."
    );
    Ok(())
}
