//! Deterministic case generation and runner-facing types.

/// A discarded case (failed filter or `prop_assume!`).
#[derive(Clone, Copy, Debug)]
pub struct Rejection(pub &'static str);

/// Why one test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded; the runner retries with fresh inputs.
    Reject(String),
    /// The case failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection carrying `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The generation RNG: SplitMix64, seeded from the test's name so every
/// run of a given test draws the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` of 0 yields 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        (((self.next_u64() as u128).wrapping_mul(bound as u128)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
