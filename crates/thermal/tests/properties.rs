//! Property-based tests of the thermal solver: the steady-state solution
//! of a linear RC network must be linear in the power vector, monotone,
//! and energy-conserving.

use nim_thermal::{ThermalConfig, ThermalModel};
use nim_topology::{ChipLayout, Floorplan};
use nim_types::{Coord, SystemConfig};
use proptest::prelude::*;

fn plan() -> (ChipLayout, Floorplan) {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let plan = Floorplan::new(&layout, &[]);
    (layout, plan)
}

fn tight() -> ThermalConfig {
    ThermalConfig {
        tolerance: 1e-8,
        ..ThermalConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adding power anywhere never cools any tile (monotonicity of the
    /// resistive network).
    #[test]
    fn extra_power_never_cools_anything(
        x in 0u8..16, y in 0u8..8, layer in 0u8..2,
        extra in 0.5f64..20.0,
    ) {
        let (layout, plan) = plan();
        let cfg = tight();
        let base_model = ThermalModel::new(&plan, &cfg);
        let base = base_model.solve(&cfg);
        let mut hot_model = ThermalModel::new(&plan, &cfg);
        hot_model.set_power(Coord::new(x, y, layer), cfg.bank_w + extra);
        let hot = hot_model.solve(&cfg);
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            prop_assert!(
                hot.at(c) >= base.at(c) - 1e-6,
                "tile {c} cooled when {x},{y},L{layer} heated"
            );
        }
        // And the heated tile itself is the most-raised one.
        let target = Coord::new(x, y, layer);
        let rise_at_target = hot.at(target) - base.at(target);
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            prop_assert!(hot.at(c) - base.at(c) <= rise_at_target + 1e-6);
        }
    }

    /// Temperature *rise* above ambient scales linearly with power
    /// (the network is linear).
    #[test]
    fn temperature_rise_is_linear_in_power(
        x in 0u8..16, y in 0u8..8,
        watts in 1.0f64..10.0,
    ) {
        let (_, plan) = plan();
        let cfg = ThermalConfig {
            bank_w: 0.0, // isolate the single source
            ..tight()
        };
        let c = Coord::new(x, y, 0);
        let mut m1 = ThermalModel::new(&plan, &cfg);
        m1.set_power(c, watts);
        let mut m2 = ThermalModel::new(&plan, &cfg);
        m2.set_power(c, 2.0 * watts);
        let rise1 = m1.solve(&cfg).at(c) - cfg.ambient_c;
        let rise2 = m2.solve(&cfg).at(c) - cfg.ambient_c;
        prop_assert!(
            (rise2 - 2.0 * rise1).abs() < 0.01 * rise2.abs().max(1e-9),
            "doubling power must double the rise: {rise1} vs {rise2}"
        );
    }

    /// All dissipated heat leaves through the layer-0 sink.
    #[test]
    fn energy_balance_holds_for_random_power_maps(
        sources in proptest::collection::vec((0u8..16, 0u8..8, 0u8..2, 0.1f64..8.0), 1..8),
    ) {
        let (layout, plan) = plan();
        let cfg = tight();
        let mut model = ThermalModel::new(&plan, &cfg);
        for (x, y, l, w) in sources {
            model.set_power(Coord::new(x, y, l), w);
        }
        let profile = model.solve(&cfg);
        let mut sink_w = 0.0;
        for y in 0..layout.height() {
            for x in 0..layout.width() {
                sink_w += (profile.at(Coord::new(x, y, 0)) - cfg.ambient_c) / cfg.r_sink;
            }
        }
        let total = model.total_power();
        prop_assert!(
            (sink_w - total).abs() / total.max(1e-9) < 0.02,
            "sink {sink_w} W vs dissipated {total} W"
        );
    }
}
