//! Thermal floorplanning: how CPU placement across the 3D stack shapes
//! the chip's temperature field (the paper's §3.3 / Table 3 study).
//!
//! Prints the peak/average/minimum temperatures for each placement policy
//! and an ASCII heat map of the hottest layer for two of them.
//!
//! ```sh
//! cargo run --release --example thermal_floorplan
//! ```

use std::error::Error;

use network_in_memory::thermal::{ThermalConfig, ThermalModel, ThermalProfile};
use network_in_memory::topology::{ChipLayout, Floorplan, PlacementPolicy};
use network_in_memory::types::{Coord, SystemConfig};

fn solve(
    layers: u8,
    pillars: u16,
    policy: PlacementPolicy,
) -> Result<ThermalProfile, Box<dyn Error>> {
    let cfg = SystemConfig::default()
        .with_layers(layers)
        .with_pillars(pillars);
    let layout = ChipLayout::new(&cfg)?;
    let seats = policy.place(&layout, cfg.num_cpus)?;
    let plan = Floorplan::new(&layout, &seats);
    let tcfg = ThermalConfig::default();
    Ok(ThermalModel::new(&plan, &tcfg).solve(&tcfg))
}

fn heat_map(profile: &ThermalProfile, width: u8, height: u8, layer: u8) {
    let (lo, hi) = (profile.min(), profile.peak());
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for y in (0..height).rev() {
        let mut row = String::new();
        for x in 0..width {
            let t = profile.at(Coord::new(x, y, layer));
            let idx = ((t - lo) / (hi - lo + 1e-9) * (ramp.len() - 1) as f64).round() as usize;
            row.push(ramp[idx.min(ramp.len() - 1)]);
        }
        println!("    |{row}|");
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Thermal impact of CPU placement (8 x 8 W cores, Table 3 study)\n");
    let configs: [(&str, u8, u16, PlacementPolicy); 4] = [
        ("2D, interior", 1, 8, PlacementPolicy::Interior2d),
        (
            "3D-2L, maximal offset",
            2,
            8,
            PlacementPolicy::MaximalOffset,
        ),
        (
            "3D-2L, Algorithm 1 (k=1)",
            2,
            4,
            PlacementPolicy::Algorithm1 { k: 1 },
        ),
        ("3D-2L, CPU stacking", 2, 8, PlacementPolicy::Stacked),
    ];
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "placement", "peak C", "avg C", "min C"
    );
    for (label, layers, pillars, policy) in configs {
        let p = solve(layers, pillars, policy)?;
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>10.1}",
            label,
            p.peak(),
            p.avg(),
            p.min()
        );
    }

    println!("\nHeat map, top layer, maximal offset (CPUs spread in 3D):");
    let offset = solve(2, 8, PlacementPolicy::MaximalOffset)?;
    heat_map(&offset, 16, 8, 1);

    println!("\nHeat map, top layer, CPUs stacked (hotspots pile up):");
    let stacked = solve(2, 8, PlacementPolicy::Stacked)?;
    heat_map(&stacked, 16, 8, 1);

    println!(
        "\nStacking CPUs vertically raises the peak by {:.0} C over maximal\n\
         offsetting at identical average power — the paper's Table 3 argument\n\
         for offsetting CPUs in all three dimensions.",
        stacked.peak() - offset.peak()
    );
    Ok(())
}
