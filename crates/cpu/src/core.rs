//! The in-order, single-issue processor core (Table 4: issue width 1).
//!
//! The core consumes a memory-reference trace: bursts of non-memory
//! instructions (one per cycle) punctuated by loads, stores, and
//! instruction fetches. Loads and fetches that miss in the L1 stall the
//! core until the L2 transaction completes (blocking in-order pipeline);
//! stores are write-through with a small store buffer, so they only stall
//! when the buffer is full. IPC falls directly out of this model, which
//! is how the paper's Figure 15 numbers arise.

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{AccessKind, Address, CpuId, L1Config, LineAddr, TraceOp};

use crate::l1::{L1Cache, L1Stats};

/// Default store-buffer depth (entries of outstanding write-throughs).
pub const STORE_BUFFER_DEPTH: u32 = 8;

/// An L2 transaction the core wants issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Requesting core.
    pub cpu: CpuId,
    /// Access kind ([`AccessKind::Write`] never stalls the core).
    pub kind: AccessKind,
    /// Byte address.
    pub addr: Address,
}

/// What one core cycle produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreAction {
    /// Kept working (or stalled) — nothing for the memory system.
    Progress,
    /// Issue this L2 transaction. Reads/fetches leave the core stalled
    /// until [`InOrderCore::data_returned`]; writes proceed immediately.
    Request(MemRequest),
    /// The trace is exhausted; the core retired its last instruction.
    Halted,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Fetch the next trace op on the coming cycle.
    NeedOp,
    /// Executing the non-memory burst before `op`.
    Gap { left: u32, op: TraceOp },
    /// The memory instruction of `op` issues next cycle.
    MemReady { op: TraceOp },
    /// An L1 hit is being serviced (multi-cycle L1).
    L1Busy { left: u32 },
    /// Blocked on an outstanding read/fetch L2 transaction.
    WaitingData { kind: AccessKind },
    /// A store could not issue because the store buffer was full.
    StoreBlocked { op: TraceOp },
    /// Trace exhausted.
    Halted,
}

/// Per-core performance counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles stalled waiting for load/fetch data.
    pub data_stall_cycles: u64,
    /// Cycles stalled on a full store buffer.
    pub store_stall_cycles: u64,
    /// Stores issued to the L2 (write-through traffic).
    pub stores_issued: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// One in-order, single-issue core with split L1 I/D caches.
#[derive(Clone, Debug)]
pub struct InOrderCore {
    id: CpuId,
    l1d: L1Cache,
    l1i: L1Cache,
    l1_latency: u32,
    state: State,
    outstanding_stores: u32,
    store_buffer_depth: u32,
    stats: CoreStats,
}

impl InOrderCore {
    /// Creates a core with empty L1s.
    pub fn new(id: CpuId, l1: &L1Config) -> Self {
        Self {
            id,
            l1d: L1Cache::new(l1),
            l1i: L1Cache::new(l1),
            l1_latency: l1.latency,
            state: State::NeedOp,
            outstanding_stores: 0,
            store_buffer_depth: STORE_BUFFER_DEPTH,
            stats: CoreStats::default(),
        }
    }

    /// This core's id.
    #[inline]
    pub fn id(&self) -> CpuId {
        self.id
    }

    /// Performance counters.
    #[inline]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// L1 data-side counters.
    #[inline]
    pub fn l1d_stats(&self) -> &L1Stats {
        self.l1d.stats()
    }

    /// L1 instruction-side counters.
    #[inline]
    pub fn l1i_stats(&self) -> &L1Stats {
        self.l1i.stats()
    }

    /// Whether the core has retired its whole trace.
    #[inline]
    pub fn is_halted(&self) -> bool {
        self.state == State::Halted
    }

    /// Whether the core is blocked on an outstanding load/fetch.
    #[inline]
    pub fn is_waiting(&self) -> bool {
        matches!(self.state, State::WaitingData { .. })
    }

    /// Advances the core one cycle. `next_op` supplies the trace.
    pub fn tick(&mut self, next_op: &mut dyn FnMut() -> Option<TraceOp>) -> CoreAction {
        if self.state == State::Halted {
            return CoreAction::Halted;
        }
        self.stats.cycles += 1;
        match self.state {
            State::Halted => CoreAction::Halted,
            State::WaitingData { .. } => {
                self.stats.data_stall_cycles += 1;
                CoreAction::Progress
            }
            State::L1Busy { left } => {
                if left <= 1 {
                    // The memory instruction retires at the end of the hit.
                    self.stats.instructions += 1;
                    self.state = State::NeedOp;
                } else {
                    self.state = State::L1Busy { left: left - 1 };
                }
                CoreAction::Progress
            }
            State::Gap { left, op } => {
                self.stats.instructions += 1; // one plain instruction per cycle
                self.state = if left <= 1 {
                    State::MemReady { op }
                } else {
                    State::Gap { left: left - 1, op }
                };
                CoreAction::Progress
            }
            State::MemReady { op } => self.begin_mem(op),
            State::StoreBlocked { op } => {
                if self.outstanding_stores < self.store_buffer_depth {
                    self.issue_store(op)
                } else {
                    self.stats.store_stall_cycles += 1;
                    CoreAction::Progress
                }
            }
            State::NeedOp => match next_op() {
                None => {
                    self.state = State::Halted;
                    self.stats.cycles -= 1; // this cycle did no work
                    CoreAction::Halted
                }
                Some(op) if op.gap > 0 => {
                    self.stats.instructions += 1;
                    self.state = if op.gap == 1 {
                        State::MemReady { op }
                    } else {
                        State::Gap {
                            left: op.gap - 1,
                            op,
                        }
                    };
                    CoreAction::Progress
                }
                Some(op) => self.begin_mem(op),
            },
        }
    }

    /// The memory instruction of `op` issues this cycle.
    fn begin_mem(&mut self, op: TraceOp) -> CoreAction {
        match op.kind {
            AccessKind::Read | AccessKind::IFetch => {
                let cache = match op.kind {
                    AccessKind::IFetch => &mut self.l1i,
                    _ => &mut self.l1d,
                };
                if cache.access(op.addr) {
                    // Hit: busy for the remaining L1 latency.
                    if self.l1_latency <= 1 {
                        self.stats.instructions += 1;
                        self.state = State::NeedOp;
                    } else {
                        self.state = State::L1Busy {
                            left: self.l1_latency - 1,
                        };
                    }
                    CoreAction::Progress
                } else {
                    self.state = State::WaitingData { kind: op.kind };
                    CoreAction::Request(MemRequest {
                        cpu: self.id,
                        kind: op.kind,
                        addr: op.addr,
                    })
                }
            }
            AccessKind::Write => {
                if self.outstanding_stores < self.store_buffer_depth {
                    self.issue_store(op)
                } else {
                    self.stats.store_stall_cycles += 1;
                    self.state = State::StoreBlocked { op };
                    CoreAction::Progress
                }
            }
        }
    }

    /// Issues a write-through store (no-write-allocate).
    fn issue_store(&mut self, op: TraceOp) -> CoreAction {
        // Update the local copy if present (keeps L1 coherent with the
        // store); misses do not allocate.
        let _ = self.l1d.access(op.addr);
        self.outstanding_stores += 1;
        self.stats.stores_issued += 1;
        self.stats.instructions += 1; // the store retires into the buffer
        self.state = State::NeedOp;
        CoreAction::Request(MemRequest {
            cpu: self.id,
            kind: AccessKind::Write,
            addr: op.addr,
        })
    }

    /// Completes an outstanding load/fetch: fills the L1 and unblocks.
    /// Returns the L1 line evicted by the fill, if any (the directory
    /// must be told).
    ///
    /// # Panics
    ///
    /// Panics if the core was not waiting for data.
    pub fn data_returned(&mut self, addr: Address) -> Option<LineAddr> {
        let State::WaitingData { kind } = self.state else {
            panic!("data returned to a core that was not waiting");
        };
        let cache = match kind {
            AccessKind::IFetch => &mut self.l1i,
            _ => &mut self.l1d,
        };
        let evicted = cache.fill(addr);
        self.stats.instructions += 1; // the blocked instruction retires
        self.state = State::NeedOp;
        evicted
    }

    /// A write-through store left the memory system; frees a buffer slot.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no store was outstanding.
    pub fn store_completed(&mut self) {
        debug_assert!(self.outstanding_stores > 0);
        self.outstanding_stores -= 1;
    }

    /// Invalidates a line in the L1 D-cache (coherence).
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        self.l1d.invalidate(line)
    }

    /// Installs a line directly into the appropriate L1 (warm-up state
    /// setup, not a timed event). Returns the line evicted by the fill.
    pub fn prefill(&mut self, addr: Address, kind: AccessKind) -> Option<LineAddr> {
        match kind {
            AccessKind::IFetch => self.l1i.fill(addr),
            AccessKind::Read | AccessKind::Write => self.l1d.fill(addr),
        }
    }

    /// How many cycles this core can be fast-forwarded without any
    /// external interaction: the remaining burst length when computing,
    /// `u64::MAX` when blocked on the memory system (something else
    /// bounds the skip), and 0 when it must consult the trace or issue.
    pub fn skippable_cycles(&self) -> u64 {
        match self.state {
            State::Gap { left, .. } => u64::from(left.saturating_sub(1)),
            State::L1Busy { left } => u64::from(left.saturating_sub(1)),
            State::WaitingData { .. } => u64::MAX,
            State::Halted => u64::MAX,
            State::NeedOp | State::MemReady { .. } | State::StoreBlocked { .. } => 0,
        }
    }

    /// Relative cycle offset of the next tick this core actually needs:
    /// `1` when it must be ticked next cycle, `skippable_cycles() + 1`
    /// while computing through a burst, and `u64::MAX` when it wakes only
    /// on external input (halted, or blocked on the memory system). The
    /// driver loop fuses this with the network horizon and its event heap
    /// to find the next cycle anything in the system acts.
    pub fn next_wakeup(&self) -> u64 {
        match self.skippable_cycles() {
            u64::MAX => u64::MAX,
            s => s + 1,
        }
    }

    /// Fast-forwards `n` cycles (callers must respect
    /// [`skippable_cycles`](Self::skippable_cycles)).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the skip would cross an interaction point.
    pub fn skip(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        debug_assert!(n <= self.skippable_cycles());
        match &mut self.state {
            State::Gap { left, .. } => {
                *left -= n as u32;
                self.stats.instructions += n;
                self.stats.cycles += n;
            }
            State::L1Busy { left } => {
                *left -= n as u32;
                self.stats.cycles += n;
            }
            State::WaitingData { .. } => {
                self.stats.data_stall_cycles += n;
                self.stats.cycles += n;
            }
            State::Halted => {}
            State::NeedOp | State::MemReady { .. } | State::StoreBlocked { .. } => {
                unreachable!("checked above")
            }
        }
    }
}

fn save_kind(w: &mut ByteWriter, kind: AccessKind) {
    w.u8(match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::IFetch => 2,
    });
}

fn restore_kind(r: &mut ByteReader<'_>) -> Result<AccessKind, CodecError> {
    match r.u8()? {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        2 => Ok(AccessKind::IFetch),
        _ => Err(CodecError::Corrupt("bad access kind")),
    }
}

fn save_op(w: &mut ByteWriter, op: TraceOp) {
    w.u32(op.gap);
    save_kind(w, op.kind);
    w.u64(op.addr.0);
}

fn restore_op(r: &mut ByteReader<'_>) -> Result<TraceOp, CodecError> {
    Ok(TraceOp {
        gap: r.u32()?,
        kind: restore_kind(r)?,
        addr: Address(r.u64()?),
    })
}

impl Checkpoint for InOrderCore {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(self.stats.cycles);
        w.u64(self.stats.instructions);
        w.u64(self.stats.data_stall_cycles);
        w.u64(self.stats.store_stall_cycles);
        w.u64(self.stats.stores_issued);
        w.u32(self.outstanding_stores);
        match self.state {
            State::NeedOp => w.u8(0),
            State::Gap { left, op } => {
                w.u8(1);
                w.u32(left);
                save_op(w, op);
            }
            State::MemReady { op } => {
                w.u8(2);
                save_op(w, op);
            }
            State::L1Busy { left } => {
                w.u8(3);
                w.u32(left);
            }
            State::WaitingData { kind } => {
                w.u8(4);
                save_kind(w, kind);
            }
            State::StoreBlocked { op } => {
                w.u8(5);
                save_op(w, op);
            }
            State::Halted => w.u8(6),
        }
        self.l1d.save(w);
        self.l1i.save(w);
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.stats.cycles = r.u64()?;
        self.stats.instructions = r.u64()?;
        self.stats.data_stall_cycles = r.u64()?;
        self.stats.store_stall_cycles = r.u64()?;
        self.stats.stores_issued = r.u64()?;
        self.outstanding_stores = r.u32()?;
        self.state = match r.u8()? {
            0 => State::NeedOp,
            1 => State::Gap {
                left: r.u32()?,
                op: restore_op(r)?,
            },
            2 => State::MemReady { op: restore_op(r)? },
            3 => State::L1Busy { left: r.u32()? },
            4 => State::WaitingData {
                kind: restore_kind(r)?,
            },
            5 => State::StoreBlocked { op: restore_op(r)? },
            6 => State::Halted,
            _ => return Err(CodecError::Corrupt("bad core state tag")),
        };
        self.l1d.restore(r)?;
        self.l1i.restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::L1Config;

    fn core() -> InOrderCore {
        InOrderCore::new(CpuId(0), &L1Config::default())
    }

    fn op(gap: u32, kind: AccessKind, addr: u64) -> TraceOp {
        TraceOp {
            gap,
            kind,
            addr: Address(addr),
        }
    }

    /// Drives the core over a fixed op list, answering every request
    /// after `mem_latency` ticks. Returns the stats.
    fn run(ops: Vec<TraceOp>, mem_latency: u64) -> CoreStats {
        let mut core = core();
        let mut it = ops.into_iter();
        let mut pending: Option<(u64, Address)> = None;
        let mut now = 0u64;
        while !core.is_halted() && now < 1_000_000 {
            now += 1;
            if let Some((due, addr)) = pending {
                if due == now {
                    core.data_returned(addr);
                    pending = None;
                }
            }
            match core.tick(&mut || it.next()) {
                CoreAction::Request(r) if r.kind != AccessKind::Write => {
                    pending = Some((now + mem_latency, r.addr));
                }
                CoreAction::Request(_) => core.store_completed(),
                _ => {}
            }
        }
        *core.stats()
    }

    #[test]
    fn pure_compute_runs_at_ipc_one() {
        // A single op with a long gap and one L1-hittable read at the end.
        let stats = run(vec![op(100, AccessKind::Write, 0)], 10);
        // 100 gap instructions + 1 store, one per cycle.
        assert_eq!(stats.instructions, 101);
        assert_eq!(stats.cycles, 101);
        assert!((stats.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn l1_hit_costs_the_l1_latency() {
        // Two reads to the same address: miss (fill), then 3-cycle hit.
        let stats = run(
            vec![op(1, AccessKind::Read, 0x40), op(1, AccessKind::Read, 0x40)],
            10,
        );
        // gap(1) + issue(1) + wait(9) + gap(1) + issue-hit(3) = 15 cycles, 4 instrs.
        assert_eq!(stats.instructions, 4);
        assert_eq!(stats.cycles, 15);
        assert_eq!(stats.data_stall_cycles, 9);
    }

    #[test]
    fn read_miss_stalls_for_the_memory_latency() {
        let stats = run(vec![op(1, AccessKind::Read, 0x80)], 50);
        assert_eq!(
            stats.data_stall_cycles, 49,
            "stalled from issue+1 to return"
        );
        assert_eq!(stats.instructions, 2);
    }

    #[test]
    fn stores_do_not_stall_until_the_buffer_fills() {
        let mut core = core();
        let mut ops = (0..20u64)
            .map(|i| op(1, AccessKind::Write, i * 64))
            .collect::<Vec<_>>()
            .into_iter();
        let mut issued = 0;
        let mut blocked_cycles = 0;
        for _ in 0..200 {
            match core.tick(&mut || ops.next()) {
                CoreAction::Request(r) => {
                    assert_eq!(r.kind, AccessKind::Write);
                    issued += 1;
                    // Never complete stores: the buffer must fill at 8.
                }
                CoreAction::Halted => break,
                CoreAction::Progress => blocked_cycles += 1,
            }
        }
        assert_eq!(issued, STORE_BUFFER_DEPTH);
        assert!(core.stats().store_stall_cycles > 0);
        assert!(blocked_cycles > 0);
        // Draining one slot lets the next store go.
        core.store_completed();
        let act = core.tick(&mut || ops.next());
        assert!(matches!(act, CoreAction::Request(_)));
    }

    #[test]
    fn ifetch_uses_the_instruction_cache() {
        let mut core = core();
        let mut ops = vec![op(0, AccessKind::IFetch, 0x1000)].into_iter();
        let act = core.tick(&mut || ops.next());
        assert!(matches!(
            act,
            CoreAction::Request(MemRequest {
                kind: AccessKind::IFetch,
                ..
            })
        ));
        core.data_returned(Address(0x1000));
        assert_eq!(core.l1i_stats().misses, 1);
        assert_eq!(core.l1d_stats().misses, 0);
    }

    #[test]
    fn invalidation_forces_the_next_read_to_miss() {
        let mut core = core();
        let a = Address(0x40);
        let mut ops =
            vec![op(0, AccessKind::Read, 0x40), op(0, AccessKind::Read, 0x40)].into_iter();
        assert!(matches!(
            core.tick(&mut || ops.next()),
            CoreAction::Request(_)
        ));
        core.data_returned(a);
        assert!(core.invalidate(a.line(64)));
        let act = core.tick(&mut || ops.next());
        assert!(
            matches!(act, CoreAction::Request(_)),
            "invalidate made it miss again"
        );
    }

    #[test]
    fn skip_preserves_instruction_accounting() {
        let mut core = core();
        let mut ops = vec![op(50, AccessKind::Write, 0)].into_iter();
        core.tick(&mut || ops.next()); // enters the gap, retires 1
        let skippable = core.skippable_cycles();
        assert_eq!(skippable, 48, "49 left, keep 1 for the transition tick");
        core.skip(skippable);
        assert_eq!(core.stats().instructions, 49);
        assert_eq!(core.stats().cycles, 49);
        // Finish normally.
        let mut done = false;
        for _ in 0..5 {
            if matches!(core.tick(&mut || ops.next()), CoreAction::Request(_)) {
                done = true;
                break;
            }
        }
        assert!(done, "store issues after the gap completes");
        assert_eq!(core.stats().instructions, 51);
    }

    #[test]
    fn next_wakeup_mirrors_skippable_cycles() {
        let mut core = core();
        assert_eq!(core.next_wakeup(), 1, "fresh core must be ticked");
        let mut ops = vec![op(50, AccessKind::Write, 0)].into_iter();
        core.tick(&mut || ops.next()); // enters the gap
        assert_eq!(core.next_wakeup(), 49, "acts on the transition tick");
        let mut none = || None;
        while !core.is_halted() {
            core.tick(&mut none);
        }
        assert_eq!(core.next_wakeup(), u64::MAX, "halted cores never wake");
    }

    #[test]
    fn halts_when_the_trace_ends() {
        let stats = run(vec![], 1);
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.cycles, 0);
        let mut core = core();
        let mut none = || None;
        assert_eq!(core.tick(&mut none), CoreAction::Halted);
        assert!(core.is_halted());
        assert_eq!(core.tick(&mut none), CoreAction::Halted, "stays halted");
    }

    #[test]
    #[should_panic(expected = "not waiting")]
    fn unsolicited_data_panics() {
        let mut core = core();
        core.data_returned(Address(0));
    }

    #[test]
    fn checkpoint_round_trips_mid_burst() {
        use nim_types::codec::{ByteReader, ByteWriter, Checkpoint};
        let mut a = core();
        let mut ops = vec![
            op(2, AccessKind::Read, 0x40),
            op(30, AccessKind::Write, 0x80),
        ]
        .into_iter();
        // Miss, fill, then park mid-gap so the state enum is nontrivial.
        assert!(matches!(a.tick(&mut || ops.next()), CoreAction::Progress));
        assert!(matches!(a.tick(&mut || ops.next()), CoreAction::Progress));
        assert!(matches!(a.tick(&mut || ops.next()), CoreAction::Request(_)));
        a.data_returned(Address(0x40));
        a.tick(&mut || ops.next()); // enters the 30-gap
        let mut w = ByteWriter::new();
        a.save(&mut w);
        let bytes = w.into_bytes();

        let mut b = core();
        let mut r = ByteReader::new(&bytes);
        b.restore(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "all bytes consumed");
        assert_eq!(b.stats(), a.stats());
        // Both replicas proceed identically with the same remaining ops.
        let rest: Vec<TraceOp> = ops.collect();
        let (mut ia, mut ib) = (rest.clone().into_iter(), rest.into_iter());
        for _ in 0..100 {
            assert_eq!(a.tick(&mut || ia.next()), b.tick(&mut || ib.next()));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.l1d_stats(), b.l1d_stats());
    }

    #[test]
    fn checkpoint_rejects_corrupt_bytes() {
        use nim_types::codec::{ByteReader, ByteWriter, Checkpoint};
        let a = core();
        let mut w = ByteWriter::new();
        a.save(&mut w);
        let mut bytes = w.into_bytes();
        // Poison the state tag (offset: 5×u64 stats + u32 stores).
        bytes[44] = 0xee;
        let mut b = core();
        assert!(b.restore(&mut ByteReader::new(&bytes)).is_err());
        // Truncation is an error, not a panic.
        let mut c = core();
        assert!(c.restore(&mut ByteReader::new(&bytes[..10])).is_err());
    }
}
