//! Epoch sampler: periodic metric snapshots plus wall-clock self-profiling.

use std::fmt::Write as _;
use std::time::Instant;

use crate::json::{json_f64, push_json_string};

/// One snapshot row.
#[derive(Clone, Debug)]
pub struct SampleRow {
    /// Simulation cycle of the snapshot.
    pub cycle: u64,
    /// Wall-clock seconds since the sampler started.
    pub wall_secs: f64,
    /// Values aligned with [`EpochSampler::columns`]; rows recorded
    /// before a column existed are padded with 0 at export.
    pub values: Vec<f64>,
}

/// Snapshots named scalar series every N cycles.
///
/// Columns are registered lazily on first use, so callers just report
/// `(name, value)` pairs each epoch. The sampler also timestamps each
/// row with wall-clock time, from which [`EpochSampler::cycles_per_sec`]
/// derives simulated-cycles-per-wall-second self-profiling.
#[derive(Clone, Debug)]
pub struct EpochSampler {
    every: u64,
    started: Instant,
    columns: Vec<String>,
    rows: Vec<SampleRow>,
}

impl EpochSampler {
    /// Creates a sampler with the given epoch length (cycles, min 1).
    pub fn new(every: u64) -> EpochSampler {
        EpochSampler {
            every: every.max(1),
            started: Instant::now(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The epoch length in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Registered column names, in registration order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Recorded rows, oldest first.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Replaces the column layout and recorded rows wholesale (snapshot
    /// restore). The wall-clock origin restarts at the restore point, so
    /// `wall_secs` of rows recorded afterwards measure the resumed
    /// process — wall-clock fields are never part of bit-identity.
    pub fn restore_rows(&mut self, columns: Vec<String>, rows: Vec<SampleRow>) {
        self.columns = columns;
        self.rows = rows;
        self.started = Instant::now();
    }

    /// Records one snapshot at `cycle` from `(name, value)` pairs.
    /// Unknown names become new columns.
    pub fn record(&mut self, cycle: u64, pairs: &[(&str, f64)]) {
        let mut values = vec![0.0; self.columns.len()];
        for (name, value) in pairs {
            let idx = match self.columns.iter().position(|c| c == name) {
                Some(i) => i,
                None => {
                    self.columns.push((*name).to_string());
                    values.push(0.0);
                    self.columns.len() - 1
                }
            };
            values[idx] = *value;
        }
        self.rows.push(SampleRow {
            cycle,
            wall_secs: self.started.elapsed().as_secs_f64(),
            values,
        });
    }

    /// Records one snapshot from parallel `names`/`values` slices whose
    /// layout is the same every epoch — the allocation-lean path for
    /// callers that precompute their column names once (the simulator's
    /// per-epoch sampler). After the first call registers the columns,
    /// each subsequent epoch is a single `memcpy`-style copy with no
    /// string comparisons.
    ///
    /// # Panics
    ///
    /// Panics if `names` and `values` lengths differ.
    pub fn record_cols(&mut self, cycle: u64, names: &[String], values: &[f64]) {
        assert_eq!(names.len(), values.len(), "column/value length mismatch");
        let aligned = self.columns.len() == names.len()
            && self.columns.iter().zip(names).all(|(c, n)| c == n);
        if aligned {
            self.rows.push(SampleRow {
                cycle,
                wall_secs: self.started.elapsed().as_secs_f64(),
                values: values.to_vec(),
            });
            return;
        }
        // First call (or an interleaved pair-based caller changed the
        // layout): fall back to name matching.
        let pairs: Vec<(&str, f64)> = names
            .iter()
            .map(String::as_str)
            .zip(values.iter().copied())
            .collect();
        self.record(cycle, &pairs);
    }

    /// Simulated cycles per wall-clock second between the first and last
    /// snapshot (0 with fewer than two rows or no elapsed time).
    pub fn cycles_per_sec(&self) -> f64 {
        let (first, last) = match (self.rows.first(), self.rows.last()) {
            (Some(f), Some(l)) if l.cycle > f.cycle => (f, l),
            _ => return 0.0,
        };
        let dt = last.wall_secs - first.wall_secs;
        if dt <= 0.0 {
            0.0
        } else {
            (last.cycle - first.cycle) as f64 / dt
        }
    }

    /// Appends the sampler as one JSON object:
    /// `{"every":N,"columns":[...],"rows":[[cycle,wall_secs,v...],...]}`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"every\":{},\"cycles_per_sec\":{},\"columns\":[",
            self.every,
            json_f64(self.cycles_per_sec())
        );
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, c);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  [{},{}", row.cycle, json_f64(row.wall_secs));
            for col in 0..self.columns.len() {
                let v = row.values.get(col).copied().unwrap_or(0.0);
                out.push(',');
                out.push_str(&json_f64(v));
            }
            out.push(']');
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_grow_lazily_and_old_rows_pad() {
        let mut s = EpochSampler::new(100);
        s.record(100, &[("a", 1.0)]);
        s.record(200, &[("a", 2.0), ("b", 9.0)]);
        assert_eq!(s.columns(), &["a".to_string(), "b".to_string()]);
        assert_eq!(s.rows()[0].values, vec![1.0]);
        assert_eq!(s.rows()[1].values, vec![2.0, 9.0]);
        let mut out = String::new();
        s.write_json(&mut out);
        // Row 0 pads the missing "b" column with 0 in the export.
        assert!(out.contains("[100,"), "{out}");
        assert!(out.ends_with("]}"), "{out}");
    }

    #[test]
    fn cycles_per_sec_needs_two_rows() {
        let mut s = EpochSampler::new(10);
        assert_eq!(s.cycles_per_sec(), 0.0);
        s.record(10, &[]);
        assert_eq!(s.cycles_per_sec(), 0.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.record(1010, &[]);
        assert!(s.cycles_per_sec() > 0.0);
    }
}
