//! The router phase: switch allocation and flit traversal for every
//! active router, in node-index order.
//!
//! The phase body lives on [`Lane`] so the sequential tick and the
//! window executor share one implementation; only the
//! [`DeliverySink`] differs. Node-major indexing is layer-major and
//! shards are node-contiguous, so processing shards in order and each
//! shard's sorted dirty list within equals processing one globally
//! sorted dirty list — the sharded phase is order-identical to the
//! pre-sharding code. A mesh hop across a shard boundary (possible only
//! in the whole-chip sequential lane) marks the destination router in
//! the *current* phase's list when the destination shard has not run
//! yet; the just-arrived flit is stamped `arrived == now`, so that
//! visit is provably a no-op and the router is re-marked for the next
//! cycle — exactly what the pre-sharding single-list code did.

use nim_types::{Coord, Cycle, Dir};

use crate::packet::Flit;
use crate::router::Hold;
use crate::routing::route;

use super::lane::{DeliverySink, Lane};
use super::{Candidate, Network};

impl Network {
    pub(super) fn router_phase(&mut self, now: Cycle) {
        if self.shards.iter().all(|st| st.dirty.is_empty()) {
            return;
        }
        let (mut lane, mut sink) = self.live_parts();
        lane.router_phase(now, &mut sink);
        let (hops, by_class, cont) = (
            lane.flit_hops,
            lane.flit_hops_by_class,
            lane.switch_contention,
        );
        self.fold_lane(hops, by_class, cont);
    }
}

impl Lane<'_> {
    pub(super) fn router_phase(&mut self, now: Cycle, sink: &mut impl DeliverySink) {
        for si in 0..self.shards.len() {
            if self.shards[si].dirty.is_empty() {
                continue;
            }
            let mut work = std::mem::replace(
                &mut self.shards[si].dirty,
                std::mem::take(&mut self.shards[si].dirty_scratch),
            );
            work.sort_unstable();
            for &n in &work {
                self.in_dirty[n as usize - self.base] = false;
            }
            for &n in &work {
                let n = n as usize;
                if self.routers[n - self.base].occupancy == 0 {
                    continue;
                }
                self.process_router(n, now, sink);
                if self.routers[n - self.base].occupancy > 0 {
                    self.mark_dirty(n);
                }
            }
            work.clear();
            self.shards[si].dirty_scratch = work;
        }
    }

    /// Switch allocation for one router: a single scan over the input VCs
    /// collects every movable head flit (routing each once), then every
    /// output port arbitrates among its candidates in round-robin slot
    /// order. Moves performed while an output is served only ever change
    /// the fronts of inputs recorded in `used_input`, which later outputs
    /// skip, so the pre-collected candidates stay exact.
    fn process_router(&mut self, n: usize, now: Cycle, sink: &mut impl DeliverySink) {
        let vcs = self.vcs;
        let local = n - self.base;
        let si = self.shard_ix(n);
        let at = self.routers[local].coord;
        let mut cands = std::mem::take(&mut self.shards[si].cand_scratch);
        debug_assert!(cands.is_empty());
        for (in_dir, input) in self.routers[local].inputs.iter().enumerate() {
            let Some(port) = input else { continue };
            for vc in 0..vcs {
                let Some(front) = port.vc(vc).front(&self.shards[si].arena) else {
                    continue;
                };
                if front.arrived.0 + self.router_latency > now.0 || !front.kind.is_head() {
                    continue;
                }
                cands.push(Candidate {
                    slot: (in_dir * vcs + vc) as u16,
                    out: route(
                        self.layout,
                        self.routes,
                        self.mode,
                        at,
                        front.dst,
                        front.via,
                    ),
                    flit: *front,
                });
            }
        }
        let mut used_input = [false; Dir::COUNT];
        for out in Dir::ALL {
            if self.routers[local].has_output(out) {
                self.process_output(n, out, now, &mut used_input, &cands, sink);
            }
        }
        cands.clear();
        self.shards[si].cand_scratch = cands;
    }

    /// Switch allocation and traversal for one output port of one router.
    fn process_output(
        &mut self,
        n: usize,
        out: Dir,
        now: Cycle,
        used_input: &mut [bool; Dir::COUNT],
        cands: &[Candidate],
        sink: &mut impl DeliverySink,
    ) {
        let oi = out.index();
        let local = n - self.base;
        let si = self.shard_ix(n);
        // An output already claimed by a packet serves only that packet.
        if let Some(hold) = self.routers[local].held[oi] {
            if used_input[hold.in_dir] {
                return;
            }
            let front = self.routers[local].inputs[hold.in_dir]
                .as_ref()
                .and_then(|p| p.vc(hold.vc).front(&self.shards[si].arena))
                .copied();
            let Some(front) = front else { return };
            if front.pkt != hold.pkt || front.arrived.0 + self.router_latency > now.0 {
                return;
            }
            if self.try_move(n, hold.in_dir, hold.vc, out, &front, now, sink) {
                used_input[hold.in_dir] = true;
                if front.kind.is_tail() {
                    self.routers[local].held[oi] = None;
                }
            } else {
                self.switch_contention += 1;
            }
            return;
        }
        // Free output: round-robin over head flits requesting it.
        let vcs = self.vcs;
        let total = (Dir::COUNT * vcs) as u16;
        let rrp = self.routers[local].rr[oi];
        let mut winner: Option<Candidate> = None;
        let mut best_rank = u16::MAX;
        let mut eligible = 0u64;
        for c in cands {
            if c.out != out || used_input[usize::from(c.slot) / vcs] {
                continue;
            }
            eligible += 1;
            let rank = (c.slot + total - rrp) % total;
            if rank < best_rank {
                best_rank = rank;
                winner = Some(*c);
            }
        }
        if eligible > 1 {
            self.switch_contention += eligible - 1;
        }
        let Some(c) = winner else {
            return;
        };
        let (in_dir, vc) = (usize::from(c.slot) / vcs, usize::from(c.slot) % vcs);
        if self.try_move(n, in_dir, vc, out, &c.flit, now, sink) {
            used_input[in_dir] = true;
            if !c.flit.kind.is_tail() {
                self.routers[local].held[oi] = Some(Hold {
                    pkt: c.flit.pkt,
                    in_dir,
                    vc,
                });
            }
            self.routers[local].rr[oi] = (c.slot + 1) % total;
        } else {
            self.switch_contention += 1;
        }
    }

    /// Attempts the actual flit traversal. Returns `false` when downstream
    /// has no space or no free VC (speculation failure — retry next cycle).
    #[allow(clippy::too_many_arguments)]
    fn try_move(
        &mut self,
        n: usize,
        in_dir: usize,
        vc: usize,
        out: Dir,
        front: &Flit,
        now: Cycle,
        sink: &mut impl DeliverySink,
    ) -> bool {
        let local = n - self.base;
        let si = self.shard_ix(n);
        match out {
            Dir::Local => {
                let f = self.routers[local].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.shards[si].arena)
                    .expect("front checked");
                self.routers[local].occupancy -= 1;
                sink.local_pop(n, f, now);
                true
            }
            Dir::Vertical => {
                // The vertical move fills this pillar node's own
                // transceiver interface — owned by this node's shard;
                // the (sequential) bus phase is what later drains it
                // across shards.
                let bus_idx =
                    self.bus_of_node[n].expect("vertical output on non-pillar node") as usize;
                let layer = self.routers[local].coord.layer;
                let is = self.iface_slots[bus_idx * self.layout.layers() as usize + layer as usize];
                debug_assert_eq!(is.shard as usize, si + self.first_shard);
                let slot = is.slot as usize;
                if self.shards[si].ifaces[slot].q.is_full() {
                    return false;
                }
                let mut f = self.routers[local].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.shards[si].arena)
                    .expect("front checked");
                f.arrived = now;
                let st = &mut self.shards[si];
                st.ifaces[slot].q.push_back(&mut st.arena, f);
                if !st.in_touched[bus_idx] {
                    st.in_touched[bus_idx] = true;
                    st.touched_buses.push(bus_idx as u16);
                }
                self.routers[local].occupancy -= 1;
                self.flit_hops += 1;
                self.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[local] += 1;
                let at = self.routers[local].coord;
                sink.flit_hop(now, at, f.class.name());
                true
            }
            _ => {
                let c = self.routers[local].coord;
                let dest = match out {
                    Dir::Up => Coord::new(c.x, c.y, c.layer + 1),
                    Dir::Down => Coord::new(c.x, c.y, c.layer - 1),
                    d => {
                        let (x, y) = d
                            .step(c.x, c.y, self.layout.width(), self.layout.height())
                            .expect("routing stays on the mesh");
                        Coord::new(x, y, c.layer)
                    }
                };
                // In the whole-chip sequential lane every destination is
                // in range and a hop may cross a shard (band) boundary.
                // A window lane holds exactly one shard, and the window
                // planner's mesh-boundary lookahead ended the window
                // before any flit could reach a boundary router — so an
                // out-of-range destination there is a planner bug.
                let dest_idx = self.layout.node_index(dest);
                let dest_local = dest_idx.wrapping_sub(self.base);
                if dest_local >= self.routers.len() {
                    unreachable!(
                        "packet {} hopped {c} -> {dest} across a shard boundary in cycle {} \
                         inside a conservative shard window — the boundary lookahead \
                         under-estimated",
                        front.pkt.0, now.0
                    );
                }
                debug_assert_ne!(dest_local, local);
                let dsi = self.shard_ix(dest_idx);
                let ii = out.opposite().index();
                let dvc = {
                    let port = self.routers[dest_local].inputs[ii]
                        .as_ref()
                        .expect("link implies input port");
                    if front.kind.is_head() {
                        port.free_vc()
                    } else {
                        port.continuation_vc(front.pkt)
                    }
                };
                let Some(dvc) = dvc else {
                    return false;
                };
                let mut f = self.routers[local].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.shards[si].arena)
                    .expect("front checked");
                f.arrived = now;
                f.hops += 1;
                self.routers[dest_local].inputs[ii]
                    .as_mut()
                    .expect("checked above")
                    .vc_mut(dvc)
                    .push(&mut self.shards[dsi].arena, f);
                self.routers[local].occupancy -= 1;
                self.routers[dest_local].occupancy += 1;
                self.mark_dirty(dest_idx);
                self.flit_hops += 1;
                self.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[local] += 1;
                sink.flit_hop(now, c, f.class.name());
                true
            }
        }
    }
}
