//! Network utilisation heat map: where do flits actually travel on each
//! layer of the 3D chip, and how does traffic concentrate around the
//! communication pillars?
//!
//! Runs CMP-DNUCA-3D on wupwise and renders per-router flit traversals
//! as ASCII intensity maps, marking pillar sites (`+`) and CPU seats
//! (`C` overlays the intensity).
//!
//! ```sh
//! cargo run --release --example network_heatmap
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::types::Coord;
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let mut system = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(21)
        .warmup_transactions(1_000)
        .sampled_transactions(15_000)
        .build()?;
    let report = system.run(&BenchmarkProfile::wupwise())?;
    println!(
        "CMP-DNUCA-3D on wupwise: {} packets, {} flit-hops, {} bus transfers\n",
        report.network.packets_delivered, report.network.flit_hops, report.bus_transfers
    );

    let layout = system.layout().clone();
    let seats: Vec<Coord> = system.seats().iter().map(|s| s.coord).collect();
    let traversals = system.network().traversals();
    let peak = traversals.iter().copied().max().unwrap_or(1).max(1);
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

    for layer in 0..layout.layers() {
        println!("layer {layer} (router flit traversals; C = CPU seat):");
        for y in (0..layout.height()).rev() {
            let mut row = String::from("    |");
            for x in 0..layout.width() {
                let c = Coord::new(x, y, layer);
                if seats.contains(&c) {
                    row.push('C');
                    continue;
                }
                let t = traversals[layout.node_index(c)];
                let idx = (t as f64 / peak as f64 * (ramp.len() - 1) as f64).round() as usize;
                row.push(ramp[idx.min(ramp.len() - 1)]);
            }
            row.push('|');
            println!("{row}");
        }
        println!();
    }
    println!(
        "busiest router carries {peak} flit traversals; traffic concentrates\n\
         around the CPU/pillar sites — the congestion the placement rules of\n\
         §3.3 (pillars far apart, CPUs offset) are designed to spread out."
    );
    Ok(())
}
