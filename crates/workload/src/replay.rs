//! Replaying recorded traces.
//!
//! [`ReplayTrace`] loads a trace written by
//! [`TraceWriter`](crate::TraceWriter) into per-CPU queues and implements
//! [`TraceSource`], so a recorded reference stream can drive the
//! simulator exactly as the synthetic generator does — useful for
//! comparing cache policies on bit-identical inputs, or for driving the
//! system with externally captured traces.

use std::collections::VecDeque;
use std::io::BufRead;

use nim_types::{CpuId, TraceOp};

use crate::generator::TraceSource;
use crate::trace_io::{TraceReadError, TraceReader};

/// A fully-loaded trace, ready to replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayTrace {
    queues: Vec<VecDeque<TraceOp>>,
}

impl ReplayTrace {
    /// Loads a trace from any reader (see
    /// [`TRACE_HEADER`](crate::TRACE_HEADER) for the format). Pass
    /// `&mut reader` to keep using the reader afterwards.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from [`TraceReader`].
    pub fn from_reader<R: BufRead>(input: R) -> Result<Self, TraceReadError> {
        let mut reader = TraceReader::new(input)?;
        let mut trace = ReplayTrace::default();
        while let Some((cpu, op)) = reader.next_record()? {
            trace.push(cpu, op);
        }
        Ok(trace)
    }

    /// Appends one reference to a CPU's queue.
    pub fn push(&mut self, cpu: CpuId, op: TraceOp) {
        if self.queues.len() <= cpu.index() {
            self.queues.resize_with(cpu.index() + 1, VecDeque::new);
        }
        self.queues[cpu.index()].push_back(op);
    }

    /// References still queued for one CPU.
    pub fn remaining(&self, cpu: CpuId) -> usize {
        self.queues.get(cpu.index()).map_or(0, VecDeque::len)
    }

    /// Total references still queued.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether every queue is drained.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

impl TraceSource for ReplayTrace {
    fn next_for(&mut self, cpu: CpuId) -> Option<TraceOp> {
        self.queues.get_mut(cpu.index())?.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkProfile, TraceGenerator, TraceWriter};

    #[test]
    fn replay_reproduces_the_recorded_stream_per_cpu() {
        let mut gen = TraceGenerator::new(&BenchmarkProfile::synthetic(), 2, 9);
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        let mut expected: Vec<Vec<TraceOp>> = vec![Vec::new(); 2];
        for i in 0..200u16 {
            let cpu = CpuId(i % 2);
            let op = gen.next_op(cpu);
            writer.record(cpu, op).unwrap();
            expected[cpu.index()].push(op);
        }
        let bytes = writer.finish().unwrap();
        let mut replay = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
        assert_eq!(replay.len(), 200);
        assert_eq!(replay.remaining(CpuId(0)), 100);
        for cpu in [CpuId(0), CpuId(1)] {
            for want in &expected[cpu.index()] {
                assert_eq!(replay.next_for(cpu), Some(*want));
            }
            assert_eq!(replay.next_for(cpu), None, "stream ends");
        }
        assert!(replay.is_empty());
    }

    #[test]
    fn unknown_cpus_have_empty_streams() {
        let mut replay = ReplayTrace::default();
        assert_eq!(replay.next_for(CpuId(5)), None);
        assert_eq!(replay.remaining(CpuId(5)), 0);
        assert!(replay.is_empty());
    }
}
