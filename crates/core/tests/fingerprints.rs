//! Recorded-fingerprint regression harness: the refactor of `System`
//! into the txn/protocol/fabric layering must be behavior-preserving,
//! bit for bit. Each cell runs a small seeded simulation and reduces
//! everything a run can disagree on — the full `RunReport`, the final
//! cycle, the per-cluster hit/miss matrix, and the epoch-sample rows —
//! to one stable 64-bit digest ([`nim_types::FxHasher`], not SipHash,
//! so the value is identical across platforms and toolchains). The
//! constants below were recorded at the pre-refactor HEAD; any protocol
//! or timing divergence shows up as a digest mismatch.

use std::fmt::Write as _;
use std::hash::Hasher as _;

use nim_core::{Scheme, SystemBuilder};
use nim_obs::{Obs, ObsConfig};
use nim_types::FxHasher;
use nim_workload::BenchmarkProfile;

/// One recorded cell: scheme, benchmark, extension knobs, digest.
struct Cell {
    scheme: Scheme,
    benchmark: &'static str,
    replication: bool,
    edge_memory: bool,
    digest: u64,
}

const CELLS: [Cell; 6] = [
    Cell {
        scheme: Scheme::CmpDnuca,
        benchmark: "art",
        replication: false,
        edge_memory: false,
        digest: 0x0ee7_c86c_4fe6_2387,
    },
    Cell {
        scheme: Scheme::CmpDnuca2d,
        benchmark: "art",
        replication: false,
        edge_memory: false,
        digest: 0x2c6a_1a7a_85f4_e914,
    },
    Cell {
        scheme: Scheme::CmpSnuca3d,
        benchmark: "art",
        replication: false,
        edge_memory: false,
        digest: 0x8df6_94aa_7ffe_8b04,
    },
    Cell {
        scheme: Scheme::CmpDnuca3d,
        benchmark: "art",
        replication: false,
        edge_memory: false,
        digest: 0x18b1_8f4e_0855_283e,
    },
    // Extension paths: replication and edge memory controllers ride the
    // same transaction engine, so they are pinned too.
    Cell {
        scheme: Scheme::CmpDnuca3d,
        benchmark: "swim",
        replication: true,
        edge_memory: false,
        digest: 0xf829_379c_7dd2_84a9,
    },
    Cell {
        scheme: Scheme::CmpSnuca3d,
        benchmark: "swim",
        replication: false,
        edge_memory: true,
        digest: 0x2449_2d76_1062_62e2,
    },
];

fn profile(name: &str) -> BenchmarkProfile {
    match name {
        "art" => BenchmarkProfile::art(),
        "swim" => BenchmarkProfile::swim(),
        other => panic!("unknown benchmark {other}"),
    }
}

fn digest_of(cell: &Cell) -> u64 {
    let obs = Obs::new(ObsConfig {
        sample_every: 2_000,
        ..ObsConfig::default()
    });
    let mut sys = SystemBuilder::new(cell.scheme)
        .seed(42)
        .warmup_transactions(50)
        .sampled_transactions(400)
        .replication(cell.replication)
        .edge_memory_controllers(cell.edge_memory)
        .observability(obs.clone())
        .build()
        .expect("system builds");
    let report = sys.run(&profile(cell.benchmark)).expect("run completes");
    let mut blob = format!("{report:?}\nfinal_cycle={}\n", sys.network().now().0);
    obs.with_metrics(|m| {
        for (name, metric) in m.with_prefix("l2/hits/") {
            let _ = writeln!(blob, "{name} = {metric:?}");
        }
        for (name, metric) in m.with_prefix("l2/miss_from/") {
            let _ = writeln!(blob, "{name} = {metric:?}");
        }
    })
    .expect("obs enabled");
    let mut trace = Vec::new();
    obs.export_trace(&mut trace).expect("trace export");
    for line in String::from_utf8(trace)
        .expect("utf-8 trace")
        .lines()
        .filter(|l| !l.contains("trace_summary"))
    {
        blob.push_str(line);
        blob.push('\n');
    }
    let mut h = FxHasher::default();
    h.write(blob.as_bytes());
    h.finish()
}

#[test]
fn run_fingerprints_match_the_recorded_pre_refactor_values() {
    for cell in &CELLS {
        let got = digest_of(cell);
        // `NIM_RECORD_FP=1 cargo test -p nim-core --test fingerprints --
        // --nocapture` prints fresh digests instead of asserting — use it
        // to re-record after an *intentional* behavior change.
        if std::env::var_os("NIM_RECORD_FP").is_some() {
            eprintln!(
                "RECORD {:?}/{}/repl={}/edge_mc={} 0x{got:016x}",
                cell.scheme, cell.benchmark, cell.replication, cell.edge_memory
            );
            continue;
        }
        assert_eq!(
            got, cell.digest,
            "{:?}/{}/repl={}/edge_mc={}: fingerprint 0x{got:016x} diverged from \
             the recorded pre-refactor digest 0x{:016x}",
            cell.scheme, cell.benchmark, cell.replication, cell.edge_memory, cell.digest
        );
    }
}
