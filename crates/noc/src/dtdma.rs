//! The dTDMA bus "communication pillar" (paper §3.1).
//!
//! A pillar is a vertical bus spanning all device layers, one flit wide.
//! Its arbiter dynamically grows and shrinks the number of timeslots to
//! match the number of active clients, which makes the bus nearly 100%
//! bandwidth-efficient: at the flit timeline level this is exactly
//! work-conserving round-robin over the interfaces that currently have
//! flits queued, transferring one flit per cycle, single-hop between any
//! two layers.
//!
//! Each layer's pillar router feeds the bus through a small transceiver
//! interface buffer; the network moves flits router → interface, and the
//! bus arbiter moves them interface → destination layer's pillar router.
//!
//! The interface buffers themselves live in
//! [`Network`](crate::network::Network), grouped by the shard that owns
//! their layer, so a shard can fill its own interfaces without touching
//! any other shard's state; [`DtdmaBus`] keeps only the arbiter state
//! (round-robin pointer, statistics) that the sequential bus phase owns.

use nim_types::PillarId;

use crate::packet::{FlitArena, FlitFifo};

/// Counters kept per pillar bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Flits transferred across the bus.
    pub transfers: u64,
    /// Cycles in which a flit was transferred.
    pub busy_cycles: u64,
    /// Cycles in which two or more interfaces had flits waiting — the
    /// contention the paper varies via the pillar count (Fig. 17).
    pub contention_cycles: u64,
    /// Running peak of the total flits queued at the bus interfaces.
    pub peak_queued: u64,
}

/// One transceiver interface: the per-layer queue feeding the bus.
#[derive(Clone, Debug)]
pub(crate) struct Iface {
    pub q: FlitFifo,
    /// Destination-side VC bound by the in-transfer packet (set by its
    /// head flit, cleared by its tail), so multi-flit packets land in a
    /// single VC even when the arbiter interleaves transmitters.
    pub bound_vc: Option<usize>,
}

impl Iface {
    pub(crate) fn new(arena: &mut FlitArena, cap: usize) -> Self {
        Self {
            q: FlitFifo::new(arena, cap),
            bound_vc: None,
        }
    }
}

/// A dTDMA pillar bus: the arbiter state shared across all layers.
#[derive(Clone, Debug)]
pub(crate) struct DtdmaBus {
    #[allow(dead_code)] // identifies the bus in diagnostics and tests
    pub pillar: PillarId,
    /// Pillar position, identical on every layer.
    pub xy: (u8, u8),
    /// Round-robin pointer over interfaces (the dynamic slot schedule).
    pub rr: usize,
    pub stats: BusStats,
}

impl DtdmaBus {
    pub(crate) fn new(pillar: PillarId, xy: (u8, u8)) -> Self {
        Self {
            pillar,
            xy,
            rr: 0,
            stats: BusStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Flit, FlitKind, TrafficClass};
    use nim_types::{Coord, Cycle, PacketId};

    fn flit() -> Flit {
        Flit {
            pkt: PacketId(1),
            kind: FlitKind::HeadTail,
            src: Coord::new(0, 0, 0),
            dst: Coord::new(0, 0, 1),
            via: Some(PillarId(0)),
            class: TrafficClass::Control,
            token: 0,
            injected: Cycle::ZERO,
            arrived: Cycle::ZERO,
            hops: 0,
            bus_wait: 0,
        }
    }

    #[test]
    fn iface_respects_capacity() {
        let mut arena = FlitArena::default();
        let mut a = Iface::new(&mut arena, 2);
        let b = Iface::new(&mut arena, 2);
        a.q.push_back(&mut arena, flit());
        a.q.push_back(&mut arena, flit());
        assert!(a.q.is_full());
        assert!(!b.q.is_full(), "interfaces are independent");
        assert_eq!(a.q.len() + b.q.len(), 2);
        assert_eq!(a.bound_vc, None);
    }

    #[test]
    fn bus_starts_with_zeroed_arbiter() {
        let bus = DtdmaBus::new(PillarId(3), (1, 1));
        assert_eq!(bus.pillar, PillarId(3));
        assert_eq!(bus.rr, 0);
        assert_eq!(bus.stats, BusStats::default());
    }
}
