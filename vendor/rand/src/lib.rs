//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! provides the subset of the `rand` 0.10 API the workspace uses:
//! [`SeedableRng`], [`rngs::StdRng`], and the [`RngExt`] extension
//! methods (`random`, `random_range`, `random_bool`). The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic per seed, good
//! statistical quality for workload synthesis, and entirely `std`-only.
//!
//! It is NOT a cryptographic RNG and makes no attempt to match the
//! value streams of the real `rand` crate; workloads are deterministic
//! per seed under *this* implementation.

#![forbid(unsafe_code)]

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a uniformly-distributed value of a type.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// The core generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Bounds usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of one 64-bit draw is irrelevant here.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniformly-distributed value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded by
    /// SplitMix64. Deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac} far from 0.3");
    }
}
