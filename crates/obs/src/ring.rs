//! Bounded event ring buffer.

use crate::event::Event;

/// A fixed-capacity ring of trace events.
///
/// When full, the oldest event is overwritten and the dropped counter
/// increments — a long run keeps the most recent window rather than
/// exhausting memory or silently losing the tail.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            buf: Vec::new(),
            cap: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;

    fn note(cycle: u64) -> Event {
        Event {
            cycle,
            data: EventData::Note {
                label: format!("e{cycle}"),
            },
        }
    }

    #[test]
    fn wraps_and_counts_drops() {
        let mut ring = TraceBuffer::new(3);
        for c in 0..5 {
            ring.push(note(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "keeps the newest window, in order");
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = TraceBuffer::new(8);
        for c in 0..5 {
            ring.push(note(c));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let cycles: Vec<u64> = ring.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }
}
