//! Single-stage wormhole router state.
//!
//! The paper adopts speculative allocation and look-ahead routing to get a
//! single-cycle router (§3.2, citing Peh & Dally and Mullins et al.). We
//! model the *resulting timing*: a flit that wins switch allocation
//! traverses to the next router's input buffer in one cycle; a flit that
//! loses retries the next cycle. Routing is recomputed combinationally
//! from the destination at every hop (look-ahead makes this free in
//! hardware).
//!
//! Pillar routers carry one extra physical channel — the `Vertical` port —
//! interfacing the dTDMA bus (Figure 7); the router sees it as just
//! another port. The 7-port 3D-mesh ablation router instead carries `Up`
//! and `Down` ports.

use nim_types::{Coord, Dir, PacketId};

use crate::packet::FlitArena;
use crate::vc::InputPort;

/// An output port held by an in-flight packet (wormhole: once a head flit
/// claims an output, body flits follow contiguously until the tail).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Hold {
    pub pkt: PacketId,
    /// Input direction the packet is streaming from.
    pub in_dir: usize,
    /// VC index within that input port.
    pub vc: usize,
}

/// One router: per-input-port VC buffers plus switch-allocation state.
#[derive(Clone, Debug)]
pub(crate) struct Router {
    pub coord: Coord,
    /// Input buffers, indexed by [`Dir::index`]; `None` where the port
    /// does not exist (mesh edge, non-pillar node, ...).
    pub inputs: [Option<InputPort>; Dir::COUNT],
    /// Output ports that exist, as a bitmask over [`Dir::index`].
    pub out_mask: u8,
    /// Per-output wormhole hold.
    pub held: [Option<Hold>; Dir::COUNT],
    /// Per-output round-robin arbitration pointer (over `in_dir * V + vc`).
    pub rr: [u16; Dir::COUNT],
    /// Total flits buffered in this router.
    pub occupancy: u32,
}

impl Router {
    /// Creates a router with the given input/output ports.
    pub(crate) fn new(
        arena: &mut FlitArena,
        coord: Coord,
        in_dirs: &[Dir],
        out_dirs: &[Dir],
        vcs: usize,
        depth: usize,
    ) -> Self {
        let mut inputs: [Option<InputPort>; Dir::COUNT] = Default::default();
        for d in in_dirs {
            inputs[d.index()] = Some(InputPort::new(arena, vcs, depth));
        }
        let mut out_mask = 0u8;
        for d in out_dirs {
            out_mask |= 1 << d.index();
        }
        Self {
            coord,
            inputs,
            out_mask,
            held: Default::default(),
            rr: [0; Dir::COUNT],
            occupancy: 0,
        }
    }

    /// Whether the router has an output port in direction `d`.
    #[inline]
    pub(crate) fn has_output(&self, d: Dir) -> bool {
        self.out_mask & (1 << d.index()) != 0
    }

    /// Number of physical ports (inputs), for statistics.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub(crate) fn num_ports(&self) -> usize {
        self.inputs.iter().filter(|p| p.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_created_where_requested() {
        let mut arena = FlitArena::default();
        let r = Router::new(
            &mut arena,
            Coord::new(0, 0, 0),
            &[Dir::East, Dir::North, Dir::Local],
            &[Dir::East, Dir::North, Dir::Local],
            3,
            4,
        );
        assert!(r.inputs[Dir::East.index()].is_some());
        assert!(r.inputs[Dir::West.index()].is_none());
        assert!(r.has_output(Dir::East));
        assert!(!r.has_output(Dir::West));
        assert_eq!(r.num_ports(), 3);
        assert_eq!(r.occupancy, 0);
    }

    #[test]
    fn pillar_router_has_six_ports() {
        let dirs = [
            Dir::North,
            Dir::South,
            Dir::East,
            Dir::West,
            Dir::Local,
            Dir::Vertical,
        ];
        let mut arena = FlitArena::default();
        let r = Router::new(&mut arena, Coord::new(2, 2, 0), &dirs, &dirs, 3, 4);
        assert_eq!(
            r.num_ports(),
            6,
            "5-port mesh router + 1 vertical (paper §3.1)"
        );
    }
}
