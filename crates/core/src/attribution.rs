//! Engine-side latency attribution: closing [`TxnTimeline`] segments
//! and publishing the per-transaction breakdown.
//!
//! The timeline arithmetic itself lives in [`crate::txn`]; this module
//! is where the protocol engine decides *which* [`Phase`] each elapsed
//! segment belongs to. Three touch points cover every cycle of a
//! transaction's life:
//!
//! * [`Engine::credit_delivery`] — a packet carrying the transaction
//!   reached its destination: the open segment is network time,
//!   split into dTDMA pillar wait (carried on the [`Delivered`]
//!   record) and horizontal hops.
//! * [`Engine::credit_event`] — a timed event (tag probe, bank access)
//!   fired: the segment splits into the claim's serialization wait,
//!   any pillar fan-out hops, and L2 service.
//! * [`Engine::finish_counters`] — completion: the buckets are folded
//!   into [`Counters`](crate::report::Counters) and, for sampled
//!   transactions, emitted as the closing half of a Perfetto async
//!   span.
//!
//! Because each touch closes exactly the segment since the previous
//! touch, the buckets telescope: their sum equals the end-to-end
//! latency *by construction*, and [`Engine::finish_counters`]
//! debug-asserts that invariant on every completion — the standing
//! accounting oracle of the attribution layer.
//!
//! [`TxnTimeline`]: crate::txn::TxnTimeline

use nim_cpu::MemRequest;
use nim_obs::{Category, EventData};
use nim_types::{AccessKind, Cycle};

use crate::fabric::{Delivered, Fabric};
use crate::protocol::Engine;
use crate::token::Token;
use crate::txn::{Phase, Txn, TxnId, TxnState};

impl Engine {
    /// Opens the Perfetto async span for a sampled transaction (the
    /// matching end is emitted by [`Engine::finish_counters`]).
    pub(crate) fn emit_txn_begin(&self, f: &impl Fabric, id: TxnId, req: &MemRequest) {
        if f.obs().txn_span_due(u64::from(id)) {
            let kind = match req.kind {
                AccessKind::Read => "read",
                AccessKind::IFetch => "ifetch",
                AccessKind::Write => "write",
            };
            f.obs().emit(Category::Txn, || EventData::TxnBegin {
                txn: u64::from(id),
                cpu: req.cpu.index() as u32,
                kind,
            });
        }
    }

    /// Closes a transaction's open attribution segment at a timed-event
    /// fire: the claim's serialization wait goes to
    /// [`Phase::ResourceQueue`], pillar fan-out hops to
    /// [`Phase::NocHop`], and the rest of the segment is L2 service.
    pub(crate) fn credit_event(&mut self, id: TxnId, queue: u64, fanout: u64, now: Cycle) {
        if let Some(t) = self.txns.get_mut(id) {
            t.timeline.credit_with(
                Phase::L2Service,
                &[(Phase::ResourceQueue, queue), (Phase::NocHop, fanout)],
                now,
            );
        }
    }

    /// Closes a transaction's open segment at packet delivery: network
    /// time, carved into the cycles the flit spent waiting for a dTDMA
    /// pillar slot and horizontal NoC hops. First credit wins when
    /// parallel probes serve one transaction — `credit_with` clamps to
    /// the remaining segment, so later arrivals add nothing.
    pub(crate) fn credit_delivery(&mut self, token: Token, d: &Delivered, now: Cycle) {
        if let Some(id) = token.txn_id() {
            if let Some(t) = self.txns.get_mut(id) {
                t.timeline.credit_with(
                    Phase::NocHop,
                    &[(Phase::PillarWait, u64::from(d.bus_wait))],
                    now,
                );
            }
        }
    }

    /// Completion accounting for one transaction: headline counters,
    /// the phase-bucket totals, the per-cluster hit/miss matrix, the
    /// latency histogram, and (for sampled transactions) the closing
    /// span event carrying the full breakdown.
    pub(crate) fn finish_counters(&mut self, f: &mut impl Fabric, id: TxnId, t: &Txn, now: Cycle) {
        let latency = now - t.issued;
        self.counters.l2_transactions += 1;
        // The accounting oracle: the delivery that completed this
        // transaction closed its final segment, so the telescoping
        // phase buckets must sum exactly to the end-to-end latency.
        debug_assert_eq!(
            t.timeline.attributed_to(),
            now.0,
            "txn {id} completed with an open attribution segment"
        );
        debug_assert_eq!(
            t.timeline.total(),
            latency,
            "txn {id}: phase buckets must sum to end-to-end latency"
        );
        let b = t.timeline.buckets();
        self.counters.noc_hop_cycles += b[Phase::NocHop as usize];
        self.counters.pillar_wait_cycles += b[Phase::PillarWait as usize];
        self.counters.resource_queue_cycles += b[Phase::ResourceQueue as usize];
        self.counters.l2_service_cycles += b[Phase::L2Service as usize];
        self.counters.mem_wait_cycles += b[Phase::MemWait as usize];
        let obs = f.obs();
        if obs.txn_span_due(u64::from(id)) {
            obs.emit(Category::Txn, || EventData::TxnEnd {
                txn: u64::from(id),
                noc_hop: b[Phase::NocHop as usize],
                pillar_wait: b[Phase::PillarWait as usize],
                resource_queue: b[Phase::ResourceQueue as usize],
                l2_service: b[Phase::L2Service as usize],
                mem_wait: b[Phase::MemWait as usize],
                total: latency,
            });
        }
        if obs.is_enabled() {
            // Per-cluster hit/miss matrix: requester's local cluster
            // crossed with the cluster that served (or "miss").
            let local = self.plans[t.cpu.index()].local.0;
            match t.state {
                TxnState::MemoryWait => {
                    obs.counter_add(&format!("l2/miss_from/{local}"), 1);
                }
                TxnState::Serving { cluster } => {
                    obs.counter_add(&format!("l2/hits/{local}/{}", cluster.0), 1);
                }
                TxnState::Searching { .. } => {}
            }
            obs.histogram_record("l2/txn_latency", latency);
        }
        if t.was_miss() {
            self.counters.l2_misses += 1;
            self.counters.miss_latency_sum += latency;
        } else {
            self.counters.l2_hits += 1;
            self.counters.hit_latency_sum += latency;
            match t.step {
                2 => {
                    self.counters.step2_hits += 1;
                    self.counters.step2_latency_sum += latency;
                }
                _ => {
                    self.counters.step1_hits += 1;
                    self.counters.step1_latency_sum += latency;
                }
            }
        }
    }
}
