//! Clusters: groups of banks with a shared tag array (paper §4.1).
//!
//! Each cluster contains a set of cache banks and a separate tag array
//! covering every line in the cluster. Because a line's bank slot and set
//! are fixed by its address (only the *cluster* varies under migration),
//! the tag array lookup is exactly one set probe in one bank.

use nim_types::addr::L2Map;
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{ClusterId, LineAddr};

use crate::bank::{Bank, Inserted};

/// One cluster of banks plus its tag array.
#[derive(Clone, Debug)]
pub struct Cluster {
    id: ClusterId,
    banks: Vec<Bank>,
}

impl Cluster {
    /// Creates an empty cluster for the given L2 geometry.
    pub fn new(id: ClusterId, map: &L2Map, ways: u32) -> Self {
        Self {
            id,
            banks: (0..map.banks_per_cluster())
                .map(|_| Bank::new(map.sets_per_bank(), ways))
                .collect(),
        }
    }

    /// This cluster's id.
    #[inline]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Tag-array probe: is `line` resident here?
    pub fn contains(&self, map: &L2Map, line: LineAddr) -> bool {
        let bank = map.bank_in_cluster(line) as usize;
        let set = map.set_in_bank(line);
        self.banks[bank].lookup(set, line).is_some()
    }

    /// Marks `line` most-recently used (on a hit).
    pub fn touch(&mut self, map: &L2Map, line: LineAddr) {
        let bank = map.bank_in_cluster(line) as usize;
        let set = map.set_in_bank(line);
        self.banks[bank].touch(set, line);
    }

    /// Inserts `line`, evicting the pseudo-LRU victim of its set if full.
    pub fn insert(&mut self, map: &L2Map, line: LineAddr) -> Inserted {
        let bank = map.bank_in_cluster(line) as usize;
        let set = map.set_in_bank(line);
        self.banks[bank].insert(set, line)
    }

    /// Removes `line`; returns whether it was present.
    pub fn remove(&mut self, map: &L2Map, line: LineAddr) -> bool {
        let bank = map.bank_in_cluster(line) as usize;
        let set = map.set_in_bank(line);
        self.banks[bank].remove(set, line)
    }

    /// Lines resident in this cluster.
    pub fn occupancy(&self) -> usize {
        self.banks.iter().map(Bank::occupancy).sum()
    }
}

impl Checkpoint for Cluster {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.banks.len() as u32);
        for bank in &self.banks {
            bank.save(w);
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.u32()? as usize != self.banks.len() {
            return Err(CodecError::Corrupt("cluster bank count mismatch"));
        }
        for bank in &mut self.banks {
            bank.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::L2Config;

    fn cluster() -> (L2Map, Cluster) {
        let l2 = L2Config::default();
        let map = l2.map();
        (map, Cluster::new(ClusterId(3), &map, l2.ways))
    }

    #[test]
    fn insert_contains_remove_round_trip() {
        let (map, mut cl) = cluster();
        let line = LineAddr(0xdead);
        assert!(!cl.contains(&map, line));
        cl.insert(&map, line);
        assert!(cl.contains(&map, line));
        assert_eq!(cl.occupancy(), 1);
        assert!(cl.remove(&map, line));
        assert!(!cl.contains(&map, line));
    }

    #[test]
    fn lines_land_in_their_address_mapped_bank() {
        let (map, mut cl) = cluster();
        // Two lines differing only in bank bits must not conflict even in
        // the same set position.
        let a = LineAddr(0b0000);
        let b = LineAddr(0b0001);
        cl.insert(&map, a);
        cl.insert(&map, b);
        assert!(cl.contains(&map, a) && cl.contains(&map, b));
        assert_eq!(cl.occupancy(), 2);
    }

    #[test]
    fn conflict_misses_evict_within_one_set() {
        let (map, mut cl) = cluster();
        // 17 lines mapping to the same (bank 0, set 0) slot of a 16-way set:
        // stride = one full cluster of index space (2^10 lines).
        let stride = 1u64 << 10;
        let mut evicted = None;
        for i in 0..17u64 {
            let ins = cl.insert(&map, LineAddr(i * stride * 16)); // keep cluster field stable
            if ins.evicted.is_some() {
                evicted = ins.evicted;
            }
        }
        assert!(evicted.is_some(), "17th line must evict from a 16-way set");
        assert_eq!(cl.occupancy(), 16);
    }

    #[test]
    fn id_is_preserved() {
        let (_, cl) = cluster();
        assert_eq!(cl.id(), ClusterId(3));
    }
}
