//! Property-based tests of the trace generator: every profile keeps its
//! addresses inside declared regions, respects its mix probabilities,
//! and stays deterministic — including across thread rotations.

use nim_types::{AccessKind, CpuId};
use nim_workload::{cpu_regions, shared_region, BenchmarkProfile, TraceGenerator};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.05f64..0.5, // mem_per_instr
        0.0f64..0.3,  // store_frac
        0.0f64..0.05, // ifetch_frac
        0.0f64..0.5,  // streaming_frac
        0.0f64..0.5,  // shared_frac
        0.0f64..0.9,  // shared_reuse
        6u32..10,     // hot_lines (log2)
        8u32..14,     // footprint_lines (log2)
        8u32..14,     // shared_lines (log2)
    )
        .prop_map(
            |(mem, store, ifetch, stream, shared, reuse, hot, fp, sh)| BenchmarkProfile {
                name: "prop",
                fastforward_mcycles: 0,
                paper_l2_transactions: 0,
                mem_per_instr: mem,
                store_frac: store,
                ifetch_frac: ifetch,
                streaming_frac: stream,
                shared_frac: shared,
                shared_reuse: reuse,
                hot_lines: 1 << hot,
                footprint_lines: 1 << fp,
                shared_lines: 1 << sh,
                code_lines: 64,
            },
        )
        .prop_filter("stream+shared <= 1", |p| {
            p.streaming_frac + p.shared_frac <= 1.0
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_address_lands_in_a_declared_region(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        let cpus = 4u32;
        let mut gen = TraceGenerator::new(&profile, cpus, seed);
        let shared = shared_region(&profile);
        // Collect the union of every thread's regions: rotation may hand
        // any thread's stream to any CPU.
        let all_regions: Vec<_> = (0..cpus)
            .map(|c| cpu_regions(&profile, CpuId(c as u16)))
            .collect();
        for i in 0..3_000u32 {
            let cpu = CpuId((i % cpus) as u16);
            let op = gen.next_op(cpu);
            let a = op.addr.0;
            let inside = |base: u64, lines: u32| {
                a >= base && a < base + u64::from(lines) * 64
            };
            let ok = inside(shared.base, shared.lines)
                || all_regions.iter().any(|r| {
                    inside(r.hot.base, r.hot.lines)
                        || inside(r.stream.base, r.stream.lines)
                        || inside(r.code.base, r.code.lines)
                });
            prop_assert!(ok, "address {a:#x} outside every region");
            if op.kind == AccessKind::IFetch {
                let in_code = all_regions
                    .iter()
                    .any(|r| inside(r.code.base, r.code.lines));
                prop_assert!(in_code, "ifetch outside the code loops");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        let mut a = TraceGenerator::new(&profile, 2, seed);
        let mut b = TraceGenerator::new(&profile, 2, seed);
        for i in 0..500u32 {
            let cpu = CpuId((i % 2) as u16);
            prop_assert_eq!(a.next_op(cpu), b.next_op(cpu), "op {}", i);
        }
    }

    #[test]
    fn store_fraction_tracks_the_profile(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        prop_assume!(profile.store_frac > 0.05);
        let mut gen = TraceGenerator::new(&profile, 1, seed);
        let n = 20_000u32;
        let mut stores = 0u32;
        let mut data_ops = 0u32;
        for _ in 0..n {
            let op = gen.next_op(CpuId(0));
            if op.kind != AccessKind::IFetch {
                data_ops += 1;
                if op.kind == AccessKind::Write {
                    stores += 1;
                }
            }
        }
        let measured = f64::from(stores) / f64::from(data_ops.max(1));
        prop_assert!(
            (measured - profile.store_frac).abs() < 0.03,
            "measured {measured:.3} vs profile {:.3}",
            profile.store_frac
        );
    }
}
