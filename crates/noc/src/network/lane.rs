//! The per-shard execution view.
//!
//! [`Lane`] borrows exactly the state one shard's router and injection
//! phases may touch — its [`ShardState`](super::ShardState) plus the
//! node-indexed slices (routers, injectors, mark flags, traversal
//! counters) restricted to the shard's contiguous node range. Both the
//! sequential tick and the multi-threaded window executor run the *same*
//! phase code through a `Lane`; only the [`DeliverySink`] differs:
//!
//! * [`LiveSink`] — the sequential tick's sink. Performs delivery
//!   bookkeeping and emits trace events immediately through the (thread
//!   -bound) [`Obs`] handle.
//! * [`WindowSink`] — the window executor's sink. Defers `FlitHop`
//!   events into a per-shard buffer for deterministic replay at the
//!   barrier, and treats a delivery as a bug: the window planner proved
//!   no flit can reach a local port inside the window.
//!
//! Statistics counters that outlive a phase (`flit_hops`,
//! `switch_contention`, …) accumulate on the `Lane` itself and are
//! folded into [`NetworkStats`] when the lane retires, so threaded
//! lanes never contend on shared counters.

use std::collections::VecDeque;

use nim_obs::{Category, EventData, Obs};
use nim_topology::{ChipLayout, RouteMap};
use nim_types::{Coord, Cycle};

use crate::packet::{Delivered, Flit};
use crate::routing::VerticalMode;
use crate::stats::NetworkStats;

use super::{c3, Injector, Network, ShardState};

/// A `FlitHop` event deferred by a window lane: (cycle, position,
/// traffic-class name).
pub(super) type DeferredHop = (u64, [u16; 3], &'static str);

/// Where a lane's router phase reports flits that left the network: a
/// flit ejected at a local port, or a router-to-router hop to trace.
pub(super) trait DeliverySink {
    /// A flit was popped at node `node`'s local port at time `now`.
    fn local_pop(&mut self, node: usize, flit: Flit, now: Cycle);
    /// A flit traversed router `at` (mesh hop or vertical enqueue).
    fn flit_hop(&mut self, now: Cycle, at: Coord, class: &'static str);
}

/// The sequential tick's sink: full delivery bookkeeping plus immediate
/// trace emission. Holds the non-`Send` [`Obs`] handle, so it only ever
/// exists on the simulation thread.
pub(super) struct LiveSink<'a> {
    pub obs: &'a Obs,
    pub outbox: &'a mut [VecDeque<Delivered>],
    pub in_delivered: &'a mut [bool],
    pub delivered_nodes: &'a mut Vec<u32>,
    pub flits_in_flight: &'a mut u64,
    pub stats: &'a mut NetworkStats,
}

impl DeliverySink for LiveSink<'_> {
    fn local_pop(&mut self, node: usize, f: Flit, now: Cycle) {
        *self.flits_in_flight -= 1;
        if f.kind.is_tail() {
            let d = Delivered {
                packet: f.pkt,
                src: f.src,
                dst: f.dst,
                class: f.class,
                token: f.token,
                injected: f.injected,
                delivered: now,
                hops: f.hops,
                bus_wait: f.bus_wait,
            };
            self.stats.record_delivery(&d);
            self.obs
                .emit(Category::Packet, || EventData::PacketDeliver {
                    packet: d.packet.0,
                    dst: c3(d.dst),
                    latency: d.latency(),
                    hops: u32::from(d.hops),
                });
            self.outbox[node].push_back(d);
            if !self.in_delivered[node] {
                self.in_delivered[node] = true;
                self.delivered_nodes.push(node as u32);
            }
        }
    }

    fn flit_hop(&mut self, _now: Cycle, at: Coord, class: &'static str) {
        self.obs
            .emit(Category::Hop, || EventData::FlitHop { at: c3(at), class });
    }
}

/// A window lane's sink: `Send`, defers hops, and rejects deliveries
/// (the conservative horizon guarantees none can occur in-window).
pub(super) struct WindowSink {
    pub hops: Vec<DeferredHop>,
    /// Whether hop events are wanted at all; when the trace category is
    /// off, deferring them would only burn memory.
    pub record: bool,
}

impl DeliverySink for WindowSink {
    fn local_pop(&mut self, node: usize, f: Flit, now: Cycle) {
        unreachable!(
            "packet {} delivered at node {node} in cycle {} inside a \
             conservative shard window — the horizon planner under-estimated",
            f.pkt.0, now.0
        );
    }

    fn flit_hop(&mut self, now: Cycle, at: Coord, class: &'static str) {
        if self.record {
            self.hops.push((now.0, c3(at), class));
        }
    }
}

/// One shard's mutable working set: everything its router and injection
/// phases may read or write. Node-indexed borrows are sliced to the
/// shard's contiguous `[base, base + len)` range; methods take *global*
/// node ids and translate.
pub(super) struct Lane<'a> {
    /// Global node id of the shard's first node.
    pub base: usize,
    /// First device layer owned by the shard.
    pub base_layer: u8,
    pub layers_per_shard: u8,
    pub st: &'a mut ShardState,
    pub routers: &'a mut [crate::router::Router],
    pub injectors: &'a mut [Injector],
    pub in_dirty: &'a mut [bool],
    pub in_inj: &'a mut [bool],
    pub traversals: &'a mut [u64],
    pub layout: &'a ChipLayout,
    pub routes: &'a RouteMap,
    pub mode: VerticalMode,
    pub vcs: usize,
    pub router_latency: u64,
    pub bus_of_node: &'a [Option<u16>],
    /// Counters folded into [`NetworkStats`] when the lane retires.
    pub flit_hops: u64,
    pub flit_hops_by_class: [u64; 4],
    pub switch_contention: u64,
}

impl Lane<'_> {
    #[inline]
    pub(super) fn mark_dirty(&mut self, node: usize) {
        let local = node - self.base;
        if !self.in_dirty[local] {
            self.in_dirty[local] = true;
            self.st.dirty.push(node as u32);
        }
    }

    #[inline]
    pub(super) fn mark_inj(&mut self, node: usize) {
        let local = node - self.base;
        if !self.in_inj[local] {
            self.in_inj[local] = true;
            self.st.inj_active.push(node as u32);
        }
    }

    /// The earliest cycle `>= after` at which this shard's router or
    /// injection phase could change state, or `u64::MAX` when the shard
    /// is quiescent. The shard-local analogue of
    /// [`Network::next_event_at`](super::Network::next_event_at): cycles
    /// strictly before the result are provably dead *for this shard*.
    pub(super) fn next_local_event(&self, after: u64) -> u64 {
        let mut earliest = u64::MAX;
        if !self.st.inj_active.is_empty() {
            earliest = after;
        }
        for &n in &self.st.dirty {
            let r = &self.routers[n as usize - self.base];
            if r.occupancy == 0 {
                continue;
            }
            for port in r.inputs.iter().flatten() {
                for vc in 0..self.vcs {
                    if let Some(f) = port.vc(vc).front(&self.st.arena) {
                        earliest = earliest.min((f.arrived.0 + self.router_latency).max(after));
                    }
                }
            }
        }
        earliest
    }

    /// Runs this shard's router and injection phases for every cycle in
    /// `[from, to]`, skipping spans where the shard is provably dead.
    /// Bit-identical to ticking the shard cycle by cycle: a skipped
    /// cycle has no movable flit and nothing to inject, so its phases
    /// would not have mutated anything.
    pub(super) fn run_window(&mut self, from: u64, to: u64, sink: &mut impl DeliverySink) {
        let mut t = from;
        while t <= to {
            let event = self.next_local_event(t);
            if event > to {
                return;
            }
            t = event;
            let now = Cycle(t);
            self.router_phase(now, sink);
            self.injection_phase(now);
            t += 1;
        }
    }
}

impl Network {
    /// Splits `self` into shard `s`'s [`Lane`] plus the [`LiveSink`]
    /// holding the network-global delivery state — the sequential tick's
    /// per-shard working set, built on the stack with no allocation.
    pub(super) fn live_parts(&mut self, s: usize) -> (Lane<'_>, LiveSink<'_>) {
        let nodes = self.nodes_per_shard;
        let base = s * nodes;
        let Network {
            shards,
            routers,
            injectors,
            in_dirty,
            in_inj,
            traversals,
            outbox,
            in_delivered,
            delivered_nodes,
            flits_in_flight,
            stats,
            obs,
            layout,
            routes,
            mode,
            vcs,
            router_latency,
            bus_of_node,
            layers_per_shard,
            ..
        } = self;
        let lane = Lane {
            base,
            base_layer: s as u8 * *layers_per_shard,
            layers_per_shard: *layers_per_shard,
            st: &mut shards[s],
            routers: &mut routers[base..base + nodes],
            injectors: &mut injectors[base..base + nodes],
            in_dirty: &mut in_dirty[base..base + nodes],
            in_inj: &mut in_inj[base..base + nodes],
            traversals: &mut traversals[base..base + nodes],
            layout,
            routes,
            mode: *mode,
            vcs: *vcs,
            router_latency: *router_latency,
            bus_of_node,
            flit_hops: 0,
            flit_hops_by_class: [0; 4],
            switch_contention: 0,
        };
        let sink = LiveSink {
            obs,
            outbox,
            in_delivered,
            delivered_nodes,
            flits_in_flight,
            stats,
        };
        (lane, sink)
    }

    /// Folds a retired lane's counters into the global statistics.
    pub(super) fn fold_lane(&mut self, flit_hops: u64, by_class: [u64; 4], contention: u64) {
        self.stats.flit_hops += flit_hops;
        for (total, add) in self.stats.flit_hops_by_class.iter_mut().zip(by_class) {
            *total += add;
        }
        self.stats.switch_contention += contention;
    }
}
