//! Geometry on the stacked 3D mesh.
//!
//! The chip is a stack of `layers` identical 2D meshes of network nodes.
//! [`Coord`] names one node; [`Dir`] names the ports of a router. Within a
//! layer, hops follow the Manhattan metric; vertical movement is a single
//! hop over a dTDMA pillar regardless of how many layers are crossed, which
//! is why [`Coord::hop_distance_via_pillar`] treats the vertical component
//! as at most one hop.

use core::fmt;

/// Position of a network node in the 3D stack: intra-layer `(x, y)` plus the
/// device layer `layer` (layer 0 is the bottom of the stack).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column within the layer's mesh.
    pub x: u8,
    /// Row within the layer's mesh.
    pub y: u8,
    /// Device layer in the stack.
    pub layer: u8,
}

impl Coord {
    /// Creates a coordinate.
    ///
    /// ```
    /// use nim_types::geom::Coord;
    /// let c = Coord::new(3, 4, 1);
    /// assert_eq!((c.x, c.y, c.layer), (3, 4, 1));
    /// ```
    #[inline]
    pub const fn new(x: u8, y: u8, layer: u8) -> Self {
        Self { x, y, layer }
    }

    /// The same `(x, y)` position on a different layer.
    #[inline]
    #[must_use]
    pub const fn on_layer(self, layer: u8) -> Self {
        Self { layer, ..self }
    }

    /// Manhattan distance within a layer, ignoring the layer component.
    ///
    /// ```
    /// use nim_types::geom::Coord;
    /// assert_eq!(Coord::new(0, 0, 0).manhattan_2d(Coord::new(3, 4, 1)), 7);
    /// ```
    #[inline]
    pub fn manhattan_2d(self, other: Self) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Whether both coordinates are on the same device layer.
    #[inline]
    pub fn same_layer(self, other: Self) -> bool {
        self.layer == other.layer
    }

    /// Number of router hops from `self` to `other` when vertical traversal
    /// happens through a pillar located at `pillar` (its `(x, y)` applies on
    /// every layer): walk to the pillar, ride it (one hop regardless of the
    /// number of layers crossed), walk to the destination.
    ///
    /// If `other` is on the same layer the pillar is not used.
    pub fn hop_distance_via_pillar(self, other: Self, pillar: Self) -> u32 {
        if self.same_layer(other) {
            self.manhattan_2d(other)
        } else {
            self.manhattan_2d(pillar) + 1 + pillar.manhattan_2d(other)
        }
    }

    /// Number of hops in a full 3D mesh (the 7-port router design the paper
    /// rejected), where every layer crossing is one hop.
    #[inline]
    pub fn manhattan_3d(self, other: Self) -> u32 {
        self.manhattan_2d(other) + self.layer.abs_diff(other.layer) as u32
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},L{})", self.x, self.y, self.layer)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<(u8, u8, u8)> for Coord {
    fn from((x, y, layer): (u8, u8, u8)) -> Self {
        Self { x, y, layer }
    }
}

/// Ports of a network-in-memory router.
///
/// A plain mesh router has the four compass ports plus `Local` (the attached
/// processing element — cache bank and/or CPU). Pillar routers additionally
/// have the `Vertical` port connecting to the dTDMA bus; the bus is a single
/// entity for communicating both up and down, so there is one vertical port,
/// not two (paper §3). The `Up`/`Down` ports exist only on the 7-port
/// full-3D-mesh router that the paper's design search rejected (§3.1); they
/// are modelled here so the rejection can be reproduced as an ablation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    /// Towards larger `y`.
    North,
    /// Towards smaller `y`.
    South,
    /// Towards larger `x`.
    East,
    /// Towards smaller `x`.
    West,
    /// The local processing element.
    Local,
    /// The dTDMA pillar (present only on pillar routers).
    Vertical,
    /// Towards larger `layer` (7-port 3D-mesh ablation router only).
    Up,
    /// Towards smaller `layer` (7-port 3D-mesh ablation router only).
    Down,
}

impl Dir {
    /// All possible router ports, in canonical order.
    pub const ALL: [Dir; 8] = [
        Dir::North,
        Dir::South,
        Dir::East,
        Dir::West,
        Dir::Local,
        Dir::Vertical,
        Dir::Up,
        Dir::Down,
    ];

    /// The four mesh (compass) directions.
    pub const MESH: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// The direction a flit arriving over this port came *from*, i.e. the
    /// port of the upstream router that sent it.
    ///
    /// `Local` and `Vertical` are their own opposites: the local PE and the
    /// shared vertical bus both talk back over the same interface.
    #[inline]
    #[must_use]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::Local => Dir::Local,
            Dir::Vertical => Dir::Vertical,
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }

    /// Canonical dense index of the port (matches [`Dir::ALL`]).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
            Dir::Local => 4,
            Dir::Vertical => 5,
            Dir::Up => 6,
            Dir::Down => 7,
        }
    }

    /// Number of distinct ports (the size of [`Dir::ALL`]).
    pub const COUNT: usize = 8;

    /// Applies one hop in this direction to `(x, y)`; `Local` and
    /// `Vertical` leave the position unchanged.
    ///
    /// Returns `None` if the hop would leave the `width`×`height` mesh.
    pub fn step(self, x: u8, y: u8, width: u8, height: u8) -> Option<(u8, u8)> {
        match self {
            Dir::North => (y + 1 < height).then(|| (x, y + 1)),
            Dir::South => y.checked_sub(1).map(|ny| (x, ny)),
            Dir::East => (x + 1 < width).then(|| (x + 1, y)),
            Dir::West => x.checked_sub(1).map(|nx| (nx, y)),
            Dir::Local | Dir::Vertical | Dir::Up | Dir::Down => Some((x, y)),
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::South => "S",
            Dir::East => "E",
            Dir::West => "W",
            Dir::Local => "local",
            Dir::Vertical => "vertical",
            Dir::Up => "up",
            Dir::Down => "down",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_2d_is_symmetric_and_ignores_layer() {
        let a = Coord::new(1, 2, 0);
        let b = Coord::new(4, 0, 3);
        assert_eq!(a.manhattan_2d(b), 5);
        assert_eq!(b.manhattan_2d(a), 5);
    }

    #[test]
    fn manhattan_3d_counts_layers() {
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(2, 2, 3);
        assert_eq!(a.manhattan_3d(b), 7);
    }

    #[test]
    fn pillar_distance_same_layer_skips_pillar() {
        let a = Coord::new(0, 0, 1);
        let b = Coord::new(5, 5, 1);
        let pillar = Coord::new(2, 2, 0);
        assert_eq!(a.hop_distance_via_pillar(b, pillar), 10);
    }

    #[test]
    fn pillar_distance_cross_layer_is_single_vertical_hop() {
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(0, 0, 3); // three layers up, same x/y
        let pillar = Coord::new(1, 0, 0);
        // 1 hop to pillar + 1 bus hop + 1 hop back, regardless of 3 layers.
        assert_eq!(a.hop_distance_via_pillar(b, pillar), 3);
    }

    #[test]
    fn on_layer_moves_only_the_layer() {
        let c = Coord::new(3, 4, 0).on_layer(2);
        assert_eq!(c, Coord::new(3, 4, 2));
    }

    #[test]
    fn opposite_is_an_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn step_respects_mesh_bounds() {
        assert_eq!(Dir::West.step(0, 0, 4, 4), None);
        assert_eq!(Dir::South.step(0, 0, 4, 4), None);
        assert_eq!(Dir::East.step(3, 0, 4, 4), None);
        assert_eq!(Dir::North.step(0, 3, 4, 4), None);
        assert_eq!(Dir::East.step(1, 1, 4, 4), Some((2, 1)));
        assert_eq!(Dir::North.step(1, 1, 4, 4), Some((1, 2)));
        assert_eq!(Dir::Local.step(1, 1, 4, 4), Some((1, 1)));
    }

    #[test]
    fn dir_indices_match_all_order() {
        for (i, d) in Dir::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn coord_display_is_compact() {
        assert_eq!(format!("{}", Coord::new(1, 2, 3)), "(1,2,L3)");
    }
}
