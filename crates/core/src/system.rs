//! System assembly and the integrated cycle-accurate simulation loop.
//!
//! A [`System`] wires every substrate together — cores and their L1s, the
//! directory, the NUCA L2, and the 3D network — and advances them in
//! lock-step, one clock cycle at a time. L2 transactions are distributed
//! state machines: tag probes, forwarded requests, data returns, store
//! acknowledgements, migrations, and invalidations are all real packets
//! contending on the network, while tag/bank/memory latencies are timed
//! events. The simulation fast-forwards through quiet stretches (all
//! cores computing, network empty) without losing cycle accuracy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nim_cache::{migration_target, NucaL2, SearchPlan};
use nim_coherence::{DirAccess, Directory, WritePolicy};
use nim_cpu::{CoreAction, InOrderCore, MemRequest};
use nim_noc::{Delivered, Network, SendRequest, TrafficClass, VerticalMode};
use nim_obs::{Category, EventData, Obs};
use nim_topology::{ChipLayout, CpuSeat};
use nim_types::{
    AccessKind, Address, ClusterId, Coord, CpuId, Cycle, FxHashMap, LineAddr, PillarId,
    SystemConfig,
};
use nim_workload::{cpu_regions, shared_region, BenchmarkProfile, TraceGenerator, TraceSource};

use crate::error::{BuildError, RunError};
use crate::report::{Counters, RunReport};
use crate::scheme::Scheme;
use crate::token::{TimedEvent, Token, TxnId};

/// Cycles without a completed transaction before declaring a stall.
const WATCHDOG_CYCLES: u64 = 2_000_000;

/// Cycles between successive probe initiations at one (pipelined) tag
/// array — concurrent searches crowding a cluster's tag array queue up.
const TAG_INITIATION: u64 = 2;

/// Reused buffers for the per-epoch observability snapshot: the column
/// names are formatted once per run and the value/occupancy vectors are
/// recycled, so steady-state sampling allocates nothing per epoch.
#[derive(Clone, Debug, Default)]
struct SampleBuf {
    /// Column names, laid out as: one per pillar, one per cluster, then
    /// the fixed counter names. Empty until the first sample.
    names: Vec<String>,
    /// Values aligned with `names`, rewritten every epoch.
    values: Vec<f64>,
    /// Scratch for [`Network::bus_occupancies_into`].
    occ: Vec<usize>,
}

/// The fixed (non-indexed) columns of the epoch sample, appended after
/// the per-pillar and per-cluster occupancy columns.
const SAMPLE_COUNTERS: [&str; 5] = [
    "l2/hits",
    "l2/misses",
    "migrations",
    "net/packets_delivered",
    "net/flit_hops",
];

/// One in-flight L2 transaction.
#[derive(Clone, Copy, Debug)]
struct Txn {
    cpu: CpuId,
    kind: AccessKind,
    addr: Address,
    line: LineAddr,
    issued: Cycle,
    /// Unanswered probes in the current search step.
    outstanding: u32,
    /// Current search step (1 or 2).
    step: u8,
    /// A probe already hit and the service path is running.
    served: bool,
    /// The transaction went (or is going) to memory.
    was_miss: bool,
    /// Search step that found the line (0 until served).
    serve_step: u8,
    /// Search restarts after racing a migration.
    retries: u8,
    /// Cluster that served the hit (`u16::MAX` until known) — feeds the
    /// per-cluster hit matrix in the metrics registry.
    serve_cluster: u16,
}

/// Configures and creates a [`System`].
///
/// ```
/// use nim_core::{Scheme, SystemBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemBuilder::new(Scheme::CmpSnuca3d)
///     .seed(7)
///     .sampled_transactions(500)
///     .build()?;
/// assert_eq!(system.scheme(), Scheme::CmpSnuca3d);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    scheme: Scheme,
    cfg: SystemConfig,
    seed: u64,
    warmup: u64,
    sample: u64,
    prewarm: bool,
    vicinity_stop: bool,
    replication: bool,
    edge_memory: bool,
    skip: bool,
    obs: Obs,
}

impl SystemBuilder {
    /// Starts from the paper's Table 4 configuration.
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            cfg: SystemConfig::default(),
            seed: 42,
            warmup: 1_000,
            sample: 10_000,
            prewarm: true,
            vicinity_stop: true,
            replication: false,
            edge_memory: false,
            skip: std::env::var_os("NIM_NO_SKIP").is_none(),
            obs: Obs::disabled(),
        }
    }

    /// Replaces the whole system configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Number of device layers (3D schemes only; 2D schemes always
    /// flatten to one layer).
    pub fn layers(mut self, layers: u8) -> Self {
        self.cfg.network.layers = layers;
        self
    }

    /// Number of vertical pillars.
    pub fn pillars(mut self, pillars: u16) -> Self {
        self.cfg.network.pillars = pillars;
        self
    }

    /// Scales the L2 capacity by a power-of-two factor (Fig. 16: wider
    /// clusters, same cluster count and associativity).
    pub fn l2_scale(mut self, factor: u32) -> Self {
        self.cfg.l2 = self.cfg.l2.scaled(factor);
        self
    }

    /// Workload seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Transactions to complete before measurement starts.
    pub fn warmup_transactions(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Transactions measured after warm-up.
    pub fn sampled_transactions(mut self, n: u64) -> Self {
        self.sample = n;
        self
    }

    /// Whether to pre-install the workload's working set in the L2 and
    /// the hot/code sets in the L1s before simulating (replaces the
    /// paper's 500 M-cycle cache warm-up phase; default on).
    pub fn prewarm(mut self, on: bool) -> Self {
        self.prewarm = on;
        self
    }

    /// Ablation knob: when disabled, lines migrate on *every* access by a
    /// non-local CPU, even when they already sit inside the accessor's
    /// search vicinity. The paper's policy (default on) skips those
    /// migrations — "the increased locality" is why 3D migrates less
    /// (§5.2, Fig. 14).
    pub fn vicinity_stop(mut self, on: bool) -> Self {
        self.vicinity_stop = on;
        self
    }

    /// Extension: replicate read-shared lines into the reader's local
    /// cluster (the NuRapid / victim-replication alternative the paper's
    /// §1–§2 discusses). Replicas serve subsequent local reads; any write
    /// invalidates them. Off by default — the paper's design relies on
    /// migration alone.
    pub fn replication(mut self, on: bool) -> Self {
        self.replication = on;
        self
    }

    /// Extension: route L2 misses over the network to edge memory
    /// controllers with per-channel bandwidth limits
    /// (`SystemConfig::{memory_controllers, memory_interval}`), instead
    /// of the paper's flat 260-cycle memory latency. Off by default so
    /// the headline experiments match the paper's memory model.
    pub fn edge_memory_controllers(mut self, on: bool) -> Self {
        self.edge_memory = on;
        self
    }

    /// Whether the main loop may batch-advance the clock through spans
    /// it can prove are dead (no network phase fires, no timed event is
    /// due, no core needs a tick). On by default; the `NIM_NO_SKIP`
    /// environment variable (any value) flips the default off, forcing
    /// the naive one-tick-per-cycle loop. Results are bit-identical
    /// either way — skipping only elides cycles in which nothing
    /// observable happens (`noc_skip_equivalence` asserts this).
    pub fn horizon_skipping(mut self, on: bool) -> Self {
        self.skip = on;
        self
    }

    /// Attaches an observability handle (see [`nim_obs::Obs`]): the
    /// network, NUCA L2, directory, and the system's own transaction
    /// machinery all emit trace events and metrics through it. The
    /// default is a disabled handle costing one branch per site.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the configuration, topology, or CPU
    /// placement is invalid.
    pub fn build(self) -> Result<System, BuildError> {
        let cfg = if self.scheme.is_3d() {
            self.cfg
        } else {
            self.cfg.flattened()
        };
        cfg.validate()?;
        let layout = ChipLayout::new(&cfg)?;
        let share_pillars =
            cfg.network.layers > 1 && u32::from(layout.num_pillars()) < cfg.num_cpus;
        let policy = self.scheme.placement(share_pillars);
        let seats = policy.place(&layout, cfg.num_cpus)?;
        let plans = seats
            .iter()
            .map(|s| SearchPlan::new(&layout, layout.cluster_of(s.coord)))
            .collect();
        let mut cluster_cpus = vec![0u64; layout.num_clusters() as usize];
        let mut cpu_at = FxHashMap::default();
        for seat in &seats {
            cluster_cpus[layout.cluster_of(seat.coord).index()] |= 1 << seat.cpu.index();
            cpu_at.insert(seat.coord, seat.cpu);
        }
        let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
        net.set_obs(self.obs.clone());
        let mut l2 = NucaL2::new(&cfg.l2);
        l2.set_obs(self.obs.clone());
        let mut dir = Directory::new(cfg.num_cpus, WritePolicy::WriteThrough);
        dir.set_obs(self.obs.clone());
        let cores = seats
            .iter()
            .map(|s| InOrderCore::new(s.cpu, &cfg.l1))
            .collect();
        Ok(System {
            scheme: self.scheme,
            cfg,
            seats,
            plans,
            cluster_cpus,
            cpu_at,
            net,
            l2,
            dir,
            cores,
            txns: FxHashMap::default(),
            next_txn: 0,
            events: BinaryHeap::new(),
            next_seq: 0,
            pending_fills: FxHashMap::default(),
            last_accessor: FxHashMap::default(),
            tag_busy: vec![0; layout.num_clusters() as usize],
            bank_busy: vec![0; layout.num_nodes()],
            bank_access_counts: vec![0; layout.num_nodes()],
            mc_coords: layout.memory_controller_coords(cfg.memory_controllers),
            mc_ready: vec![0; cfg.memory_controllers as usize],
            layout,
            counters: Counters::default(),
            sample_buf: SampleBuf::default(),
            seed: self.seed,
            warmup: self.warmup,
            sample: self.sample,
            prewarm: self.prewarm,
            vicinity_stop: self.vicinity_stop,
            replication: self.replication,
            edge_memory: self.edge_memory,
            skip: self.skip,
            obs: self.obs,
        })
    }
}

/// The assembled chip multiprocessor.
#[derive(Debug)]
pub struct System {
    scheme: Scheme,
    cfg: SystemConfig,
    layout: ChipLayout,
    seats: Vec<CpuSeat>,
    plans: Vec<SearchPlan>,
    /// Bitmask of CPUs seated in each cluster.
    cluster_cpus: Vec<u64>,
    cpu_at: FxHashMap<Coord, CpuId>,
    net: Network,
    l2: NucaL2,
    dir: Directory,
    cores: Vec<InOrderCore>,
    /// Live transactions. Keyed by the simulation's own dense ids, so the
    /// map (like every other per-transaction map here) runs on
    /// [`FxHashMap`] — SipHash dominated the lookup cost on this path.
    txns: FxHashMap<TxnId, Txn>,
    next_txn: TxnId,
    events: BinaryHeap<Reverse<(u64, u64, TimedEvent)>>,
    next_seq: u64,
    pending_fills: FxHashMap<LineAddr, Vec<TxnId>>,
    /// CPU that last accessed each line (drives the migration trigger).
    last_accessor: FxHashMap<LineAddr, CpuId>,
    /// Cycle until which each cluster's tag array is occupied (tag
    /// arrays accept one new probe every [`TAG_INITIATION`] cycles).
    tag_busy: Vec<u64>,
    /// Cycle until which each bank is occupied (one access at a time).
    bank_busy: Vec<u64>,
    /// Accesses performed by each bank (node-indexed), for
    /// activity-driven power and thermal analysis.
    bank_access_counts: Vec<u64>,
    /// Memory-controller positions (edges of layer 0).
    mc_coords: Vec<Coord>,
    /// Earliest cycle each controller can accept its next request
    /// (channel-bandwidth limit).
    mc_ready: Vec<u64>,
    counters: Counters,
    /// Reused epoch-sampling buffers (names formatted once per run).
    sample_buf: SampleBuf,
    seed: u64,
    warmup: u64,
    sample: u64,
    prewarm: bool,
    vicinity_stop: bool,
    replication: bool,
    edge_memory: bool,
    /// Dead-cycle elision enabled (see [`SystemBuilder::horizon_skipping`]).
    skip: bool,
    obs: Obs,
}

impl System {
    /// The scheme being simulated.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The effective configuration (2D schemes are flattened).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The chip geometry.
    pub fn layout(&self) -> &ChipLayout {
        &self.layout
    }

    /// Where the CPUs ended up.
    pub fn seats(&self) -> &[CpuSeat] {
        &self.seats
    }

    /// Accesses each bank performed so far, indexed like
    /// [`ChipLayout::node_index`] — the activity profile that drives
    /// per-bank power for thermal analysis (the paper's closing
    /// discussion points at exactly this coupling).
    pub fn bank_access_counts(&self) -> &[u64] {
        &self.bank_access_counts
    }

    /// The on-chip network, for utilisation and congestion analysis.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The observability handle attached at build time (disabled by
    /// default) — export its trace or metrics after a run.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Runs the benchmark until the sampling target is reached and
    /// returns the measurements.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if the system makes no forward
    /// progress (a protocol bug — should never happen).
    pub fn run(&mut self, profile: &BenchmarkProfile) -> Result<RunReport, RunError> {
        if self.prewarm && self.l2.occupancy() == 0 {
            self.prewarm_state(profile);
        }
        let mut gen = TraceGenerator::new(profile, self.cfg.num_cpus, self.seed);
        self.run_with_source(profile.name, &mut gen)
    }

    /// Runs the simulation from an arbitrary reference source — a
    /// [`TraceGenerator`], a recorded
    /// [`ReplayTrace`](nim_workload::ReplayTrace), or a test stub. The
    /// caller is responsible for any pre-warming when replaying (use
    /// [`SystemBuilder::prewarm`] + [`System::run`] for the synthetic
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if no transaction completes for an
    /// implausibly long time — including the case where the source runs
    /// dry before the sampling target is reached.
    pub fn run_with_source(
        &mut self,
        benchmark: &str,
        source: &mut dyn TraceSource,
    ) -> Result<RunReport, RunError> {
        let target = self.warmup + self.sample;
        let mut warmed = self.warmup == 0;
        let mut window_start: Option<(Counters, u64, u64)> = if warmed {
            Some((self.counters, self.net.now().0, self.total_instructions()))
        } else {
            None
        };
        let mut last_progress = self.net.now().0;
        let mut last_count = self.counters.l2_transactions;
        let mut delivered = Vec::new();
        while self.counters.l2_transactions < target {
            // A dried-up trace (every core halted) with nothing in flight
            // can never make progress; report it without spinning the
            // watchdog out.
            if self.net.is_idle()
                && self.events.is_empty()
                && self.txns.is_empty()
                && self.cores.iter().all(InOrderCore::is_halted)
            {
                return Err(RunError::Stalled {
                    cycle: self.net.now().0,
                    completed: self.counters.l2_transactions,
                });
            }
            if self.net.now().0 - last_progress > WATCHDOG_CYCLES {
                return Err(RunError::Stalled {
                    cycle: self.net.now().0,
                    completed: self.counters.l2_transactions,
                });
            }
            self.try_fast_forward();
            self.net.tick();
            let now = self.net.now();
            if self.obs.sample_due(now.0) {
                self.record_obs_sample(now.0);
            }
            // Timed events due this cycle.
            while let Some(&Reverse((due, _, _))) = self.events.peek() {
                if due > now.0 {
                    break;
                }
                let Reverse((_, _, ev)) = self.events.pop().expect("peeked");
                self.handle_event(ev, now);
            }
            // Network deliveries.
            if self.net.has_deliveries() {
                self.net.drain_delivered_into(&mut delivered);
                for d in delivered.drain(..) {
                    self.handle_delivered(d, now);
                }
            }
            // Cores. Halted cores are skipped outright: `tick` on a
            // halted core is a no-op (it returns before touching stats),
            // so eliding the call is bit-identical and keeps drained
            // cores from costing a call per cycle for the rest of a run.
            for i in 0..self.cores.len() {
                if self.cores[i].is_halted() {
                    continue;
                }
                let cpu = CpuId::from_index(i);
                let action = self.cores[i].tick(&mut || source.next_for(cpu));
                if let CoreAction::Request(req) = action {
                    self.handle_request(req, now);
                }
            }
            if self.counters.l2_transactions != last_count {
                last_count = self.counters.l2_transactions;
                last_progress = now.0;
            }
            if !warmed && self.counters.l2_transactions >= self.warmup {
                warmed = true;
                window_start = Some((self.counters, now.0, self.total_instructions()));
            }
        }
        let (start_counters, start_cycle, start_instr) =
            window_start.expect("sampling window started");
        let mut bus = Vec::new();
        self.net.bus_stats_into(&mut bus);
        self.publish_obs_metrics(&bus);
        Ok(RunReport {
            scheme: self.scheme,
            benchmark: benchmark.to_string(),
            cycles: self.net.now().0 - start_cycle,
            instructions: self.total_instructions() - start_instr,
            num_cpus: self.cfg.num_cpus,
            counters: self.counters.minus(&start_counters),
            network: self.net.stats().clone(),
            bus_transfers: bus.iter().map(|b| b.transfers).sum(),
            bus_contention_cycles: bus.iter().map(|b| b.contention_cycles).sum(),
        })
    }

    fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    /// Snapshots the live state the epoch sampler tracks: per-pillar bus
    /// occupancy, per-cluster L2 occupancy, and the headline cumulative
    /// counters. Called only when [`Obs::sample_due`] fires. The column
    /// names are formatted once on the first epoch; afterwards every
    /// snapshot reuses [`SampleBuf`]'s vectors and allocates nothing.
    fn record_obs_sample(&mut self, now: u64) {
        self.net.bus_occupancies_into(&mut self.sample_buf.occ);
        let SampleBuf { names, values, occ } = &mut self.sample_buf;
        if names.is_empty() {
            for i in 0..occ.len() {
                names.push(format!("pillar/{i}/occupancy"));
            }
            for cl in 0..self.layout.num_clusters() {
                names.push(format!("cluster/{cl}/occupancy"));
            }
            names.extend(SAMPLE_COUNTERS.iter().map(|n| (*n).to_string()));
        }
        values.clear();
        values.extend(occ.iter().map(|&o| o as f64));
        for cl in 0..self.layout.num_clusters() {
            values.push(self.l2.cluster_occupancy(ClusterId(cl)) as f64);
        }
        let net = self.net.stats();
        values.push(self.counters.l2_hits as f64);
        values.push(self.counters.l2_misses as f64);
        values.push(self.counters.migrations as f64);
        values.push(net.packets_delivered as f64);
        values.push(net.flit_hops as f64);
        self.obs
            .record_sample_cols(now, &self.sample_buf.names, &self.sample_buf.values);
    }

    /// Publishes end-of-run totals into the metrics registry: the
    /// per-router traversal map (the link-utilization heatmap source),
    /// per-pillar bus statistics (passed in by the caller, which already
    /// collected them for the [`RunReport`]), L2 and transaction
    /// counters, and the packet latency distribution. Formatted metric
    /// names share one reused `String` buffer.
    fn publish_obs_metrics(&self, bus: &[nim_noc::BusStats]) {
        if !self.obs.is_enabled() {
            return;
        }
        use std::fmt::Write as _;
        let mut name = String::new();
        for (i, &n) in self.net.traversals().iter().enumerate() {
            let c = self.layout.coord_of_index(i);
            name.clear();
            let _ = write!(name, "noc/traversals/{}/{}/{}", c.x, c.y, c.layer);
            self.obs.counter_set(&name, n);
        }
        for (i, b) in bus.iter().enumerate() {
            name.clear();
            let _ = write!(name, "pillar/{i}/transfers");
            self.obs.counter_set(&name, b.transfers);
            name.clear();
            let _ = write!(name, "pillar/{i}/busy_cycles");
            self.obs.counter_set(&name, b.busy_cycles);
            name.clear();
            let _ = write!(name, "pillar/{i}/contention_cycles");
            self.obs.counter_set(&name, b.contention_cycles);
            name.clear();
            let _ = write!(name, "pillar/{i}/peak_queued");
            self.obs.counter_set(&name, b.peak_queued);
        }
        let net = self.net.stats();
        self.obs.counter_set("net/packets_sent", net.packets_sent);
        self.obs
            .counter_set("net/packets_delivered", net.packets_delivered);
        self.obs.counter_set("net/flit_hops", net.flit_hops);
        self.obs
            .counter_set("net/switch_contention", net.switch_contention);
        self.obs.counter_set("net/bus_transfers", net.bus_transfers);
        self.obs
            .histogram_set("net/latency_cycles", net.latency_histogram.clone());
        let l2 = self.l2.stats();
        self.obs.counter_set("l2/insertions", l2.insertions);
        self.obs.counter_set("l2/evictions", l2.evictions);
        self.obs.counter_set("l2/migrations", l2.migrations);
        self.obs
            .counter_set("l2/migrations_aborted", l2.migrations_aborted);
        self.obs
            .counter_set("l2/replicas_created", l2.replicas_created);
        self.obs
            .counter_set("l2/replicas_dropped", l2.replicas_dropped);
        let c = &self.counters;
        self.obs
            .counter_set("sys/l2_transactions", c.l2_transactions);
        self.obs.counter_set("sys/l2_hits", c.l2_hits);
        self.obs.counter_set("sys/l2_misses", c.l2_misses);
        self.obs.counter_set("sys/tag_accesses", c.tag_accesses);
        self.obs.counter_set("sys/bank_accesses", c.bank_accesses);
        self.obs.counter_set("sys/invalidations", c.invalidations);
        self.obs.counter_set("sys/search_retries", c.search_retries);
        self.obs.counter_set("sys/migrations", c.migrations);
        self.obs
            .gauge_set("sim/cycles_per_sec", self.obs.cycles_per_sec());
    }

    /// Installs the workload's working set before simulation, standing in
    /// for the paper's 500 M-cycle warm-up run: the shared region goes to
    /// the L2 at its home clusters; each CPU's private regions go where
    /// the migration policy would have pulled them by the end of the
    /// warm-up (for migrating schemes) or to their home clusters (for the
    /// static scheme); hot and code sets additionally fill the owning
    /// CPU's L1s, with the directory kept consistent. Pure state setup —
    /// no cycles pass, no packets fly.
    fn prewarm_state(&mut self, profile: &BenchmarkProfile) {
        let line_bytes = u64::from(self.cfg.l2.line_bytes);
        let install = |sys: &mut System, addr: Address, owner: Option<CpuId>| -> LineAddr {
            let line = addr.line(line_bytes);
            if sys.l2.locate(line).is_none() {
                let cluster = match owner {
                    Some(cpu) if sys.scheme.migrates() => {
                        sys.steady_cluster(cpu, sys.l2.home_cluster(line))
                    }
                    _ => sys.l2.home_cluster(line),
                };
                let placed = sys.l2.insert_at(line, cluster);
                if let Some(victim) = placed.evicted {
                    for sharer in sys.dir.invalidate_all(victim) {
                        sys.cores[sharer.index()].invalidate(victim);
                    }
                }
            }
            line
        };
        // Bulk data first so later hot/code installs win any conflicts.
        for addr in shared_region(profile).line_addrs().collect::<Vec<_>>() {
            install(self, addr, None);
        }
        for i in 0..self.cores.len() {
            let cpu = CpuId::from_index(i);
            let regions = cpu_regions(profile, cpu);
            for addr in regions.stream.line_addrs().collect::<Vec<_>>() {
                install(self, addr, Some(cpu));
            }
        }
        for i in 0..self.cores.len() {
            let cpu = CpuId::from_index(i);
            let regions = cpu_regions(profile, cpu);
            for addr in regions.hot.line_addrs().collect::<Vec<_>>() {
                let line = install(self, addr, Some(cpu));
                if let Some(evicted) = self.cores[i].prefill(addr, AccessKind::Read) {
                    self.dir.evict(cpu, evicted);
                }
                self.dir.access(cpu, line, DirAccess::Read);
            }
            for addr in regions.code.line_addrs().collect::<Vec<_>>() {
                install(self, addr, Some(cpu));
                self.cores[i].prefill(addr, AccessKind::IFetch);
            }
        }
    }

    /// Where the migration policy eventually parks a line that starts in
    /// `from` and is accessed only by `cpu` (the fixed point of repeated
    /// single-step migrations).
    fn steady_cluster(&self, cpu: CpuId, from: ClusterId) -> ClusterId {
        let seat = self.seats[cpu.index()];
        let acc_cluster = self.layout.cluster_of(seat.coord);
        let own_bit = 1u64 << cpu.index();
        let cluster_cpus = &self.cluster_cpus;
        let occupied = move |cl: ClusterId| cluster_cpus[cl.index()] & !own_bit != 0;
        let mut cur = from;
        for _ in 0..64 {
            match migration_target(&self.layout, cur, acc_cluster, seat.pillar, &occupied) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    // ----- plumbing -------------------------------------------------------

    fn seat(&self, cpu: CpuId) -> &CpuSeat {
        &self.seats[cpu.index()]
    }

    fn via(&self, cpu: CpuId) -> Option<PillarId> {
        self.seats[cpu.index()].pillar
    }

    fn center(&self, cl: ClusterId) -> Coord {
        self.layout.cluster_center(cl)
    }

    fn bank_coord(&self, cluster: ClusterId, line: LineAddr) -> Coord {
        let map = self.l2.map();
        let bank = map.global_bank(cluster, map.bank_in_cluster(line));
        self.layout.coord_of_bank(bank)
    }

    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent) {
        self.next_seq += 1;
        self.events
            .push(Reverse((now.0 + delay, self.next_seq, ev)));
    }

    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        self.net.send(SendRequest {
            src,
            dst,
            via,
            class,
            flits,
            token: token.encode(),
        });
    }

    fn data_flits(&self) -> u32 {
        self.cfg.network.data_packet_flits
    }

    /// Total latency until a tag probe of `cluster` completes, occupying
    /// the array's issue slot (one new probe every [`TAG_INITIATION`]
    /// cycles — the crowding cost when CPUs share a vicinity).
    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> u64 {
        let slot = &mut self.tag_busy[cluster.index()];
        let start = (*slot).max(now.0);
        *slot = start + TAG_INITIATION;
        (start - now.0) + u64::from(self.cfg.l2.tag_latency)
    }

    /// Total latency until an access of the bank at `at` completes; the
    /// SRAM bank performs one access at a time. `write` distinguishes
    /// stores/fills/migration absorbs from reads in the trace.
    fn bank_delay(&mut self, at: Coord, now: Cycle, write: bool) -> u64 {
        let idx = self.layout.node_index(at);
        self.bank_access_counts[idx] += 1;
        self.obs.emit(Category::Bank, || EventData::BankAccess {
            node: idx as u32,
            write,
        });
        let slot = &mut self.bank_busy[idx];
        let start = (*slot).max(now.0);
        let latency = u64::from(self.cfg.l2.bank_latency);
        *slot = start + latency;
        (start - now.0) + latency
    }

    /// Batch-advances the clock through a span it can prove is dead:
    /// every core is mid-gap, halted, or waiting on memory
    /// ([`InOrderCore::next_wakeup`]), no timed event comes due, and the
    /// network's own horizon ([`Network::next_event_at`]) says no phase
    /// would fire — even with traffic still buffered in flight. The skip
    /// lands one cycle *before* the earliest of the three horizons, so
    /// the very next `tick` replays exactly the cycle the naive loop
    /// would have reached. Core wakeups are checked first because they
    /// are the cheapest bound and, under steady load, the one that is
    /// almost always zero.
    fn try_fast_forward(&mut self) {
        if !self.skip || self.net.has_deliveries() {
            return;
        }
        let core_bound = self
            .cores
            .iter()
            .map(|c| match c.next_wakeup() {
                u64::MAX => u64::MAX,
                wake => wake - 1,
            })
            .min()
            .unwrap_or(0);
        if core_bound == 0 {
            return;
        }
        let now = self.net.now().0;
        let event_bound = match self.events.peek() {
            Some(&Reverse((due, _, _))) => due.saturating_sub(now + 1),
            None => u64::MAX,
        };
        if event_bound == 0 {
            return;
        }
        let net_bound = match self.net.next_event_at() {
            Some(t) => t.0 - (now + 1),
            None => u64::MAX,
        };
        let delta = core_bound.min(event_bound).min(net_bound);
        if delta == 0 || delta == u64::MAX {
            // Either something needs attention next cycle, or everything
            // is blocked with no pending horizon (the watchdog will catch
            // a genuine deadlock).
            return;
        }
        for core in &mut self.cores {
            core.skip(delta);
        }
        self.net.advance_to(Cycle(now + delta));
        // The naive loop records a sample row at every armed boundary it
        // ticks across; replay those rows so the sampler output is
        // bit-identical. No sampled column changes inside a dead span,
        // so each catch-up row carries the same values the per-cycle
        // loop would have snapshotted.
        while let Some(boundary) = self.obs.next_sample_at() {
            if boundary > now + delta {
                break;
            }
            self.record_obs_sample(boundary);
        }
    }

    // ----- transaction lifecycle ------------------------------------------

    fn handle_request(&mut self, req: MemRequest, now: Cycle) {
        let line = req.addr.line(u64::from(self.cfg.l2.line_bytes));
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            id,
            Txn {
                cpu: req.cpu,
                kind: req.kind,
                addr: req.addr,
                line,
                issued: now,
                outstanding: 0,
                step: 1,
                served: false,
                was_miss: false,
                serve_step: 0,
                retries: 0,
                serve_cluster: u16::MAX,
            },
        );
        if self.scheme.perfect_search() {
            self.perfect_lookup(id, now);
        } else {
            self.issue_search_step(id, 1, now);
        }
    }

    /// CMP-DNUCA's perfect-search oracle: the requester knows the line's
    /// location without probing.
    fn perfect_lookup(&mut self, id: TxnId, now: Cycle) {
        let t = self.txns[&id];
        self.counters.tag_accesses += 1;
        match self.l2.locate(t.line) {
            Some(cl) => {
                let seat = *self.seat(t.cpu);
                let bank = self.bank_coord(cl, t.line);
                {
                    let txn = self.txns.get_mut(&id).expect("live txn");
                    txn.served = true;
                    txn.serve_cluster = cl.0;
                }
                match t.kind {
                    AccessKind::Read | AccessKind::IFetch => {
                        self.send(
                            seat.coord,
                            bank,
                            TrafficClass::Control,
                            1,
                            Token::BankFetch { txn: id },
                            seat.pillar,
                        );
                    }
                    AccessKind::Write => {
                        let flits = self.data_flits();
                        self.send(
                            seat.coord,
                            bank,
                            TrafficClass::Data,
                            flits,
                            Token::WriteData { txn: id },
                            seat.pillar,
                        );
                    }
                }
            }
            None => self.go_to_memory(id, now),
        }
    }

    /// Issues one step of the two-step search (paper §4.2.1).
    ///
    /// Same-layer clusters are probed with individual request packets.
    /// Remote layers receive a single tag *broadcast* riding the CPU's
    /// pillar — one packet per layer probes that layer's whole disc and
    /// returns at most one (aggregated) miss reply, exactly the
    /// bandwidth advantage the paper attributes to the pillar broadcast.
    fn issue_search_step(&mut self, id: TxnId, step: u8, now: Cycle) {
        let t = self.txns[&id];
        let plan = &self.plans[t.cpu.index()];
        let clusters: Vec<ClusterId> = if step == 1 {
            plan.step1.clone()
        } else {
            plan.step2.clone()
        };
        let local = plan.local;
        let seat = *self.seat(t.cpu);
        let my_layer = seat.coord.layer;
        // Step 1 reaches remote layers with one broadcast per layer (the
        // tag rides the pillar once and fans out to the cylinder's tag
        // arrays); step 2 is a plain multicast — every remaining cluster,
        // remote ones included, gets its own request packet (paper
        // §4.2.1), so step-2 searches load the pillars individually.
        let broadcast_remote = step == 1;
        let direct: Vec<ClusterId> = if broadcast_remote {
            clusters
                .iter()
                .copied()
                .filter(|cl| self.layout.cluster_layer(*cl) == my_layer)
                .collect()
        } else {
            clusters.clone()
        };
        let mut remote_layers: Vec<u8> = if broadcast_remote {
            clusters
                .iter()
                .map(|cl| self.layout.cluster_layer(*cl))
                .filter(|l| *l != my_layer)
                .collect()
        } else {
            Vec::new()
        };
        remote_layers.sort_unstable();
        remote_layers.dedup();
        let remote_broadcast_targets = clusters.len() - direct.len();
        self.obs.emit(Category::Search, || EventData::SearchStep {
            txn: u64::from(id),
            step,
            targets: clusters.len() as u32,
        });
        {
            let txn = self.txns.get_mut(&id).expect("live txn");
            txn.step = step;
            // Every probed tag array answers individually.
            txn.outstanding = (direct.len() + remote_broadcast_targets) as u32;
        }
        self.counters.tag_accesses += direct.len() as u64;
        for cl in direct {
            if cl == local {
                // The local tag array is directly connected (paper §4.1).
                let delay = self.tag_delay(cl, now);
                self.schedule(
                    now,
                    delay,
                    TimedEvent::ProbeResolved {
                        txn: id,
                        cluster: cl,
                    },
                );
            } else {
                self.send(
                    seat.coord,
                    self.center(cl),
                    TrafficClass::Control,
                    1,
                    Token::Probe {
                        txn: id,
                        cluster: cl,
                    },
                    seat.pillar,
                );
            }
        }
        for layer in remote_layers {
            let pillar = seat.pillar.expect("remote layers imply a pillar");
            self.send(
                seat.coord,
                self.layout.pillar_coord(pillar, layer),
                TrafficClass::Control,
                1,
                Token::VerticalProbe {
                    txn: id,
                    layer,
                    step,
                },
                seat.pillar,
            );
        }
    }

    /// A tag array finished its lookup for one probe.
    fn resolve_probe(&mut self, id: TxnId, cluster: ClusterId, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        self.obs.emit(Category::Search, || EventData::Probe {
            txn: u64::from(id),
            cluster: u32::from(cluster.0),
            step: t.step,
        });
        let visible = self.l2.locate(t.line);
        let hit = self.l2.has_copy_at(t.line, cluster);
        let seat = *self.seat(t.cpu);
        let local = self.plans[t.cpu.index()].local;
        let origin = if cluster == local {
            seat.coord
        } else {
            self.center(cluster)
        };
        if hit && !t.served {
            // Serve from the probed cluster when its bank really holds a
            // copy (primary or replica); a probe that matched only an
            // in-flight migration entry serves from the current location.
            let serving =
                if visible == Some(cluster) || self.l2.replicas_of(t.line).contains(&cluster) {
                    cluster
                } else {
                    visible.expect("a hit implies residency")
                };
            self.serve_hit(id, origin, serving, now);
        } else if !t.served {
            // Miss: tell the requester (local tag arrays answer directly).
            if origin == seat.coord {
                self.probe_missed(id, now);
            } else {
                self.send(
                    origin,
                    seat.coord,
                    TrafficClass::Control,
                    1,
                    Token::ProbeMiss { txn: id },
                    seat.pillar,
                );
            }
        }
        // Probes resolving after the transaction was served are dropped:
        // their outcome no longer matters.
    }

    /// A tag array found the line: forward the request toward the data
    /// (reads) or tell the writer where to ship its store (writes).
    fn serve_hit(&mut self, id: TxnId, origin: Coord, serving: ClusterId, now: Cycle) {
        let t = self.txns[&id];
        self.obs.emit(Category::Search, || EventData::ProbeHit {
            txn: u64::from(id),
            cluster: u32::from(serving.0),
        });
        {
            let txn = self.txns.get_mut(&id).expect("live txn");
            txn.served = true;
            txn.serve_step = txn.step;
            txn.serve_cluster = serving.0;
        }
        let seat = *self.seat(t.cpu);
        match t.kind {
            AccessKind::Read | AccessKind::IFetch => {
                // The tag array forwards the request to the bank; the
                // data is routed straight to the requester (§4.2.1).
                let bank = self.bank_coord(serving, t.line);
                self.send(
                    origin,
                    bank,
                    TrafficClass::Control,
                    1,
                    Token::BankFetch { txn: id },
                    seat.pillar,
                );
            }
            AccessKind::Write => {
                // The writer must learn the location to ship its data.
                if origin == seat.coord {
                    self.write_data_to(id, now);
                } else {
                    self.send(
                        origin,
                        seat.coord,
                        TrafficClass::Control,
                        1,
                        Token::FoundForWrite {
                            txn: id,
                            cluster: serving,
                        },
                        seat.pillar,
                    );
                }
            }
        }
    }

    /// A pillar tag broadcast arrived at one remote layer: fan the probe
    /// out to every target tag array on that layer, charging each the
    /// mesh distance from the pillar node.
    fn vertical_probe_arrived(&mut self, id: TxnId, at: Coord, step: u8, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            // The transaction completed already; nothing waits for this
            // broadcast (no pending entry was created yet).
            return;
        };
        let plan = &self.plans[t.cpu.index()];
        let set = if step == 1 { &plan.step1 } else { &plan.step2 };
        let layer = at.layer;
        let clusters: Vec<ClusterId> = set
            .iter()
            .copied()
            .filter(|cl| self.layout.cluster_layer(*cl) == layer)
            .collect();
        debug_assert!(!clusters.is_empty(), "broadcast to a layer with no targets");
        self.counters.tag_accesses += clusters.len() as u64;
        for cl in clusters {
            let fanout = u64::from(at.manhattan_2d(self.center(cl)));
            let delay = self.tag_delay(cl, now) + fanout;
            self.schedule(
                now,
                delay,
                TimedEvent::VerticalClusterResolved {
                    txn: id,
                    cluster: cl,
                    layer,
                },
            );
        }
    }

    /// One remote tag array resolved its share of a pillar broadcast:
    /// serve a hit, or answer with its own miss reply — every reply
    /// individually rides the pillar back, which is what loads the bus
    /// when few pillars serve many CPUs (Fig. 17).
    fn vertical_cluster_resolved(&mut self, id: TxnId, cluster: ClusterId, _layer: u8, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        if t.served {
            return;
        }
        let visible = self.l2.locate(t.line);
        if self.l2.has_copy_at(t.line, cluster) {
            let serving =
                if visible == Some(cluster) || self.l2.replicas_of(t.line).contains(&cluster) {
                    cluster
                } else {
                    visible.expect("a hit implies residency")
                };
            self.serve_hit(id, self.center(cluster), serving, now);
            return;
        }
        let seat = *self.seat(t.cpu);
        self.send(
            self.center(cluster),
            seat.coord,
            TrafficClass::Control,
            1,
            Token::ProbeMiss { txn: id },
            seat.pillar,
        );
    }

    /// A miss answer reached the requester.
    fn probe_missed(&mut self, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        debug_assert!(t.outstanding > 0);
        t.outstanding -= 1;
        if t.outstanding > 0 || t.served {
            return;
        }
        let t = *t;
        self.obs.emit(Category::Search, || EventData::ProbeMiss {
            txn: u64::from(id),
            step: t.step,
        });
        let step2_empty = self.plans[t.cpu.index()].step2.is_empty();
        if t.step == 1 && !step2_empty {
            self.issue_search_step(id, 2, now);
        } else if self.l2.locate(t.line).is_some() && t.retries < 3 {
            // The line was resident all along but migrated between our
            // probes (both the old and the new tag array answered "miss").
            // Lazy migration makes this a narrow window; retry the search
            // instead of falsely going to memory.
            self.counters.search_retries += 1;
            self.obs.emit(Category::Search, || EventData::SearchRetry {
                txn: u64::from(id),
                attempt: u32::from(t.retries) + 1,
            });
            self.txns.get_mut(&id).expect("live txn").retries += 1;
            self.issue_search_step(id, 1, now);
        } else {
            self.go_to_memory(id, now);
        }
    }

    /// The transaction missed everywhere: fetch the line from memory
    /// (merging concurrent misses on the same line, MSHR-style). The
    /// request travels over the network to the memory controller nearest
    /// the line's home bank; the controller's channel bandwidth limits
    /// how fast back-to-back misses drain.
    fn go_to_memory(&mut self, id: TxnId, now: Cycle) {
        let t = self.txns.get_mut(&id).expect("live txn");
        t.was_miss = true;
        let line = t.line;
        let cpu = t.cpu;
        match self.pending_fills.get_mut(&line) {
            Some(waiters) => waiters.push(id),
            None => {
                self.pending_fills.insert(line, vec![id]);
                self.obs
                    .emit(Category::Memory, || EventData::MemRequest { line: line.0 });
                if self.edge_memory {
                    let seat = *self.seat(cpu);
                    let mc = self.nearest_mc(self.bank_coord(self.l2.home_cluster(line), line));
                    self.send(
                        seat.coord,
                        self.mc_coords[mc],
                        TrafficClass::Control,
                        1,
                        Token::MemRequest { line },
                        seat.pillar,
                    );
                } else {
                    // The paper's flat memory model (Table 4).
                    let latency = u64::from(self.cfg.memory_latency);
                    self.schedule(now, latency, TimedEvent::MemoryFetched { line });
                }
            }
        }
    }

    /// Index of the memory controller nearest to `c` (2D distance; the
    /// controllers all sit on layer 0).
    fn nearest_mc(&self, c: Coord) -> usize {
        self.mc_coords
            .iter()
            .enumerate()
            .min_by_key(|(_, mc)| c.manhattan_2d(**mc))
            .map(|(i, _)| i)
            .expect("at least one memory controller")
    }

    /// A miss request reached a memory controller: queue behind the
    /// channel's bandwidth limit, then access DRAM.
    fn mem_request_arrived(&mut self, line: LineAddr, at: Coord, now: Cycle) {
        let mc = self
            .mc_coords
            .iter()
            .position(|c| *c == at)
            .expect("delivery at a memory controller") as u16;
        let start = self.mc_ready[mc as usize].max(now.0);
        self.mc_ready[mc as usize] = start + u64::from(self.cfg.memory_interval);
        let done = (start - now.0) + u64::from(self.cfg.memory_latency);
        self.schedule(now, done, TimedEvent::MemoryReady { line, mc });
    }

    /// DRAM answered: ship the line to its home bank.
    fn memory_ready(&mut self, line: LineAddr, mc: u16, _now: Cycle) {
        let home = self.l2.home_cluster(line);
        let dst = self.bank_coord(home, line);
        let flits = self.data_flits();
        self.send(
            self.mc_coords[mc as usize],
            dst,
            TrafficClass::Data,
            flits,
            Token::MemFill { line },
            None,
        );
    }

    /// The fill reached the home bank: absorb it, then serve the waiters.
    fn mem_fill_arrived(&mut self, line: LineAddr, at: Coord, now: Cycle) {
        let delay = self.bank_delay(at, now, true);
        self.schedule(now, delay, TimedEvent::MemoryFetched { line });
    }

    /// Off-chip memory delivered the line: place it and serve the waiters.
    fn memory_fetched(&mut self, line: LineAddr, now: Cycle) {
        self.obs
            .emit(Category::Memory, || EventData::MemFill { line: line.0 });
        let waiters = self.pending_fills.remove(&line).unwrap_or_default();
        if self.l2.locate(line).is_none() {
            let placed = self.l2.insert(line);
            if let Some(victim) = placed.evicted {
                let from = self.center(placed.cluster);
                self.handle_l2_eviction(victim, from);
            }
        }
        let serving = self.l2.locate(line).expect("just inserted");
        let bank = self.bank_coord(serving, line);
        for id in waiters {
            let Some(t) = self.txns.get(&id).copied() else {
                continue;
            };
            match t.kind {
                AccessKind::Read | AccessKind::IFetch => {
                    // The fill serves the read directly from the bank.
                    self.counters.bank_accesses += 1;
                    let delay = self.bank_delay(bank, now, false);
                    self.schedule(now, delay, TimedEvent::BankReadDone { txn: id, at: bank });
                }
                AccessKind::Write => {
                    let seat = *self.seat(t.cpu);
                    self.send(
                        self.center(serving),
                        seat.coord,
                        TrafficClass::Control,
                        1,
                        Token::FoundForWrite {
                            txn: id,
                            cluster: serving,
                        },
                        seat.pillar,
                    );
                }
            }
        }
    }

    /// The writing CPU ships its store data to the line's current bank.
    fn write_data_to(&mut self, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        match self.l2.locate(t.line) {
            Some(cl) => {
                let seat = *self.seat(t.cpu);
                let bank = self.bank_coord(cl, t.line);
                let flits = self.data_flits();
                self.send(
                    seat.coord,
                    bank,
                    TrafficClass::Data,
                    flits,
                    Token::WriteData { txn: id },
                    seat.pillar,
                );
            }
            // Evicted between the probe hit and now: fetch it back.
            None => self.go_to_memory(id, now),
        }
    }

    /// A forwarded read request reached a bank (or where the bank used to
    /// hold the line).
    fn bank_fetch_arrived(&mut self, id: TxnId, at: Coord, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        // A replica bank can serve the read directly.
        let here = self.layout.cluster_of(at);
        if self.l2.replicas_of(t.line).contains(&here) && self.bank_coord(here, t.line) == at {
            self.counters.bank_accesses += 1;
            let delay = self.bank_delay(at, now, false);
            self.schedule(now, delay, TimedEvent::BankReadDone { txn: id, at });
            return;
        }
        match self.l2.locate(t.line) {
            None => self.go_to_memory(id, now),
            Some(cl) => {
                let target = self.bank_coord(cl, t.line);
                if target == at {
                    self.counters.bank_accesses += 1;
                    // The baseline's oracle skips probe latency, so the
                    // tag check happens at the bank.
                    let tag = if self.scheme.perfect_search() {
                        self.tag_delay(cl, now)
                    } else {
                        0
                    };
                    let bank = self.bank_delay(at, now, false);
                    self.schedule(now, tag + bank, TimedEvent::BankReadDone { txn: id, at });
                } else {
                    // The line migrated while the request was in flight;
                    // chase it.
                    let via = self.via(t.cpu);
                    self.send(
                        at,
                        target,
                        TrafficClass::Control,
                        1,
                        Token::BankFetch { txn: id },
                        via,
                    );
                }
            }
        }
    }

    /// The bank finished reading: route the line to the requester.
    fn bank_read_done(&mut self, id: TxnId, at: Coord, now: Cycle) {
        let _ = now;
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        self.l2.touch_at(t.line, self.layout.cluster_of(at));
        let seat = *self.seat(t.cpu);
        let flits = self.data_flits();
        self.send(
            at,
            seat.coord,
            TrafficClass::Data,
            flits,
            Token::DataToCpu { txn: id },
            seat.pillar,
        );
    }

    /// Store data reached the bank.
    fn write_data_arrived(&mut self, id: TxnId, at: Coord, now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        self.counters.bank_accesses += 1;
        let tag = if self.scheme.perfect_search() {
            let cl = self
                .l2
                .locate(t.line)
                .unwrap_or(self.l2.home_cluster(t.line));
            self.tag_delay(cl, now)
        } else {
            0
        };
        let bank = self.bank_delay(at, now, true);
        self.schedule(now, tag + bank, TimedEvent::BankWritten { txn: id, at });
    }

    /// The bank committed the store: acknowledge the CPU.
    fn bank_written(&mut self, id: TxnId, at: Coord, _now: Cycle) {
        let Some(t) = self.txns.get(&id).copied() else {
            return;
        };
        self.l2.touch(t.line);
        let seat = *self.seat(t.cpu);
        self.send(
            at,
            seat.coord,
            TrafficClass::Control,
            1,
            Token::WriteAck { txn: id },
            seat.pillar,
        );
    }

    /// The read data arrived at the CPU: the transaction completes.
    fn complete_read(&mut self, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.remove(&id) else {
            return;
        };
        self.finish_counters(&t, now);
        let evicted = self.cores[t.cpu.index()].data_returned(t.addr);
        if let Some(ev) = evicted {
            self.dir.evict(t.cpu, ev);
        }
        self.dir.access(t.cpu, t.line, DirAccess::Read);
        let repeated = self.last_accessor.insert(t.line, t.cpu) == Some(t.cpu);
        self.maybe_migrate(t.cpu, t.line, repeated);
        self.maybe_replicate(t.cpu, t.line);
    }

    /// The store acknowledgement arrived: the transaction completes and
    /// other sharers get invalidated (write-through MSI).
    fn complete_write(&mut self, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.remove(&id) else {
            return;
        };
        self.finish_counters(&t, now);
        self.cores[t.cpu.index()].store_completed();
        // A store makes every L2 replica stale (replication extension).
        let src = self.seat(t.cpu).coord;
        let via = self.via(t.cpu);
        for rc in self.l2.drop_replicas(t.line) {
            self.counters.invalidations += 1;
            let dst = self.center(rc);
            self.send(
                src,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: t.line },
                via,
            );
        }
        let outcome = self.dir.access(t.cpu, t.line, DirAccess::Write);
        for sharer in outcome.invalidations {
            self.counters.invalidations += 1;
            let dst = self.seat(sharer).coord;
            self.send(
                src,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: t.line },
                via,
            );
        }
        let repeated = self.last_accessor.insert(t.line, t.cpu) == Some(t.cpu);
        self.maybe_migrate(t.cpu, t.line, repeated);
    }

    fn finish_counters(&mut self, t: &Txn, now: Cycle) {
        let latency = now - t.issued;
        self.counters.l2_transactions += 1;
        if self.obs.is_enabled() {
            // Per-cluster hit/miss matrix: requester's local cluster
            // crossed with the cluster that served (or "miss").
            let local = self.plans[t.cpu.index()].local.0;
            if t.was_miss {
                self.obs.counter_add(&format!("l2/miss_from/{local}"), 1);
            } else if t.serve_cluster != u16::MAX {
                self.obs
                    .counter_add(&format!("l2/hits/{local}/{}", t.serve_cluster), 1);
            }
            self.obs.histogram_record("l2/txn_latency", latency);
        }
        if t.was_miss {
            self.counters.l2_misses += 1;
            self.counters.miss_latency_sum += latency;
        } else {
            self.counters.l2_hits += 1;
            self.counters.hit_latency_sum += latency;
            match t.serve_step {
                2 => {
                    self.counters.step2_hits += 1;
                    self.counters.step2_latency_sum += latency;
                }
                _ => {
                    self.counters.step1_hits += 1;
                    self.counters.step1_latency_sum += latency;
                }
            }
        }
    }

    /// The L2 dropped a line: invalidate every L1 copy — unless the slot
    /// held only a replica (the primary copy, and hence the L1s'
    /// backing, is still resident).
    fn handle_l2_eviction(&mut self, victim: LineAddr, from: Coord) {
        if self.l2.locate(victim).is_some() {
            return; // a replica was evicted; the line itself lives on
        }
        self.counters.l2_evictions += 1;
        for sharer in self.dir.invalidate_all(victim) {
            self.counters.invalidations += 1;
            let dst = self.seat(sharer).coord;
            self.send(
                from,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: victim },
                None,
            );
        }
    }

    /// After a completed access, take one gradual migration step toward
    /// the accessor (paper §4.2.3).
    ///
    /// Lines already inside the accessor's step-1 vicinity do not migrate
    /// — their access latency is already low, which is exactly why the 3D
    /// topology "exercises [migration] much less frequently ... due to
    /// the increased locality (see Figure 8)" (§5.2): in 3D the vicinity
    /// spans whole layers. The exception is data accessed repeatedly by
    /// a single processor (`repeated`), which keeps migrating until it
    /// reaches that processor's local cluster.
    fn maybe_migrate(&mut self, cpu: CpuId, line: LineAddr, repeated: bool) {
        if !self.scheme.migrates() {
            return;
        }
        let Some(cur) = self.l2.locate(line) else {
            return;
        };
        if self.l2.migration_of(line).is_some() {
            return;
        }
        let seat = *self.seat(cpu);
        let acc_cluster = self.layout.cluster_of(seat.coord);
        if cur == acc_cluster {
            return;
        }
        if self.vicinity_stop && !repeated && self.plans[cpu.index()].step1.contains(&cur) {
            return;
        }
        let cluster_cpus = &self.cluster_cpus;
        let own_bit = 1u64 << cpu.index();
        let occupied = move |cl: ClusterId| cluster_cpus[cl.index()] & !own_bit != 0;
        let Some(to) = migration_target(&self.layout, cur, acc_cluster, seat.pillar, &occupied)
        else {
            return;
        };
        if self.l2.begin_migration(line, to).is_ok() {
            let src = self.bank_coord(cur, line);
            let dst = self.bank_coord(to, line);
            // Reading the source bank and writing the destination bank.
            self.counters.bank_accesses += 2;
            let flits = self.data_flits();
            self.send(
                src,
                dst,
                TrafficClass::Migration,
                flits,
                Token::MigrationMove { line },
                None,
            );
        }
    }

    /// After a completed read, optionally install a read-only replica of
    /// a shared line in the reader's local cluster (the NuRapid /
    /// victim-replication alternative of §1–§2; off by default).
    fn maybe_replicate(&mut self, cpu: CpuId, line: LineAddr) {
        if !self.replication {
            return;
        }
        let Some(primary) = self.l2.locate(line) else {
            return;
        };
        let local = self.plans[cpu.index()].local;
        if primary == local
            || self.l2.has_copy_at(line, local)
            || self.l2.migration_of(line).is_some()
            || self.l2.replicas_of(line).len() >= 2
            || self.dir.sharers(line).len() < 2
        {
            return;
        }
        self.counters.replicas_created += 1;
        self.counters.bank_accesses += 1; // source bank read for the copy
        let src = self.bank_coord(primary, line);
        let dst = self.bank_coord(local, line);
        let flits = self.data_flits();
        self.send(
            src,
            dst,
            TrafficClass::Data,
            flits,
            Token::ReplicaFill {
                line,
                cluster: local,
            },
            self.via(cpu),
        );
    }

    /// A replica copy reached its new bank.
    fn replica_arrived(&mut self, line: LineAddr, cluster: ClusterId, at: Coord, now: Cycle) {
        let delay = self.bank_delay(at, now, true);
        self.schedule(now, delay, TimedEvent::ReplicaInstalled { line, cluster });
    }

    /// The new bank absorbed the replica: publish it in the tag array.
    fn replica_installed(&mut self, line: LineAddr, cluster: ClusterId) {
        // The line may have been written, evicted, or already replicated
        // while the copy was in flight; install only if still sensible.
        if self.l2.migration_of(line).is_some() {
            return;
        }
        if let Ok(placed) = self.l2.add_replica(line, cluster) {
            if let Some(victim) = placed.evicted {
                let from = self.center(cluster);
                self.handle_l2_eviction(victim, from);
            }
        }
    }

    /// The migrating line arrived at the destination bank.
    fn migration_arrived(&mut self, line: LineAddr, now: Cycle) {
        // The destination bank absorbs the line when its port frees up.
        let at = match self.l2.migration_of(line) {
            Some(to) => self.bank_coord(to, line),
            None => return, // aborted in flight
        };
        let delay = self.bank_delay(at, now, true);
        self.schedule(now, delay, TimedEvent::MigrationDone { line });
    }

    /// The destination bank finished absorbing the line: commit.
    fn migration_done(&mut self, line: LineAddr) {
        match self.l2.commit_migration(line) {
            Ok(outcome) => {
                self.counters.migrations += 1;
                if let Some(victim) = outcome.evicted {
                    let from = self.center(outcome.to);
                    self.handle_l2_eviction(victim, from);
                }
            }
            Err(_) => {
                // Aborted mid-flight (the line was evicted); nothing to do.
            }
        }
    }

    fn handle_event(&mut self, ev: TimedEvent, now: Cycle) {
        match ev {
            TimedEvent::ProbeResolved { txn, cluster } => self.resolve_probe(txn, cluster, now),
            TimedEvent::VerticalClusterResolved {
                txn,
                cluster,
                layer,
            } => self.vertical_cluster_resolved(txn, cluster, layer, now),
            TimedEvent::BankReadDone { txn, at } => self.bank_read_done(txn, at, now),
            TimedEvent::BankWritten { txn, at } => self.bank_written(txn, at, now),
            TimedEvent::MemoryReady { line, mc } => self.memory_ready(line, mc, now),
            TimedEvent::MemoryFetched { line } => self.memory_fetched(line, now),
            TimedEvent::MigrationDone { line } => self.migration_done(line),
            TimedEvent::ReplicaInstalled { line, cluster } => self.replica_installed(line, cluster),
        }
    }

    fn handle_delivered(&mut self, d: Delivered, now: Cycle) {
        match Token::decode(d.token) {
            Token::Probe { txn, cluster } => {
                let delay = self.tag_delay(cluster, now);
                self.schedule(now, delay, TimedEvent::ProbeResolved { txn, cluster });
            }
            Token::VerticalProbe {
                txn,
                layer: _,
                step,
            } => {
                self.vertical_probe_arrived(txn, d.dst, step, now);
            }
            Token::ProbeMiss { txn } => self.probe_missed(txn, now),
            Token::BankFetch { txn } => self.bank_fetch_arrived(txn, d.dst, now),
            Token::DataToCpu { txn } => self.complete_read(txn, now),
            Token::FoundForWrite { txn, cluster: _ } => self.write_data_to(txn, now),
            Token::WriteData { txn } => self.write_data_arrived(txn, d.dst, now),
            Token::WriteAck { txn } => self.complete_write(txn, now),
            Token::MigrationMove { line } => self.migration_arrived(line, now),
            Token::ReplicaFill { line, cluster } => self.replica_arrived(line, cluster, d.dst, now),
            Token::MemRequest { line } => self.mem_request_arrived(line, d.dst, now),
            Token::MemFill { line } => self.mem_fill_arrived(line, d.dst, now),
            Token::Invalidate { line } => {
                if let Some(&cpu) = self.cpu_at.get(&d.dst) {
                    self.cores[cpu.index()].invalidate(line);
                }
            }
        }
    }
}
