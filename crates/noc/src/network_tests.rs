//! Unit tests for the [`Network`](super::Network) phases: injection,
//! routing, dTDMA bus grants, delivery accounting, and idle skipping.
//! Lives beside `network.rs` (the `#[path]` include keeps `super::*`
//! visibility) so the engine file itself stays within the size guard.

use super::*;
use crate::packet::TrafficClass;
use nim_types::{PillarId, SystemConfig};

fn net(mode: VerticalMode) -> (ChipLayout, Network) {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let network = Network::new(&layout, &cfg.network, mode);
    (layout, network)
}

fn send_one(
    net: &mut Network,
    src: Coord,
    dst: Coord,
    via: Option<PillarId>,
    flits: u32,
) -> PacketId {
    net.send(SendRequest {
        src,
        dst,
        via,
        class: TrafficClass::Control,
        flits,
        token: 7,
    })
}

#[test]
fn single_flit_same_layer_zero_load_latency() {
    let (_, mut net) = net(VerticalMode::Pillars);
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(3, 0, 0);
    send_one(&mut net, src, dst, None, 1);
    let cycles = net.run_until_idle(100).expect("must drain");
    // 1 injection cycle + 3 hops + 1 ejection cycle.
    assert_eq!(cycles, 5);
    let d = net.pop_delivered(dst).expect("delivered");
    assert_eq!(d.latency(), 5);
    assert_eq!(d.hops, 3);
    assert_eq!(d.token, 7);
    assert_eq!(net.stats().packets_delivered, 1);
}

#[test]
fn four_flit_packet_streams_behind_its_head() {
    let (_, mut net) = net(VerticalMode::Pillars);
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(3, 0, 0);
    send_one(&mut net, src, dst, None, 4);
    let cycles = net.run_until_idle(100).expect("must drain");
    // Head takes 5; each body/tail flit adds one cycle behind it.
    assert_eq!(cycles, 8);
    let d = net.pop_delivered(dst).unwrap();
    assert_eq!(d.latency(), 8);
}

#[test]
fn delivery_to_self_works() {
    let (_, mut net) = net(VerticalMode::Pillars);
    let here = Coord::new(2, 2, 0);
    send_one(&mut net, here, here, None, 1);
    net.run_until_idle(50).expect("drains");
    let d = net.pop_delivered(here).unwrap();
    assert_eq!(d.hops, 0, "local delivery never leaves the router");
}

#[test]
fn cross_layer_rides_the_pillar_bus() {
    let (layout, mut net) = net(VerticalMode::Pillars);
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    let src = Coord::new(px, py, 0);
    let dst = Coord::new(px, py, 1);
    send_one(&mut net, src, dst, Some(p), 1);
    let cycles = net.run_until_idle(100).expect("drains");
    // inject + vertical crossbar + bus + eject = 4 cycles.
    assert_eq!(cycles, 4);
    let d = net.pop_delivered(dst).unwrap();
    assert_eq!(d.hops, 1, "the bus is a single hop between any layers");
    assert_eq!(net.stats().bus_transfers, 1);
    assert_eq!(net.bus_stats()[0].transfers, 1);
}

#[test]
fn cross_layer_from_off_pillar_walks_to_the_pillar() {
    let (layout, mut net) = net(VerticalMode::Pillars);
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    let src = Coord::new(px.saturating_sub(1), py, 0);
    let dst = Coord::new(px + 1, py, 1);
    send_one(&mut net, src, dst, Some(p), 1);
    net.run_until_idle(200).expect("drains");
    let d = net.pop_delivered(dst).unwrap();
    // 1 hop to pillar + 1 bus hop + 1 hop to dst.
    assert_eq!(d.hops, 3);
}

#[test]
fn mesh3d_mode_climbs_with_up_down_ports() {
    let (_, mut net) = net(VerticalMode::Mesh3d);
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(2, 0, 1);
    send_one(&mut net, src, dst, None, 1);
    net.run_until_idle(100).expect("drains");
    let d = net.pop_delivered(dst).unwrap();
    assert_eq!(d.hops, 3, "2 lateral + 1 vertical mesh hop");
    assert_eq!(net.stats().bus_transfers, 0, "no buses in mesh3d mode");
}

#[test]
fn pillar_contention_is_observable() {
    let (layout, mut net) = net(VerticalMode::Pillars);
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    // Two senders on different layers both crossing simultaneously.
    send_one(
        &mut net,
        Coord::new(px, py, 0),
        Coord::new(px, py, 1),
        Some(p),
        4,
    );
    send_one(
        &mut net,
        Coord::new(px, py, 1),
        Coord::new(px, py, 0),
        Some(p),
        4,
    );
    net.run_until_idle(300).expect("drains");
    assert_eq!(net.stats().packets_delivered, 2);
    let bs = net.bus_stats()[0];
    assert!(bs.contention_cycles > 0);
    assert!(
        bs.contention_cycles <= bs.transfers,
        "contention is only counted on cycles where a transfer happens; \
         VC-blocked rounds are backpressure, not contention"
    );
}

/// Drives the network with [`Network::advance_to`] jumps to one cycle
/// before each [`Network::next_event_at`] horizon, returning
/// `(elapsed_cycles, ticks_executed)`.
fn run_skipping_until_idle(net: &mut Network, max_cycles: u64) -> Option<(u64, u64)> {
    let start = net.now().0;
    let mut ticks = 0u64;
    while !net.is_idle() {
        if net.now().0 - start >= max_cycles {
            return None;
        }
        if let Some(t) = net.next_event_at() {
            if t.0 > net.now().0 + 1 {
                net.advance_to(Cycle(t.0 - 1));
            }
        }
        net.tick();
        ticks += 1;
    }
    Some((net.now().0 - start, ticks))
}

#[test]
fn next_event_horizon_tracks_pending_work() {
    let (_, mut net) = net(VerticalMode::Pillars);
    assert_eq!(net.next_event_at(), None, "idle network has no horizon");
    send_one(&mut net, Coord::new(0, 0, 0), Coord::new(3, 0, 0), None, 1);
    assert_eq!(
        net.next_event_at(),
        Some(Cycle(1)),
        "a pending injection fires on the very next cycle"
    );
    net.tick();
    // The injected flit must dwell one router cycle before moving.
    assert_eq!(net.next_event_at(), Some(Cycle(2)));
    net.run_until_idle(100).expect("drains");
    assert_eq!(net.next_event_at(), None);
}

#[test]
fn horizon_skipping_is_bit_identical_under_bus_serialisation() {
    // A 32-bit bus moving 128-bit flits serialises 4 cycles per flit,
    // opening dead gaps with traffic still in flight — exactly the
    // spans `advance_to` may jump and a naive loop must idle through.
    let mut cfg = SystemConfig::default();
    cfg.network.bus_width_bits = 32;
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut naive = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    for (layer, flits) in [(0u8, 4u32), (1, 3), (0, 1)] {
        send_one(
            &mut naive,
            Coord::new(px.saturating_sub(2), py, layer),
            Coord::new(px + 1, py, 1 - layer),
            Some(p),
            flits,
        );
    }
    let mut skipping = naive.clone();
    let cycles_naive = naive.run_until_idle(10_000).expect("drains");
    let (cycles_skip, ticks) = run_skipping_until_idle(&mut skipping, 10_000).expect("drains");
    assert_eq!(cycles_naive, cycles_skip, "identical completion cycle");
    assert!(
        ticks < cycles_skip,
        "serialisation gaps must actually be skipped ({ticks} ticks over {cycles_skip} cycles)"
    );
    assert_eq!(naive.stats(), skipping.stats());
    assert_eq!(naive.bus_stats(), skipping.bus_stats());
    assert_eq!(naive.drain_delivered(), skipping.drain_delivered());
}

#[test]
fn many_packets_all_arrive_exactly_once() {
    let (layout, mut net) = net(VerticalMode::Pillars);
    let mut expected = Vec::new();
    // All-to-all among a set of nodes spread over both layers.
    let nodes = [
        Coord::new(0, 0, 0),
        Coord::new(15, 7, 0),
        Coord::new(7, 3, 1),
        Coord::new(2, 6, 1),
        Coord::new(12, 1, 0),
    ];
    let mut token = 0u64;
    for &s in &nodes {
        for &d in &nodes {
            if s != d {
                let via = layout.nearest_pillar(s);
                net.send(SendRequest {
                    src: s,
                    dst: d,
                    via,
                    class: TrafficClass::Data,
                    flits: 4,
                    token,
                });
                expected.push((d, token));
                token += 1;
            }
        }
    }
    net.run_until_idle(10_000).expect("all traffic drains");
    let mut got: Vec<(Coord, u64)> = net
        .drain_delivered()
        .into_iter()
        .map(|d| (d.dst, d.token))
        .collect();
    got.sort_unstable_by_key(|&(c, t)| (c.layer, c.y, c.x, t));
    expected.sort_unstable_by_key(|&(c, t)| (c.layer, c.y, c.x, t));
    assert_eq!(got, expected);
    assert_eq!(net.stats().packets_sent, net.stats().packets_delivered);
}

#[test]
fn per_source_destination_order_is_preserved() {
    let (_, mut net) = net(VerticalMode::Pillars);
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(5, 5, 0);
    for t in 0..10u64 {
        net.send(SendRequest {
            src,
            dst,
            via: None,
            class: TrafficClass::Control,
            flits: 1,
            token: t,
        });
    }
    net.run_until_idle(1_000).expect("drains");
    let tokens: Vec<u64> = std::iter::from_fn(|| net.pop_delivered(dst))
        .map(|d| d.token)
        .collect();
    assert_eq!(tokens, (0..10).collect::<Vec<_>>());
}

#[test]
fn heavy_random_traffic_drains_without_deadlock() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let (layout, mut net) = net(VerticalMode::Pillars);
    let mut rng = StdRng::seed_from_u64(42);
    let mut sent = 0u64;
    for _ in 0..400 {
        let src = Coord::new(
            rng.random_range(0..layout.width()),
            rng.random_range(0..layout.height()),
            rng.random_range(0..layout.layers()),
        );
        let dst = Coord::new(
            rng.random_range(0..layout.width()),
            rng.random_range(0..layout.height()),
            rng.random_range(0..layout.layers()),
        );
        let flits = if rng.random_bool(0.5) { 1 } else { 4 };
        net.send(SendRequest {
            src,
            dst,
            via: layout.nearest_pillar(src),
            class: TrafficClass::Data,
            flits,
            token: sent,
        });
        sent += 1;
        // Interleave some ticks so injection queues overlap in time.
        if sent.is_multiple_of(7) {
            net.tick();
        }
    }
    net.run_until_idle(100_000).expect("no deadlock under load");
    assert_eq!(net.stats().packets_delivered, sent);
    assert!(net.stats().avg_latency() > 0.0);
    assert!(
        net.stats().switch_contention > 0,
        "load must cause contention"
    );
}

#[test]
fn stats_latency_matches_deliveries() {
    let (_, mut net) = net(VerticalMode::Pillars);
    send_one(&mut net, Coord::new(0, 0, 0), Coord::new(1, 0, 0), None, 1);
    send_one(&mut net, Coord::new(4, 4, 0), Coord::new(4, 6, 0), None, 1);
    net.run_until_idle(100).unwrap();
    let ds = net.drain_delivered();
    let sum: u64 = ds.iter().map(|d| d.latency()).sum();
    assert_eq!(net.stats().total_latency, sum);
    assert_eq!(net.stats().avg_latency(), sum as f64 / 2.0);
}

#[test]
fn mesh3d_four_layer_traffic() {
    let cfg = SystemConfig::default().with_layers(4);
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut net = Network::new(&layout, &cfg.network, VerticalMode::Mesh3d);
    send_one(&mut net, Coord::new(0, 0, 0), Coord::new(0, 0, 3), None, 1);
    net.run_until_idle(100).expect("drains");
    let d = net.pop_delivered(Coord::new(0, 0, 3)).unwrap();
    assert_eq!(
        d.hops, 3,
        "each layer crossing is a mesh hop in 3D-mesh mode"
    );
}

/// Drives a sharded network to idle through the window path (forcing
/// the threaded executor onto every window) and returns everything
/// observable: deliveries in arrival order, network stats, per-bus
/// stats, and the traversal map.
fn drain_via_windows(net: &mut Network) -> (Vec<Delivered>, NetworkStats, Vec<BusStats>, Vec<u64>) {
    let mut delivered = Vec::new();
    let mut guard = 0;
    while !net.is_idle() {
        net.advance_window(net.now().0 + 10_000);
        net.tick();
        net.drain_delivered_into(&mut delivered);
        guard += 1;
        assert!(guard < 100_000, "sharded run livelocked");
    }
    (
        delivered,
        net.stats().clone(),
        net.bus_stats(),
        net.traversals().to_vec(),
    )
}

/// A deterministic many-packet workload mixing same-layer, cross-layer,
/// pinned-pillar, and multi-flit traffic across all layers.
fn mixed_traffic(net: &mut Network, layout: &ChipLayout) {
    let (w, h, l) = (layout.width(), layout.height(), layout.layers());
    for i in 0..60u32 {
        let src = Coord::new(
            (i % 7) as u8 % w,
            (i / 7) as u8 % h,
            (i % u32::from(l)) as u8,
        );
        let dst = Coord::new(
            ((i * 3) % 7) as u8 % w,
            ((i * 5) % 11) as u8 % h,
            ((i + 1) % u32::from(l)) as u8,
        );
        let via = (i % 3 == 0).then(|| PillarId((i % u32::from(layout.num_pillars())) as u16));
        send_one(net, src, dst, via, 1 + i % 4);
    }
}

#[test]
fn shard_request_clamps_to_cluster_row_divisors() {
    // The default 2-layer chip has 4 cluster rows (2 layers × a 2-row
    // cluster grid), so 1, 2, and 4 shards are all valid.
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    assert_eq!(
        Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 3).shards(),
        2,
        "3 does not divide 4 cluster rows; largest divisor wins"
    );
    assert_eq!(
        Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 4).shards(),
        4,
        "cluster-row cuts go finer than whole layers"
    );
    assert_eq!(
        Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 8).shards(),
        4,
        "over-asking clamps to the cluster-row count"
    );
    assert_eq!(
        Network::new_sharded(&layout, &cfg.network, VerticalMode::Mesh3d, 2).shards(),
        1,
        "the 3D mesh couples layers every cycle and cannot be cut"
    );
    let cfg4 = SystemConfig::default().with_layers(4);
    let layout4 = ChipLayout::new(&cfg4).unwrap();
    assert_eq!(
        Network::new_sharded(&layout4, &cfg4.network, VerticalMode::Pillars, 4).shards(),
        4
    );
}

#[test]
fn sharded_windows_match_sequential_bit_for_bit() {
    for layers in [2u8, 4] {
        let cfg = SystemConfig::default().with_layers(layers);
        let layout = ChipLayout::new(&cfg).unwrap();

        let mut reference = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
        mixed_traffic(&mut reference, &layout);
        reference.run_until_idle(100_000).expect("drains");
        let mut want = reference.drain_delivered();
        want.sort_by_key(|d| d.packet.0);

        // Cover layer-aligned cuts (2 on 2 layers, 4 on 4 layers) and
        // cluster-granular cuts that split layers mid-mesh (4 on 2
        // layers, 8 on 4 layers — the cluster-row maximum).
        let shard_counts: &[usize] = match layers {
            2 => &[2, 4],
            _ => &[2, 4, 8],
        };
        for &shards in shard_counts {
            let mut net =
                Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, shards);
            assert_eq!(net.shards(), shards);
            // Force the threaded executor onto even one-cycle windows so
            // this test exercises real cross-thread scheduling.
            net.set_window_tuning(1, shards);
            mixed_traffic(&mut net, &layout);
            let (mut got, stats, bus, traversals) = drain_via_windows(&mut net);
            got.sort_by_key(|d| d.packet.0);
            assert_eq!(got, want, "{shards} shards, {layers} layers: deliveries");
            assert_eq!(
                &stats,
                reference.stats(),
                "{shards} shards, {layers} layers: stats"
            );
            assert_eq!(
                bus,
                reference.bus_stats(),
                "{shards} shards, {layers} layers: bus stats"
            );
            assert_eq!(
                traversals,
                reference.traversals(),
                "{shards} shards, {layers} layers: traversal map"
            );
            assert_eq!(net.now(), reference.now(), "final clock");
        }
    }
}

#[test]
fn cluster_cut_same_layer_traffic_matches_sequential() {
    // 4 shards on the default 2-layer chip cut each layer's mesh at
    // y = 4. Same-layer packets crossing that cut exercise the
    // mesh-boundary lookahead specifically (mixed_traffic sends every
    // packet cross-layer when there are only 2 layers, which the bus
    // horizon already bounds).
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let traffic = |net: &mut Network| {
        for i in 0..40u32 {
            let x = (i % u32::from(layout.width())) as u8;
            let layer = (i % 2) as u8;
            let (sy, dy) = if i % 2 == 0 { (1, 6) } else { (7, 2) };
            send_one(
                net,
                Coord::new(x, sy, layer),
                Coord::new((x + 3) % layout.width(), dy, layer),
                None,
                1 + i % 4,
            );
        }
    };

    let mut reference = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    traffic(&mut reference);
    reference.run_until_idle(100_000).expect("drains");
    let mut want = reference.drain_delivered();
    want.sort_by_key(|d| d.packet.0);

    let mut net = Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 4);
    assert_eq!(net.shards(), 4);
    net.set_window_tuning(1, 4);
    traffic(&mut net);
    let (mut got, stats, bus, traversals) = drain_via_windows(&mut net);
    got.sort_by_key(|d| d.packet.0);
    assert_eq!(got, want, "cluster-cut deliveries");
    assert_eq!(&stats, reference.stats(), "cluster-cut stats");
    assert_eq!(bus, reference.bus_stats(), "cluster-cut bus stats");
    assert_eq!(traversals, reference.traversals(), "cluster-cut traversals");
}

#[test]
fn window_exchange_is_deterministic_across_interleavings() {
    // Thread scheduling varies run to run; shard claiming must not.
    // Five repetitions of the same threaded run must be byte-identical.
    let cfg = SystemConfig::default().with_layers(4);
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut baseline = None;
    for _ in 0..5 {
        let mut net = Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 4);
        net.set_window_tuning(1, 4);
        mixed_traffic(&mut net, &layout);
        let outcome = drain_via_windows(&mut net);
        let rendered = format!("{outcome:?}");
        match &baseline {
            None => baseline = Some(rendered),
            Some(b) => assert_eq!(b, &rendered, "nondeterministic sharded run"),
        }
    }
}

#[test]
fn window_advance_respects_caller_cap() {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut net = Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, 2);
    // Long route: plenty of lookahead before anything couples.
    send_one(
        &mut net,
        Coord::new(0, 0, 0),
        Coord::new(layout.width() - 1, layout.height() - 1, 1),
        None,
        1,
    );
    let advanced = net.advance_window(net.now().0 + 3);
    assert!(advanced <= 3, "window overran the caller's cap");
    assert_eq!(net.now().0, advanced, "clock advanced by the return value");
}
