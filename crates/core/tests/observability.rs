//! The observability spine through the whole system: an enabled [`Obs`]
//! handle attached at build time collects trace events, epoch samples,
//! and final metrics from a real run; a disabled handle stays inert.

use nim_core::{Scheme, SystemBuilder};
use nim_obs::{Category, CategoryMask, Obs, ObsConfig};
use nim_workload::BenchmarkProfile;

fn run_with(obs: Obs) {
    SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(11)
        .warmup_transactions(100)
        .sampled_transactions(2_000)
        .observability(obs)
        .build()
        .unwrap()
        .run(&BenchmarkProfile::swim())
        .unwrap();
}

#[test]
fn a_traced_run_captures_every_pillar_of_the_simulator() {
    let obs = Obs::new(ObsConfig {
        trace: true,
        sample_every: 1_000,
        ..ObsConfig::default()
    });
    run_with(obs.clone());
    assert!(obs.event_count() > 0);

    let mut buf = Vec::new();
    obs.export_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // Events from the NoC, the dTDMA buses, the search machinery, and
    // the migration engine all made it into one trace.
    for needle in [
        "\"inject\"",
        "\"deliver\"",
        "\"slot_grant\"",
        "\"probe\"",
        "search_step",
    ] {
        assert!(text.contains(needle), "trace missing {needle}");
    }
    assert!(
        text.contains("migration_start"),
        "DNUCA-3D run should migrate"
    );
    assert!(
        text.contains("\"ph\":\"C\""),
        "epoch counter samples missing"
    );
    assert!(text.contains("trace_summary"));

    // Final metrics include the per-router utilisation map and the
    // per-cluster hit matrix.
    let metrics = obs
        .with_metrics(|m| {
            (
                m.iter()
                    .filter(|(k, _)| k.starts_with("noc/traversals/"))
                    .count(),
                m.iter().filter(|(k, _)| k.starts_with("l2/hits/")).count(),
            )
        })
        .unwrap();
    assert!(metrics.0 > 0, "no per-router traversal counters published");
    assert!(metrics.1 > 0, "no hit-matrix entries recorded");
    assert!(obs.counter("sys/l2_transactions") >= 2_000);
    assert!(obs.cycles_per_sec() > 0.0);
}

#[test]
fn category_filter_limits_what_is_recorded() {
    let obs = Obs::new(ObsConfig {
        trace: true,
        mask: CategoryMask::NONE.with(Category::Migration),
        ..ObsConfig::default()
    });
    run_with(obs.clone());
    let mut buf = Vec::new();
    obs.export_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("migration_start"));
    assert!(
        !text.contains("\"inject\""),
        "packet events should be filtered"
    );
    assert!(
        !text.contains("\"probe\""),
        "search events should be filtered"
    );
}

#[test]
fn runs_are_identical_with_and_without_observability() {
    let run = |obs: Obs| {
        SystemBuilder::new(Scheme::CmpDnuca3d)
            .seed(5)
            .warmup_transactions(0)
            .sampled_transactions(1_000)
            .observability(obs)
            .build()
            .unwrap()
            .run(&BenchmarkProfile::swim())
            .unwrap()
    };
    let plain = run(Obs::disabled());
    let traced = run(Obs::new(ObsConfig {
        trace: true,
        sample_every: 500,
        ..ObsConfig::default()
    }));
    // Observation must not perturb the simulation.
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.counters, traced.counters);
}
