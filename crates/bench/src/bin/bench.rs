//! Machine-readable parallel-sweep benchmark.
//!
//! Runs the Figure-13 grid (every benchmark × every scheme) twice — once
//! with one worker, once with `NIM_JOBS` (default: all cores, clamped to
//! the cores actually available) — and writes `BENCH_sweep.json` with
//! cycles simulated, wall seconds, cycles/sec, and the jobs=N speedup
//! over jobs=1, plus a `deterministic` flag asserting the two sweeps
//! produced identical reports. A second section times one *single* run
//! across a curve of shard counts — sequential, 2 shards, and the
//! topology's maximum (`SystemBuilder::shards`) — reporting a
//! `shards_curve` array and asserting every sharded report is
//! bit-identical to the sequential one. A third section runs
//! the same cell on the ideal contention-free fabric
//! (`SystemBuilder::fabric`), reporting `cycles_per_sec_ideal_fabric` —
//! skipping per-flit simulation must beat the cycle-accurate NoC on
//! wall-clock throughput, and CI gates on it.
//!
//! ```sh
//! NIM_SCALE=quick NIM_JOBS=4 cargo run --release -p nim-bench --bin bench
//! ```
//!
//! The output path defaults to `BENCH_sweep.json` in the current
//! directory; pass a path as the first argument to override it.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nim_bench::scale_from_env;
use nim_core::experiments::{run_cells, ExperimentScale, SweepSpec};
use nim_core::parallel::{configured_jobs, set_jobs_override};
use nim_core::{FabricKind, RunReport, Scheme, SystemBuilder};
use nim_workload::BenchmarkProfile;

/// Pulls `"cycles_per_sec_1": <number>` out of a previously written
/// sweep JSON, so successive runs record before/after throughput
/// without needing a JSON dependency.
fn prev_cycles_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"cycles_per_sec_1\":";
    let rest = text[text.find(key)? + key.len()..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn timed_sweep(
    jobs: usize,
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
    specs: &[SweepSpec],
) -> Result<(Vec<RunReport>, f64), Box<dyn Error>> {
    set_jobs_override(Some(jobs));
    let start = Instant::now();
    let reports = run_cells(benchmarks, scale, specs);
    let wall = start.elapsed().as_secs_f64();
    set_jobs_override(None);
    Ok((reports?, wall))
}

/// Runs one 2-layer CmpDnuca3d cell with the network cut into `shards`
/// regions on the given interconnect substrate, returning the report,
/// the wall time of `System::run` alone (build and prewarm excluded),
/// and the window executor's spawn threshold after the run (the
/// calibrated value unless overridden; meaningful only when sharded).
fn timed_single_run(
    scale: ExperimentScale,
    profile: &BenchmarkProfile,
    shards: usize,
    fabric: FabricKind,
) -> Result<(RunReport, f64, u64), Box<dyn Error>> {
    let mut sys = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(42)
        .warmup_transactions(scale.warmup)
        .sampled_transactions(scale.sample)
        .shards(shards)
        .fabric(fabric)
        .build()?;
    let start = Instant::now();
    let report = sys.run(profile)?;
    let wall = start.elapsed().as_secs_f64();
    Ok((report, wall, sys.network().window_spawn_min()))
}

fn main() -> Result<(), Box<dyn Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let scale = scale_from_env(true);
    let scale_name = if scale == ExperimentScale::quick() {
        "quick"
    } else {
        "full"
    };
    let benchmarks = BenchmarkProfile::all();
    let mut specs = Vec::new();
    for bi in 0..benchmarks.len() {
        for &scheme in &Scheme::ALL {
            specs.push(SweepSpec::new(scheme, bi));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Oversubscribing a small container (say NIM_JOBS=4 on one core)
    // only adds scheduling overhead — the sweep is CPU-bound, so more
    // workers than cores is strictly a loss. Clamp rather than obey.
    let jobs = configured_jobs().min(cores);
    eprintln!(
        "# bench: {} cells at scale {scale_name}, jobs=1 then jobs={jobs} ({cores} cores)",
        specs.len()
    );

    let prev_cps_1 = prev_cycles_per_sec(&out_path);
    let (baseline, wall_1) = timed_sweep(1, &benchmarks, scale, &specs)?;
    let (parallel, wall_n) = timed_sweep(jobs, &benchmarks, scale, &specs)?;

    // RunReport intentionally has no PartialEq; the Debug form covers
    // every field, so equal strings mean bit-identical sweeps.
    let deterministic = format!("{baseline:?}") == format!("{parallel:?}");
    let cycles: u64 = parallel.iter().map(|r| r.cycles).sum();
    let cps_1 = cycles as f64 / wall_1.max(1e-9);
    let cps_n = cycles as f64 / wall_n.max(1e-9);
    let speedup = wall_1 / wall_n.max(1e-9);

    // Single-run shard curve: the same simulation with its network cut
    // into 1, 2, and the topology's maximum number of cluster-row
    // shards, all advancing concurrently between pillar grants.
    let sharded_profile = BenchmarkProfile::art();
    let max_shards = SystemBuilder::new(Scheme::CmpDnuca3d)
        .shards(usize::MAX)
        .build()?
        .network()
        .shards();
    let mut shard_counts = vec![1usize, 2, max_shards];
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let mut curve = Vec::new();
    for &n in &shard_counts {
        eprintln!("# bench: single run, shards={n}");
        let (report, wall, spawn_min) =
            timed_single_run(scale, &sharded_profile, n, FabricKind::Sim)?;
        curve.push((n, report, wall, spawn_min));
    }
    let seq_debug = format!("{:?}", curve[0].1);
    let sharded_deterministic = curve
        .iter()
        .all(|(_, report, _, _)| format!("{report:?}") == seq_debug);
    let cps_s1 = curve[0].1.cycles as f64 / curve[0].2.max(1e-9);

    // Ideal contention-free fabric: the same cell with every packet's
    // latency computed analytically instead of simulated flit by flit.
    eprintln!("# bench: single-run ideal fabric, shards=1");
    let (ideal_report, wall_ideal, _) =
        timed_single_run(scale, &sharded_profile, 1, FabricKind::Ideal)?;
    let cps_ideal = ideal_report.cycles as f64 / wall_ideal.max(1e-9);
    let ideal_fabric_speedup = cps_ideal / cps_s1.max(1e-9);

    // Snapshot/resume: pause the same cell at its warmup boundary, time
    // writing the image and restoring a live system from it, and check
    // the resumed run still reproduces the sequential report above.
    eprintln!("# bench: snapshot write + resume");
    let mut sys = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(42)
        .warmup_transactions(scale.warmup)
        .sampled_transactions(scale.sample)
        .build()?;
    let mut gen = sys.begin(&sharded_profile);
    if sys.run_until(&mut gen, scale.warmup)?.is_some() {
        return Err("warmup stop unexpectedly finished the run".into());
    }
    let start = Instant::now();
    let image = sys.snapshot(&gen)?;
    let snapshot_write_secs = start.elapsed().as_secs_f64();
    let snapshot_bytes = image.len();
    let start = Instant::now();
    let mut resumed = SystemBuilder::resume_from(&image, None)?;
    let resume_secs = start.elapsed().as_secs_f64();
    let resumed_deterministic = format!("{:?}", resumed.finish()?) == seq_debug;

    // Warmup forking: a sweep of N identical cells simulates warmup once
    // and forks, vs N cold starts. Timed at jobs=1 so the speedup
    // isolates the shared warmup, not thread-level parallelism.
    eprintln!("# bench: warmup-forked sweep, 4 duplicate cells");
    let fork_bench = [sharded_profile.clone()];
    let fork_specs = [SweepSpec::new(Scheme::CmpDnuca3d, 0); 4];
    set_jobs_override(Some(1));
    let start = Instant::now();
    let forked = run_cells(&fork_bench, scale, &fork_specs)?;
    let wall_forked = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let cold = run_cells(&fork_bench, scale, &fork_specs[..1])?;
    let wall_cold = start.elapsed().as_secs_f64();
    set_jobs_override(None);
    let warmup_fork_speedup = (fork_specs.len() as f64 * wall_cold) / wall_forked.max(1e-9);
    let fork_deterministic = forked
        .iter()
        .all(|r| format!("{r:?}") == format!("{:?}", cold[0]));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"warmup_transactions\": {},", scale.warmup);
    let _ = writeln!(json, "  \"sampled_transactions\": {},", scale.sample);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"cells\": {},", specs.len());
    let _ = writeln!(json, "  \"cycles_simulated\": {cycles},");
    let _ = writeln!(json, "  \"wall_secs_1\": {wall_1:.6},");
    let _ = writeln!(json, "  \"wall_secs_n\": {wall_n:.6},");
    let _ = writeln!(json, "  \"cycles_per_sec_1\": {cps_1:.1},");
    let _ = writeln!(json, "  \"cycles_per_sec_n\": {cps_n:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"cycles_per_sec_sharded_1\": {cps_s1:.1},");
    let _ = writeln!(json, "  \"shards_curve\": [");
    for (i, (n, report, wall, spawn_min)) in curve.iter().enumerate() {
        let cps = report.cycles as f64 / wall.max(1e-9);
        let comma = if i + 1 < curve.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"shards\": {n}, \"wall_secs\": {wall:.6}, \
             \"cycles_per_sec\": {cps:.1}, \"spawn_min\": {spawn_min} }}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"sharded_deterministic\": {sharded_deterministic},"
    );
    let _ = writeln!(json, "  \"cycles_per_sec_ideal_fabric\": {cps_ideal:.1},");
    let _ = writeln!(
        json,
        "  \"ideal_fabric_speedup\": {ideal_fabric_speedup:.3},"
    );
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(json, "  \"snapshot_write_secs\": {snapshot_write_secs:.6},");
    let _ = writeln!(json, "  \"resume_secs\": {resume_secs:.6},");
    let _ = writeln!(json, "  \"warmup_fork_speedup\": {warmup_fork_speedup:.3},");
    let _ = writeln!(json, "  \"fork_deterministic\": {fork_deterministic},");
    // Before/after throughput relative to whatever sweep last wrote this
    // file (absent on a first run).
    if let Some(prev) = prev_cps_1 {
        let _ = writeln!(json, "  \"prev_cycles_per_sec_1\": {prev:.1},");
        let _ = writeln!(
            json,
            "  \"speedup_vs_prev\": {:.3},",
            cps_1 / prev.max(1e-9)
        );
    }
    let _ = writeln!(json, "  \"deterministic\": {deterministic}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!("# wrote {out_path}");
    if !deterministic {
        return Err("parallel sweep diverged from the sequential sweep".into());
    }
    if !sharded_deterministic {
        return Err("a sharded run diverged from the sequential run".into());
    }
    if !resumed_deterministic {
        return Err("the resumed run diverged from the sequential run".into());
    }
    if !fork_deterministic {
        return Err("a warmup-forked cell diverged from its cold start".into());
    }
    Ok(())
}
