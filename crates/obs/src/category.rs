//! Event categories and the runtime filter mask.

use core::fmt;

/// Coarse grouping of trace events, used for runtime filtering and as
/// the Chrome trace `cat` field. Each category renders as its own
/// named track in Perfetto.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Category {
    /// Packet lifecycle: injection and delivery.
    Packet = 0,
    /// Individual flit router traversals (very high volume).
    Hop = 1,
    /// dTDMA pillar bus activity: slot grants and contention.
    Pillar = 2,
    /// Two-step NUCA search: step issue, probes, results, retries.
    Search = 3,
    /// Cache-line migration: start, commit, abort.
    Migration = 4,
    /// Directory traffic: L1 invalidations.
    Coherence = 5,
    /// Data-bank port activity.
    Bank = 6,
    /// Off-chip memory requests and fills.
    Memory = 7,
    /// Annotations and exporter metadata.
    Meta = 8,
    /// Per-transaction latency spans (begin/end pairs for sampled
    /// transactions, with the phase-bucket breakdown on the end event).
    Txn = 9,
}

impl Category {
    /// Every category, in bit order.
    pub const ALL: [Category; 10] = [
        Category::Packet,
        Category::Hop,
        Category::Pillar,
        Category::Search,
        Category::Migration,
        Category::Coherence,
        Category::Bank,
        Category::Memory,
        Category::Meta,
        Category::Txn,
    ];

    /// Stable lowercase name (the trace `cat` field and filter token).
    pub const fn name(self) -> &'static str {
        match self {
            Category::Packet => "packet",
            Category::Hop => "hop",
            Category::Pillar => "pillar",
            Category::Search => "search",
            Category::Migration => "migration",
            Category::Coherence => "coherence",
            Category::Bank => "bank",
            Category::Memory => "memory",
            Category::Meta => "meta",
            Category::Txn => "txn",
        }
    }

    /// Position in [`Category::ALL`] (also the Perfetto track id).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    fn from_name(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of enabled [`Category`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoryMask(u16);

impl CategoryMask {
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask((1 << 10) - 1);
    /// Nothing enabled.
    pub const NONE: CategoryMask = CategoryMask(0);

    /// The default trace mask: everything except per-flit [`Category::Hop`]
    /// events, whose volume would wrap the ring within a few thousand
    /// cycles of loaded simulation. Opt in with `--trace-filter hop,...`.
    pub fn default_trace() -> CategoryMask {
        CategoryMask::ALL.without(Category::Hop)
    }

    /// Whether `cat` is enabled.
    #[inline]
    pub const fn contains(self, cat: Category) -> bool {
        self.0 & (1 << cat.index()) != 0
    }

    /// This mask plus `cat`.
    #[must_use]
    pub const fn with(self, cat: Category) -> CategoryMask {
        CategoryMask(self.0 | (1 << cat.index()))
    }

    /// This mask minus `cat`.
    #[must_use]
    pub const fn without(self, cat: Category) -> CategoryMask {
        CategoryMask(self.0 & !(1 << cat.index()))
    }

    /// The raw bitset, for serialization (bit `i` is
    /// `Category::ALL[i]`).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Rebuilds a mask from [`CategoryMask::bits`]. Bits above the
    /// known categories are dropped.
    #[inline]
    pub const fn from_bits(bits: u16) -> CategoryMask {
        CategoryMask(bits & CategoryMask::ALL.0)
    }

    /// Parses a comma-separated category list (e.g.
    /// `"packet,pillar,search"`). `"all"` enables everything, `"none"`
    /// nothing; a leading `-` subtracts from `all` (e.g. `"-hop"`).
    ///
    /// # Errors
    ///
    /// Returns the first unknown token.
    pub fn parse(s: &str) -> Result<CategoryMask, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("all") {
            return Ok(CategoryMask::ALL);
        }
        if s.eq_ignore_ascii_case("none") {
            return Ok(CategoryMask::NONE);
        }
        let (mut mask, subtract) = if s.starts_with('-') {
            (CategoryMask::ALL, true)
        } else {
            (CategoryMask::NONE, false)
        };
        for raw in s.split(',') {
            let tok = raw.trim().trim_start_matches('-');
            if tok.is_empty() {
                continue;
            }
            let cat = Category::from_name(&tok.to_ascii_lowercase())
                .ok_or_else(|| format!("unknown trace category '{tok}'"))?;
            mask = if subtract {
                mask.without(cat)
            } else {
                mask.with(cat)
            };
        }
        Ok(mask)
    }
}

impl Default for CategoryMask {
    fn default() -> Self {
        CategoryMask::default_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_lists_and_negation() {
        let m = CategoryMask::parse("packet, pillar,search").unwrap();
        assert!(m.contains(Category::Packet));
        assert!(m.contains(Category::Pillar));
        assert!(m.contains(Category::Search));
        assert!(!m.contains(Category::Migration));

        let all = CategoryMask::parse("all").unwrap();
        assert!(Category::ALL.into_iter().all(|c| all.contains(c)));

        let none = CategoryMask::parse("none").unwrap();
        assert!(Category::ALL.into_iter().all(|c| !none.contains(c)));

        let minus = CategoryMask::parse("-hop,-bank").unwrap();
        assert!(!minus.contains(Category::Hop));
        assert!(!minus.contains(Category::Bank));
        assert!(minus.contains(Category::Packet));

        assert!(CategoryMask::parse("bogus").is_err());
    }

    #[test]
    fn default_mask_drops_only_hops() {
        let m = CategoryMask::default_trace();
        assert!(!m.contains(Category::Hop));
        for c in Category::ALL {
            if c != Category::Hop {
                assert!(m.contains(c), "{c} should be on by default");
            }
        }
    }
}
