//! Cache banks and sets.
//!
//! A bank is the individually addressable unit of the NUCA (64 KB, 16-way,
//! 64 B lines by default — Table 4): a grid of sets, each holding way
//! slots plus tree pseudo-LRU state. The simulator tracks which *line*
//! occupies each slot (data contents are not modelled; only placement and
//! movement matter for latency/energy).

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::LineAddr;

use crate::plru::TreePlru;

/// Result of inserting a line into a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inserted {
    /// Way the line was placed in.
    pub way: u32,
    /// Line evicted to make room, if the set was full.
    pub evicted: Option<LineAddr>,
}

/// One set: `ways` slots plus replacement state.
#[derive(Clone, Debug)]
struct Set {
    lines: Vec<Option<LineAddr>>,
    plru: TreePlru,
}

impl Set {
    fn new(ways: u32) -> Self {
        Self {
            lines: vec![None; ways as usize],
            plru: TreePlru::new(ways),
        }
    }

    fn lookup(&self, line: LineAddr) -> Option<u32> {
        self.lines
            .iter()
            .position(|slot| *slot == Some(line))
            .map(|w| w as u32)
    }

    fn insert(&mut self, line: LineAddr) -> Inserted {
        debug_assert!(self.lookup(line).is_none(), "line already present");
        if let Some(way) = self.lines.iter().position(Option::is_none) {
            let way = way as u32;
            self.lines[way as usize] = Some(line);
            self.plru.touch(way);
            return Inserted { way, evicted: None };
        }
        let way = self.plru.victim();
        let evicted = self.lines[way as usize].take();
        self.lines[way as usize] = Some(line);
        self.plru.touch(way);
        Inserted { way, evicted }
    }

    fn remove(&mut self, line: LineAddr) -> bool {
        match self.lookup(line) {
            Some(way) => {
                self.lines[way as usize] = None;
                true
            }
            None => false,
        }
    }

    fn occupancy(&self) -> usize {
        self.lines.iter().filter(|s| s.is_some()).count()
    }
}

/// One cache bank: a column of sets.
#[derive(Clone, Debug)]
pub struct Bank {
    sets: Vec<Set>,
}

impl Bank {
    /// Creates a bank of `sets` sets with `ways` ways each.
    pub fn new(sets: u32, ways: u32) -> Self {
        Self {
            sets: (0..sets).map(|_| Set::new(ways)).collect(),
        }
    }

    /// Whether `line` is resident in `set`; returns the way if so.
    pub fn lookup(&self, set: u32, line: LineAddr) -> Option<u32> {
        self.sets[set as usize].lookup(line)
    }

    /// Marks `line` most-recently used in its set.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is not resident.
    pub fn touch(&mut self, set: u32, line: LineAddr) {
        let s = &mut self.sets[set as usize];
        let way = s.lookup(line).expect("touch of a non-resident line");
        s.plru.touch(way);
    }

    /// Inserts `line` into `set`, evicting the pseudo-LRU victim if full.
    pub fn insert(&mut self, set: u32, line: LineAddr) -> Inserted {
        self.sets[set as usize].insert(line)
    }

    /// Removes `line` from `set`; returns whether it was present.
    pub fn remove(&mut self, set: u32, line: LineAddr) -> bool {
        self.sets[set as usize].remove(line)
    }

    /// Number of resident lines in the bank.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Set::occupancy).sum()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.sets.len() as u32
    }
}

impl Checkpoint for Bank {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.sets.len() as u32);
        for set in &self.sets {
            w.u32(set.plru.raw_bits());
            w.u32(set.lines.len() as u32);
            // Way-slot positions are load-bearing (lookup and insert walk
            // them by position), so empty slots are written explicitly.
            for slot in &set.lines {
                match slot {
                    Some(line) => {
                        w.u8(1);
                        w.u64(line.0);
                    }
                    None => w.u8(0),
                }
            }
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.u32()? as usize != self.sets.len() {
            return Err(CodecError::Corrupt("bank set count mismatch"));
        }
        for set in &mut self.sets {
            set.plru.set_raw_bits(r.u32()?);
            if r.u32()? as usize != set.lines.len() {
                return Err(CodecError::Corrupt("bank way count mismatch"));
            }
            for slot in &mut set.lines {
                *slot = match r.u8()? {
                    0 => None,
                    1 => Some(LineAddr(r.u64()?)),
                    _ => return Err(CodecError::Corrupt("bad way slot tag")),
                };
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut bank = Bank::new(64, 16);
        let line = LineAddr(0xabc);
        let ins = bank.insert(3, line);
        assert_eq!(ins.evicted, None);
        assert_eq!(bank.lookup(3, line), Some(ins.way));
        assert_eq!(bank.lookup(4, line), None, "different set");
        assert_eq!(bank.occupancy(), 1);
    }

    #[test]
    fn full_set_evicts_the_plru_victim() {
        let mut bank = Bank::new(1, 4);
        for i in 0..4u64 {
            assert_eq!(bank.insert(0, LineAddr(i)).evicted, None);
        }
        let ins = bank.insert(0, LineAddr(100));
        let victim = ins.evicted.expect("set was full");
        assert!(victim.0 < 4);
        assert_eq!(bank.lookup(0, victim), None);
        assert_eq!(bank.lookup(0, LineAddr(100)), Some(ins.way));
        assert_eq!(bank.occupancy(), 4);
    }

    #[test]
    fn touch_protects_a_hot_line_from_eviction() {
        let mut bank = Bank::new(1, 4);
        for i in 0..4u64 {
            bank.insert(0, LineAddr(i));
        }
        // Keep line 0 hot while streaming new lines through.
        for i in 4..20u64 {
            bank.touch(0, LineAddr(0));
            let ins = bank.insert(0, LineAddr(i));
            assert_ne!(ins.evicted, Some(LineAddr(0)), "hot line evicted at i={i}");
        }
        assert!(bank.lookup(0, LineAddr(0)).is_some());
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut bank = Bank::new(2, 2);
        bank.insert(1, LineAddr(7));
        assert!(bank.remove(1, LineAddr(7)));
        assert!(!bank.remove(1, LineAddr(7)), "double remove is a no-op");
        assert_eq!(bank.occupancy(), 0);
        // The freed way is reused without eviction.
        bank.insert(1, LineAddr(8));
        bank.insert(1, LineAddr(9));
        assert_eq!(bank.insert(0, LineAddr(10)).evicted, None);
    }

    #[test]
    fn default_geometry_matches_table_4() {
        // 64 KB bank, 64 B lines, 16 ways -> 64 sets.
        let bank = Bank::new(64, 16);
        assert_eq!(bank.num_sets(), 64);
    }
}
