//! The dTDMA bus phase: one arbitration round per pillar per cycle.
//!
//! Runs first each tick, so a flit granted the bus (stamped
//! `arrived == now`) cannot also traverse a router in the same cycle.

use nim_obs::{Category, EventData};
use nim_types::{Coord, Cycle, Dir};

use super::Network;

impl Network {
    pub(super) fn bus_phase(&mut self, now: Cycle) {
        if self.bus_active.is_empty() {
            return;
        }
        let mut work =
            std::mem::replace(&mut self.bus_active, std::mem::take(&mut self.bus_scratch));
        work.sort_unstable();
        for &b in &work {
            self.in_bus_active[b as usize] = false;
        }
        for &b in &work {
            let b = b as usize;
            self.process_bus(b, now);
            if self.buses[b].queued() > 0 {
                self.mark_bus(b);
            }
        }
        work.clear();
        self.bus_scratch = work;
    }

    /// One dTDMA arbitration round: at most one flit crosses the bus.
    fn process_bus(&mut self, b: usize, now: Cycle) {
        // A narrow bus is still serialising the previous flit.
        if self.bus_ready_at[b] > now.0 {
            return;
        }
        let layers = self.buses[b].ifaces.len();
        let eligible = self.buses[b]
            .ifaces
            .iter()
            .filter(|i| i.q.front(&self.arena).is_some_and(|f| f.arrived < now))
            .count();
        if eligible == 0 {
            return;
        }
        let rr = self.buses[b].rr;
        for off in 0..layers {
            let i = (rr + off) % layers;
            let Some(front) = self.buses[b].ifaces[i].q.front(&self.arena).copied() else {
                continue;
            };
            if front.arrived >= now {
                continue;
            }
            let (px, py) = self.buses[b].xy;
            let dest_idx = self.layout.node_index(Coord::new(px, py, front.dst.layer));
            let vi = Dir::Vertical.index();
            let port = self.routers[dest_idx].inputs[vi]
                .as_ref()
                .expect("pillar node lacks vertical port");
            let vc_sel = if front.kind.is_head() {
                port.free_vc()
            } else {
                self.buses[b].ifaces[i]
                    .bound_vc
                    .filter(|&v| port.vc(v).accepts_continuation(front.pkt))
            };
            let Some(vc) = vc_sel else {
                continue;
            };
            // Multiple transmitters competing for a grant that actually
            // happens is contention; a round where every candidate is
            // VC-blocked is backpressure and counts nowhere.
            if eligible >= 2 {
                self.buses[b].stats.contention_cycles += 1;
                self.obs
                    .emit(Category::Pillar, || EventData::BusContention {
                        pillar: b as u32,
                        waiting: eligible as u32,
                    });
            }
            let mut f = self.buses[b].ifaces[i]
                .q
                .pop_front(&self.arena)
                .expect("front checked");
            // `arrived` still holds the bus-enqueue stamp: the span up
            // to this grant is time spent waiting for a dTDMA slot.
            f.bus_wait += (now.0 - f.arrived.0) as u32;
            f.arrived = now;
            f.hops += 1;
            self.routers[dest_idx].inputs[vi]
                .as_mut()
                .expect("checked above")
                .vc_mut(vc)
                .push(&mut self.arena, f);
            self.routers[dest_idx].occupancy += 1;
            self.mark_dirty(dest_idx);
            let iface = &mut self.buses[b].ifaces[i];
            iface.bound_vc = if f.kind.is_tail() {
                None
            } else if f.kind.is_head() {
                Some(vc)
            } else {
                iface.bound_vc
            };
            self.buses[b].stats.transfers += 1;
            self.buses[b].stats.busy_cycles += self.bus_cycles_per_flit;
            self.stats.bus_transfers += 1;
            self.obs.emit(Category::Pillar, || EventData::BusGrant {
                pillar: b as u32,
                from_layer: i as u16,
                to_layer: u16::from(f.dst.layer),
            });
            self.buses[b].rr = (i + 1) % layers;
            self.bus_ready_at[b] = now.0 + self.bus_cycles_per_flit;
            break; // one flit per bus grant
        }
    }
}
