//! Hand-rolled JSON string escaping and value formatting.
//!
//! The build environment has no registry access, so the exporters write
//! JSON by hand; this module keeps the escaping rules in one place.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes),
/// escaping quotes, backslashes, and control characters per RFC 8259.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a JSON string literal.
#[cfg(test)]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// degrade to `0`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(json_string("plain"), r#""plain""#);
        assert_eq!(json_string("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_string("line\nbreak\ttab"), r#""line\nbreak\ttab""#);
        assert_eq!(json_string("\u{01}"), "\"\\u0001\"");
        assert_eq!(json_string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(3.25), "3.25");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }
}
