//! Pins the analytic zero-load model (`nim_noc::zero_load_path`) — the
//! timing engine of the latency-table and ideal fabrics — against the
//! cycle-accurate network, flit for flit.
//!
//! Each probe sends exactly one packet into an otherwise idle network
//! and compares the delivered latency, hop count, and tail bus-wait to
//! the model's prediction. A fresh network per probe keeps round-robin
//! pointers and bus serialisation windows from leaking between probes,
//! so every run is a genuine contention-free measurement.

use nim_noc::{zero_load_path, Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::{ChipLayout, MeshTopology};
use nim_types::{Coord, PillarId, PillarPlacement, SystemConfig};

/// Sends one packet into a fresh network and checks it against the model.
fn probe(cfg: &SystemConfig, src: Coord, dst: Coord, via: Option<PillarId>, flits: u32) {
    let layout = ChipLayout::new(cfg).expect("layout");
    let topo = MeshTopology::new(layout.clone(), cfg.network.router_latency);
    let predicted = zero_load_path(
        &topo,
        src,
        dst,
        via,
        flits,
        u64::from(cfg.network.router_latency),
        u64::from(cfg.network.bus_cycles_per_flit()),
    );
    let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    net.send(SendRequest {
        src,
        dst,
        via,
        class: TrafficClass::Data,
        flits,
        token: 7,
    });
    net.run_until_idle(100_000).expect("single packet drains");
    let d = net.pop_delivered(dst).expect("delivered at dst");
    let ctx = format!(
        "{src}->{dst} via {via:?} flits={flits} layers={} k={} L={}",
        cfg.network.layers,
        cfg.network.bus_cycles_per_flit(),
        cfg.network.router_latency
    );
    assert_eq!(d.latency(), predicted.latency, "latency mismatch: {ctx}");
    assert_eq!(d.hops, predicted.hops, "hops mismatch: {ctx}");
    assert_eq!(d.bus_wait, predicted.bus_wait, "bus_wait mismatch: {ctx}");
}

/// Probes a deterministic spread of pairs over the whole chip for one
/// configuration: same-layer and cross-layer, pinned and unpinned
/// pillars, single- and multi-flit packets.
fn sweep(cfg: &SystemConfig) {
    let layout = ChipLayout::new(cfg).expect("layout");
    let n = layout.num_nodes();
    let pillars = layout.num_pillars();
    for (i, step) in [(0usize, 37usize), (5, 53), (11, 71)] {
        let src = layout.coord_of_index(i % n);
        let dst = layout.coord_of_index((i + step) % n);
        if src == dst {
            continue;
        }
        for flits in [1u32, 4] {
            probe(cfg, src, dst, None, flits);
            if !src.same_layer(dst) && pillars > 0 {
                let via = PillarId((i % pillars as usize) as u16);
                probe(cfg, src, dst, Some(via), flits);
            }
        }
    }
    // Force cross-layer probes even when the index stride happens to
    // stay on a layer.
    if layout.layers() > 1 {
        for p in 0..pillars.min(3) {
            let (px, py) = layout.pillar_xy(PillarId(p));
            let src = Coord::new(0, 0, 0);
            let dst = Coord::new(px, py, layout.layers() - 1);
            probe(cfg, src, dst, Some(PillarId(p)), 4);
            probe(cfg, src, dst, None, 4);
        }
    }
}

#[test]
fn default_topology_matches_model() {
    sweep(&SystemConfig::default());
}

#[test]
fn narrow_bus_matches_model() {
    let mut cfg = SystemConfig::default();
    cfg.network.bus_width_bits = 32; // 4 bus cycles per flit
    sweep(&cfg);
}

#[test]
fn slow_routers_match_model() {
    let mut cfg = SystemConfig::default();
    cfg.network.router_latency = 2;
    sweep(&cfg);
}

#[test]
fn four_layer_stack_matches_model() {
    sweep(&SystemConfig::default().with_layers(4));
}

#[test]
fn eight_layer_stack_matches_model() {
    sweep(&SystemConfig::default().with_layers(8));
}

#[test]
fn alternate_placements_match_model() {
    for placement in [PillarPlacement::Corners, PillarPlacement::Diagonal] {
        sweep(&SystemConfig::default().with_pillar_placement(placement));
    }
}

#[test]
fn few_pillars_match_model() {
    sweep(&SystemConfig::default().with_pillars(2));
}

#[test]
fn single_layer_chip_matches_model() {
    sweep(&SystemConfig::default().flattened());
}
