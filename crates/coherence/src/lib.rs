//! Distributed directory-based MSI coherence for private L1 caches.
//!
//! The protocol's functional core: the directory decides which L1s may
//! hold which lines and which invalidation/flush messages each access
//! generates. The system driver (`nim-core`) turns those decisions into
//! packets on the on-chip network so coherence traffic contends with
//! regular L2 traffic, as in the paper (§5.1).
//!
//! # Examples
//!
//! ```
//! use nim_coherence::{DirAccess, Directory, WritePolicy};
//! use nim_types::{CpuId, LineAddr};
//!
//! let mut dir = Directory::new(8, WritePolicy::WriteThrough);
//! dir.access(CpuId(0), LineAddr(0x40), DirAccess::Read);
//! dir.access(CpuId(1), LineAddr(0x40), DirAccess::Read);
//! let out = dir.access(CpuId(0), LineAddr(0x40), DirAccess::Write);
//! assert_eq!(out.invalidations, vec![CpuId(1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directory;

pub use directory::{CoherenceOutcome, DirAccess, Directory, LineState, Protocol, WritePolicy};
