//! Memory-reference trace vocabulary.
//!
//! The workload generator (`nim-workload`) produces [`TraceOp`]s and the
//! core model (`nim-cpu`) consumes them; both sides speak through these
//! small shared types.

use crate::addr::Address;

/// The kind of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store (write-through to L2 in the paper's configuration).
    Write,
    /// Instruction fetch.
    IFetch,
}

/// One memory reference, preceded by a burst of non-memory instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions executed before this reference (one per
    /// cycle on the paper's single-issue cores).
    pub gap: u32,
    /// Access kind.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: Address,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_op_is_plain_data() {
        let op = TraceOp {
            gap: 3,
            kind: AccessKind::Write,
            addr: Address(0x100),
        };
        let copy = op;
        assert_eq!(op, copy);
        assert_ne!(
            TraceOp {
                kind: AccessKind::Read,
                ..op
            },
            op
        );
    }
}
