//! Source-file size guard.
//!
//! The original `system.rs` grew into a 1700-line god-object before it
//! was split into the engine/policy/fabric layering; this test keeps
//! that from happening again. No source file under `crates/*/src` or
//! `src/` may exceed [`LIMIT`] lines. Files already over the limit when
//! the guard landed are pinned in [`ALLOWLIST`] with their size at that
//! time — an allowlisted file may shrink (tighten the pin when it
//! does), but it may never grow.

use std::fs;
use std::path::{Path, PathBuf};

/// Maximum lines for any Rust source file in the workspace.
const LIMIT: usize = 1200;

/// Files over [`LIMIT`] when the guard landed, pinned at that size.
/// Entries may only shrink or disappear; never raise a pin.
const ALLOWLIST: &[(&str, usize)] = &[];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_source_file_outgrows_the_limit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root.join("src"), &mut sources);
    let Ok(crates) = fs::read_dir(root.join("crates")) else {
        panic!("crates/ directory missing");
    };
    for krate in crates.flatten() {
        rust_sources(&krate.path().join("src"), &mut sources);
    }
    assert!(!sources.is_empty(), "guard found no source files");

    let mut violations = Vec::new();
    for path in &sources {
        let text = fs::read_to_string(path).expect("source file is readable");
        let lines = text.lines().count();
        let rel = path
            .strip_prefix(root)
            .expect("source lives under the workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        let cap = ALLOWLIST
            .iter()
            .find(|(name, _)| *name == rel)
            .map_or(LIMIT, |(_, pinned)| *pinned);
        if lines > cap {
            violations.push(format!(
                "{rel}: {lines} lines (cap {cap}) — split it; see crates/core's \
                 engine/policy/fabric layering for the pattern"
            ));
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));

    // Stale pins are errors too: once a file shrinks under the global
    // limit (or is deleted), its allowlist entry must go.
    for (name, pinned) in ALLOWLIST {
        assert!(
            *pinned > LIMIT,
            "{name} is pinned at {pinned}, inside the global limit — drop the entry"
        );
        let path = root.join(name);
        let lines = fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("allowlisted file {name} no longer exists — drop the entry"))
            .lines()
            .count();
        assert_eq!(
            lines, *pinned,
            "{name} shrank to {lines} lines — tighten its pin (it may only shrink)"
        );
    }
}
