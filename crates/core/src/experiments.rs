//! One driver per table and figure of the paper's evaluation (§5.2).
//!
//! Each function reproduces the data behind one exhibit:
//!
//! | Exhibit | Function | Metric |
//! |---|---|---|
//! | Table 3 | [`table3_thermal`] | peak/avg/min temperature per placement |
//! | Fig. 13 | [`fig13_l2_latency`] | avg L2 hit latency, 4 schemes |
//! | Fig. 14 | [`fig14_migrations`] | block migrations normalised to CMP-DNUCA-2D |
//! | Fig. 15 | [`fig15_ipc`] | IPC, 4 schemes |
//! | Fig. 16 | [`fig16_cache_size`] | latency at 16/32/64 MB, 2D vs 3D |
//! | Fig. 17 | [`fig17_pillars`] | latency vs pillar count (8/4/2) |
//! | Fig. 18 | [`fig18_layers`] | latency vs layer count (2/4) |
//! | — | [`latency_breakdown`] | per-phase latency decomposition, 4 schemes |
//!
//! The last exhibit has no counterpart in the paper: it decomposes the
//! Fig. 13 means into the five attribution phases recorded by the
//! engine's per-transaction timelines.
//!
//! Tables 1 and 2 are pure models, regenerated directly by
//! [`nim_power::table1`] and [`nim_power::table2_row`].
//!
//! The paper samples 2 G cycles per run; these drivers scale the sample
//! down (configurable via [`ExperimentScale`]) — ample for steady-state
//! latency statistics of a memory system this size, and the Fig. 14
//! metric is normalised so absolute volume cancels.

use core::error::Error;
use core::fmt;

use nim_thermal::{ThermalConfig, ThermalModel};
use nim_topology::{ChipLayout, Floorplan, PlacementPolicy, ShardPlan};
use nim_types::{PillarPlacement, SystemConfig};
use nim_workload::BenchmarkProfile;

use crate::builder::SystemBuilder;
use crate::error::{BuildError, RunError, SnapshotError};
use crate::fabric::FabricKind;
use crate::parallel::par_map;
use crate::report::RunReport;
use crate::scheme::Scheme;

/// Error from an experiment driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// A system failed to build.
    Build(BuildError),
    /// A run failed.
    Run(RunError),
    /// A warmup-fork image failed to capture or restore.
    Snapshot(SnapshotError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Build(e) => write!(f, "build: {e}"),
            ExperimentError::Run(e) => write!(f, "run: {e}"),
            ExperimentError::Snapshot(e) => write!(f, "warmup fork: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Build(e) => Some(e),
            ExperimentError::Run(e) => Some(e),
            ExperimentError::Snapshot(e) => Some(e),
        }
    }
}

impl From<BuildError> for ExperimentError {
    fn from(e: BuildError) -> Self {
        ExperimentError::Build(e)
    }
}

impl From<RunError> for ExperimentError {
    fn from(e: RunError) -> Self {
        ExperimentError::Run(e)
    }
}

impl From<SnapshotError> for ExperimentError {
    fn from(e: SnapshotError) -> Self {
        ExperimentError::Snapshot(e)
    }
}

/// How much to sample per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Workload seed.
    pub seed: u64,
    /// Transactions completed before measurement.
    pub warmup: u64,
    /// Transactions measured.
    pub sample: u64,
}

impl Default for ExperimentScale {
    /// The scale used by the shipped EXPERIMENTS.md numbers.
    fn default() -> Self {
        Self {
            seed: 42,
            warmup: 2_000,
            sample: 20_000,
        }
    }
}

impl ExperimentScale {
    /// A fast scale for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            seed: 42,
            warmup: 200,
            sample: 1_500,
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel sweep cell — every driver fans out through this.
// ---------------------------------------------------------------------------

/// One independent simulation cell of a sweep: a scheme, a benchmark, and
/// optional configuration overrides. Cells are `Copy` descriptions — the
/// system itself is built (and dropped) inside the worker that claims the
/// cell, so nothing crosses threads but the spec and its [`RunReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Scheme to simulate.
    pub scheme: Scheme,
    /// Index into the benchmark slice handed to [`run_cells`].
    pub benchmark: usize,
    /// Device-layer override (3D schemes only).
    pub layers: Option<u8>,
    /// Vertical-pillar-count override.
    pub pillars: Option<u16>,
    /// Power-of-two L2 capacity scale override (Fig. 16).
    pub l2_scale: Option<u32>,
}

impl SweepSpec {
    /// A cell with the paper's default configuration.
    pub fn new(scheme: Scheme, benchmark: usize) -> Self {
        Self {
            scheme,
            benchmark,
            layers: None,
            pillars: None,
            l2_scale: None,
        }
    }

    /// Overrides the device-layer count.
    pub fn layers(mut self, layers: u8) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Overrides the pillar count.
    pub fn pillars(mut self, pillars: u16) -> Self {
        self.pillars = Some(pillars);
        self
    }

    /// Overrides the L2 capacity scale factor.
    pub fn l2_scale(mut self, factor: u32) -> Self {
        self.l2_scale = Some(factor);
        self
    }

    /// The builder for this cell's system.
    fn builder(&self, scale: ExperimentScale) -> SystemBuilder {
        let mut b = SystemBuilder::new(self.scheme)
            .seed(scale.seed)
            .warmup_transactions(scale.warmup)
            .sampled_transactions(scale.sample);
        if let Some(l) = self.layers {
            b = b.layers(l);
        }
        if let Some(p) = self.pillars {
            b = b.pillars(p);
        }
        if let Some(f) = self.l2_scale {
            b = b.l2_scale(f);
        }
        b
    }

    fn run(
        &self,
        benchmarks: &[BenchmarkProfile],
        scale: ExperimentScale,
    ) -> Result<RunReport, ExperimentError> {
        let mut system = self.builder(scale).build()?;
        Ok(system.run(&benchmarks[self.benchmark])?)
    }

    /// Simulates this cell's warmup once and snapshots at the boundary:
    /// the shared image every duplicate cell forks from.
    fn warmup_image(
        &self,
        benchmarks: &[BenchmarkProfile],
        scale: ExperimentScale,
    ) -> Result<Vec<u8>, ExperimentError> {
        let mut system = self.builder(scale).build()?;
        let mut gen = system.begin(&benchmarks[self.benchmark]);
        match system.run_until(&mut gen, scale.warmup)? {
            None => Ok(system.snapshot(&gen)?),
            Some(_) => unreachable!("warmup stop is below the sampling target"),
        }
    }
}

/// Runs every cell across [`crate::parallel::configured_jobs`] worker
/// threads and returns the per-cell outcomes **in cell order** — the
/// ordering (and, because each cell is a seeded, self-contained
/// simulation, every value) is bit-identical to running the cells
/// sequentially, for any thread count.
///
/// Cells with *identical* specs replay the exact same warmup
/// trajectory, so they are warmup-forked: one leader per duplicate
/// group simulates warmup once, snapshots at the boundary
/// ([`crate::System::snapshot`]), and every member resumes from the
/// shared image — bit-identical to a cold start by the
/// snapshot-equivalence invariant, while paying for warmup once per
/// group instead of once per cell.
pub fn run_cells_raw(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
    specs: &[SweepSpec],
) -> Vec<Result<RunReport, ExperimentError>> {
    // Group duplicates under their first occurrence.
    let leader_of: Vec<usize> = specs
        .iter()
        .map(|spec| specs.iter().position(|s| s == spec).expect("self"))
        .collect();
    let mut group_size = vec![0usize; specs.len()];
    for &l in &leader_of {
        group_size[l] += 1;
    }
    // Forking needs a warmup phase to share and a sampling phase to
    // diverge into; otherwise every cell just runs cold.
    let forkable = scale.warmup > 0 && scale.sample > 0;
    let leaders: Vec<usize> = (0..specs.len())
        .filter(|&i| forkable && leader_of[i] == i && group_size[i] > 1)
        .collect();
    let images: Vec<Result<Vec<u8>, ExperimentError>> =
        par_map(&leaders, |_, &i| specs[i].warmup_image(benchmarks, scale));
    let image_of: std::collections::HashMap<usize, &Result<Vec<u8>, ExperimentError>> =
        leaders.iter().copied().zip(images.iter()).collect();
    par_map(specs, |i, spec| match image_of.get(&leader_of[i]) {
        Some(Ok(image)) => {
            let mut resumed = SystemBuilder::resume_from(image, None)?;
            Ok(resumed.finish()?)
        }
        Some(Err(e)) => Err(e.clone()),
        None => spec.run(benchmarks, scale),
    })
}

/// Like [`run_cells_raw`], but fails with the first (in cell order)
/// error — the same error a sequential runner would have stopped at.
///
/// # Errors
///
/// Returns the first cell's [`ExperimentError`] in cell order.
pub fn run_cells(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
    specs: &[SweepSpec],
) -> Result<Vec<RunReport>, ExperimentError> {
    run_cells_raw(benchmarks, scale, specs)
        .into_iter()
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 13 / Figure 15 — four schemes over the benchmarks.
// ---------------------------------------------------------------------------

/// One benchmark's results across all four schemes.
#[derive(Clone, Debug)]
pub struct SchemeComparisonRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Reports in [`Scheme::ALL`] order.
    pub reports: Vec<RunReport>,
}

impl SchemeComparisonRow {
    /// The report for one scheme.
    pub fn report(&self, scheme: Scheme) -> &RunReport {
        self.reports
            .iter()
            .find(|r| r.scheme == scheme)
            .expect("all schemes present")
    }
}

/// Figure 13: average L2 hit latency under the four schemes.
pub fn fig13_l2_latency(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<SchemeComparisonRow>, ExperimentError> {
    let specs: Vec<SweepSpec> = (0..benchmarks.len())
        .flat_map(|bi| Scheme::ALL.iter().map(move |&s| SweepSpec::new(s, bi)))
        .collect();
    let mut reports = run_cells(benchmarks, scale, &specs)?.into_iter();
    Ok(benchmarks
        .iter()
        .map(|bench| SchemeComparisonRow {
            benchmark: bench.name.to_string(),
            reports: reports.by_ref().take(Scheme::ALL.len()).collect(),
        })
        .collect())
}

/// Figure 15 reuses the same runs as Figure 13 (IPC is read from the same
/// reports), so it shares the row type and driver.
pub fn fig15_ipc(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<SchemeComparisonRow>, ExperimentError> {
    fig13_l2_latency(benchmarks, scale)
}

// ---------------------------------------------------------------------------
// Latency breakdown — the attribution figure the paper lacks.
// ---------------------------------------------------------------------------

/// One scheme's per-transaction latency decomposition on one benchmark.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Mean cycles per transaction in each attribution phase, in
    /// [`Phase::ALL`](crate::txn::Phase::ALL) order.
    pub phases: [f64; 5],
}

impl BreakdownRow {
    /// Mean end-to-end transaction latency — exactly the sum of the
    /// five phase means, by the attribution sum invariant.
    pub fn total(&self) -> f64 {
        self.phases.iter().sum()
    }
}

/// The latency-breakdown exhibit: where each scheme's transaction
/// cycles actually go — horizontal NoC hops, dTDMA pillar waits,
/// tag/bank serialization, L2 service, or off-chip memory. The paper
/// reports only end-to-end means (Fig. 13); this decomposes them, per
/// scheme per benchmark, using the engine's per-transaction timelines.
///
/// Rows are grouped per benchmark, [`Scheme::ALL`] order within each.
///
/// # Errors
///
/// Returns the first cell's [`ExperimentError`] in cell order.
pub fn latency_breakdown(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<BreakdownRow>, ExperimentError> {
    let specs: Vec<SweepSpec> = (0..benchmarks.len())
        .flat_map(|bi| Scheme::ALL.iter().map(move |&s| SweepSpec::new(s, bi)))
        .collect();
    let reports = run_cells(benchmarks, scale, &specs)?;
    Ok(specs
        .iter()
        .zip(&reports)
        .map(|(spec, report)| BreakdownRow {
            benchmark: benchmarks[spec.benchmark].name.to_string(),
            scheme: spec.scheme,
            phases: report.latency_breakdown(),
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Figure 14 — migrations normalised to CMP-DNUCA-2D.
// ---------------------------------------------------------------------------

/// One benchmark's migration volume, normalised to CMP-DNUCA-2D = 1.0.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Benchmark name.
    pub benchmark: String,
    /// CMP-DNUCA (baseline, edge CPUs) relative migrations.
    pub cmp_dnuca: f64,
    /// CMP-DNUCA-3D relative migrations.
    pub cmp_dnuca_3d: f64,
}

/// Figure 14: block migrations of CMP-DNUCA and CMP-DNUCA-3D, normalised
/// to CMP-DNUCA-2D.
pub fn fig14_migrations(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<Fig14Row>, ExperimentError> {
    const SCHEMES: [Scheme; 3] = [Scheme::CmpDnuca2d, Scheme::CmpDnuca, Scheme::CmpDnuca3d];
    let specs: Vec<SweepSpec> = (0..benchmarks.len())
        .flat_map(|bi| SCHEMES.iter().map(move |&s| SweepSpec::new(s, bi)))
        .collect();
    let reports = run_cells(benchmarks, scale, &specs)?;
    Ok(benchmarks
        .iter()
        .zip(reports.chunks_exact(SCHEMES.len()))
        .map(|(bench, chunk)| {
            let [base, dnuca, d3] = chunk else {
                unreachable!("chunks_exact yields {} reports", SCHEMES.len())
            };
            let denom = base.counters.migrations.max(1) as f64;
            Fig14Row {
                benchmark: bench.name.to_string(),
                cmp_dnuca: dnuca.counters.migrations as f64 / denom,
                cmp_dnuca_3d: d3.counters.migrations as f64 / denom,
            }
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Figure 16 — L2 capacity scaling.
// ---------------------------------------------------------------------------

/// Latency of one (benchmark, capacity) cell for 2D and 3D DNUCA.
#[derive(Clone, Debug)]
pub struct Fig16Row {
    /// Benchmark name.
    pub benchmark: String,
    /// L2 capacity in MB.
    pub l2_mb: u32,
    /// CMP-DNUCA-2D average hit latency.
    pub latency_2d: f64,
    /// CMP-DNUCA-3D average hit latency.
    pub latency_3d: f64,
}

/// Figure 16: average L2 hit latency at 16, 32, and 64 MB.
pub fn fig16_cache_size(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<Fig16Row>, ExperimentError> {
    const FACTORS: [u32; 3] = [1, 2, 4];
    let mut specs = Vec::new();
    for bi in 0..benchmarks.len() {
        for factor in FACTORS {
            specs.push(SweepSpec::new(Scheme::CmpDnuca2d, bi).l2_scale(factor));
            specs.push(SweepSpec::new(Scheme::CmpDnuca3d, bi).l2_scale(factor));
        }
    }
    let reports = run_cells(benchmarks, scale, &specs)?;
    let mut rows = Vec::with_capacity(benchmarks.len() * FACTORS.len());
    for (i, pair) in reports.chunks_exact(2).enumerate() {
        let bench = &benchmarks[i / FACTORS.len()];
        let factor = FACTORS[i % FACTORS.len()];
        rows.push(Fig16Row {
            benchmark: bench.name.to_string(),
            l2_mb: 16 * factor,
            latency_2d: pair[0].avg_l2_hit_latency(),
            latency_3d: pair[1].avg_l2_hit_latency(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 17 — pillar count.
// ---------------------------------------------------------------------------

/// Latency of one (benchmark, pillar count) cell.
#[derive(Clone, Debug)]
pub struct Fig17Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of vertical pillars.
    pub pillars: u16,
    /// CMP-DNUCA-3D average hit latency.
    pub latency: f64,
}

/// Figure 17: impact of the number of pillars (8/4/2) on the
/// CMP-DNUCA-3D scheme. Fewer pillars mean shared vertical links and
/// Algorithm 1 placement.
pub fn fig17_pillars(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<Fig17Row>, ExperimentError> {
    const PILLARS: [u16; 3] = [8, 4, 2];
    let specs: Vec<SweepSpec> = (0..benchmarks.len())
        .flat_map(|bi| {
            PILLARS
                .iter()
                .map(move |&p| SweepSpec::new(Scheme::CmpDnuca3d, bi).pillars(p))
        })
        .collect();
    let reports = run_cells(benchmarks, scale, &specs)?;
    Ok(specs
        .iter()
        .zip(&reports)
        .map(|(spec, report)| Fig17Row {
            benchmark: benchmarks[spec.benchmark].name.to_string(),
            pillars: spec.pillars.expect("every fig17 cell sets pillars"),
            latency: report.avg_l2_hit_latency(),
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Figure 18 — layer count.
// ---------------------------------------------------------------------------

/// Latency of one (benchmark, layer count) cell.
#[derive(Clone, Debug)]
pub struct Fig18Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Device layers.
    pub layers: u8,
    /// CMP-SNUCA-3D average hit latency.
    pub latency: f64,
}

/// Figure 18: impact of the number of layers (2/4) on the CMP-SNUCA-3D
/// scheme.
pub fn fig18_layers(
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
) -> Result<Vec<Fig18Row>, ExperimentError> {
    const LAYERS: [u8; 2] = [2, 4];
    let specs: Vec<SweepSpec> = (0..benchmarks.len())
        .flat_map(|bi| {
            LAYERS
                .iter()
                .map(move |&l| SweepSpec::new(Scheme::CmpSnuca3d, bi).layers(l))
        })
        .collect();
    let reports = run_cells(benchmarks, scale, &specs)?;
    Ok(specs
        .iter()
        .zip(&reports)
        .map(|(spec, report)| Fig18Row {
            benchmark: benchmarks[spec.benchmark].name.to_string(),
            layers: spec.layers.expect("every fig18 cell sets layers"),
            latency: report.avg_l2_hit_latency(),
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Configuration sweep — the full (layers × pillars) design space.
// ---------------------------------------------------------------------------

/// One cell of a design-space sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Device layers.
    pub layers: u8,
    /// Vertical pillars.
    pub pillars: u16,
    /// The run's full report.
    pub report: RunReport,
}

/// Sweeps the (layers × pillars) design space for one scheme and
/// benchmark, skipping combinations the configuration rules reject
/// (e.g. more CPUs than Algorithm 1 can seat). This generalises the
/// paper's Figures 17 and 18 into the full grid a designer would explore.
pub fn sweep_design_space(
    scheme: Scheme,
    bench: &BenchmarkProfile,
    layers: &[u8],
    pillars: &[u16],
    scale: ExperimentScale,
) -> Result<Vec<SweepCell>, ExperimentError> {
    let benchmarks = std::slice::from_ref(bench);
    let specs: Vec<SweepSpec> = layers
        .iter()
        .flat_map(|&l| {
            pillars
                .iter()
                .map(move |&p| SweepSpec::new(scheme, 0).layers(l).pillars(p))
        })
        .collect();
    let mut cells = Vec::new();
    for (spec, result) in specs.iter().zip(run_cells_raw(benchmarks, scale, &specs)) {
        match result {
            Ok(report) => cells.push(SweepCell {
                layers: spec.layers.expect("every sweep cell sets layers"),
                pillars: spec.pillars.expect("every sweep cell sets pillars"),
                report,
            }),
            Err(ExperimentError::Build(_)) => continue, // unbuildable cell
            Err(e) => return Err(e),
        }
    }
    Ok(cells)
}

// ---------------------------------------------------------------------------
// Scale sweep — simulator behavior and throughput across the
// (layers × CPUs × L2 banks × pillar placement × fabric × shards) grid.
// ---------------------------------------------------------------------------

/// One cell description of a [`scale_sweep`]: a full topology + substrate
/// selection. Cells are `Copy` specs; the system is built inside the
/// worker that claims the cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Device layers.
    pub layers: u8,
    /// CPUs seated on the chip.
    pub cpus: u32,
    /// Power-of-two L2 capacity factor (scales banks per cluster).
    pub l2_scale: u32,
    /// Pillar placement strategy.
    pub placement: PillarPlacement,
    /// Interconnect substrate.
    pub fabric: FabricKind,
    /// Network shard count (must divide `layers`).
    pub shards: usize,
}

impl ScaleSpec {
    /// The paper's default cell: 2 layers, 8 CPUs, 16 MB L2, spread
    /// pillars, the cycle-accurate fabric, sequential execution.
    pub fn new() -> Self {
        Self {
            layers: 2,
            cpus: 8,
            l2_scale: 1,
            placement: PillarPlacement::Spread,
            fabric: FabricKind::Sim,
            shards: 1,
        }
    }

    /// Stable single-line label for sweep tables and CI logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "layers={} cpus={} l2x{} {} {} shards={}",
            self.layers,
            self.cpus,
            self.l2_scale,
            self.placement.name(),
            self.fabric.name(),
            self.shards
        )
    }

    /// The same cell with the shard count erased — cells that agree on
    /// this key must produce bit-identical reports for any shard count.
    #[must_use]
    pub fn shard_invariant_key(&self) -> Self {
        Self { shards: 1, ..*self }
    }
}

impl Default for ScaleSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// One completed cell of a [`scale_sweep`].
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// The cell's spec.
    pub spec: ScaleSpec,
    /// Wall-clock seconds the run took inside its worker.
    pub wall_secs: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// [`RunReport::fingerprint`] — the determinism/equivalence gate.
    pub fingerprint: u64,
    /// The run's full report.
    pub report: RunReport,
}

/// Runs one simulation per buildable spec across the configured worker
/// threads, in spec order. Unbuildable cells (a topology the
/// configuration rules reject, or a shard count that does not divide
/// the cell's cluster-row count) come back as `None` so a sweep over a
/// coarse grid degrades gracefully; run failures abort the sweep.
///
/// # Errors
///
/// Returns the first cell's [`ExperimentError::Run`] in cell order.
pub fn scale_sweep(
    scheme: Scheme,
    bench: &BenchmarkProfile,
    specs: &[ScaleSpec],
    scale: ExperimentScale,
) -> Result<Vec<Option<ScaleCell>>, ExperimentError> {
    par_map(specs, |_, spec| {
        if spec.shards > 1 {
            let mut cfg = SystemConfig::default();
            cfg.network.layers = spec.layers;
            cfg.network.pillar_placement = spec.placement;
            match ChipLayout::new(&cfg) {
                Ok(layout) if ShardPlan::valid_counts(&layout).contains(&spec.shards) => {}
                // A valid topology that cannot honour the count: skip
                // the cell rather than silently clamping the request.
                Ok(_) => return Ok(None),
                // Unbuildable topology: let build() reject it below.
                Err(_) => {}
            }
        }
        let built = SystemBuilder::new(scheme)
            .layers(spec.layers)
            .cpus(spec.cpus)
            .l2_scale(spec.l2_scale)
            .pillar_placement(spec.placement)
            .fabric(spec.fabric)
            .shards(spec.shards)
            .seed(scale.seed)
            .warmup_transactions(scale.warmup)
            .sampled_transactions(scale.sample)
            .build();
        let mut system = match built {
            Ok(system) => system,
            Err(_) => return Ok(None),
        };
        let start = std::time::Instant::now();
        let report = system.run(bench).map_err(ExperimentError::from)?;
        let wall_secs = start.elapsed().as_secs_f64();
        Ok(Some(ScaleCell {
            spec: *spec,
            wall_secs,
            cycles_per_sec: if wall_secs > 0.0 {
                report.cycles as f64 / wall_secs
            } else {
                0.0
            },
            fingerprint: report.fingerprint(),
            report,
        }))
    })
    .into_iter()
    .collect()
}

/// Checks the sharding invariant over a completed sweep: cells that
/// differ only in shard count must have identical fingerprints. Returns
/// the offending pair of labels on violation.
///
/// # Errors
///
/// Returns `(label_a, label_b)` of the first disagreeing pair.
pub fn check_shard_invariance(cells: &[ScaleCell]) -> Result<(), (String, String)> {
    for (i, a) in cells.iter().enumerate() {
        for b in &cells[i + 1..] {
            if a.spec.shard_invariant_key() == b.spec.shard_invariant_key()
                && a.fingerprint != b.fingerprint
            {
                return Err((a.spec.label(), b.spec.label()));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Table 3 — thermal profile of the placement configurations.
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Configuration label (as in the paper).
    pub config: &'static str,
    /// Peak temperature, °C.
    pub peak_c: f64,
    /// Average temperature, °C.
    pub avg_c: f64,
    /// Minimum temperature, °C.
    pub min_c: f64,
}

/// Table 3: temperature profile of the seven placement configurations
/// (8 × 8 W CPUs among 256 clock-gated banks).
///
/// The `k = 1` / `k = 2` rows share pillars (4 pillars, Algorithm 1);
/// the "optimal offset" rows give every CPU its own pillar and offset in
/// all three dimensions; the "stacking" rows align CPUs vertically.
///
/// # Errors
///
/// Returns [`ExperimentError::Build`] if a configuration cannot be
/// placed (cannot happen for the shipped rows).
pub fn table3_thermal() -> Result<Vec<Table3Row>, ExperimentError> {
    let rows: [(&'static str, u8, u16, PlacementPolicy); 7] = [
        ("2D, maximal offset", 1, 8, PlacementPolicy::Interior2d),
        (
            "3D-2L, optimal offset",
            2,
            8,
            PlacementPolicy::MaximalOffset,
        ),
        (
            "3D-2L, offset k=2",
            2,
            4,
            PlacementPolicy::Algorithm1 { k: 2 },
        ),
        (
            "3D-2L, offset k=1",
            2,
            4,
            PlacementPolicy::Algorithm1 { k: 1 },
        ),
        ("3D-2L, CPU stacking", 2, 8, PlacementPolicy::Stacked),
        (
            "3D-4L, optimal offset",
            4,
            8,
            PlacementPolicy::MaximalOffset,
        ),
        ("3D-4L, CPU stacking", 4, 8, PlacementPolicy::Stacked),
    ];
    let tcfg = ThermalConfig::default();
    par_map(&rows, |_, &(label, layers, pillars, policy)| {
        let cfg = SystemConfig::default()
            .with_layers(layers)
            .with_pillars(pillars);
        let layout = ChipLayout::new(&cfg).map_err(BuildError::from)?;
        let seats = policy
            .place(&layout, cfg.num_cpus)
            .map_err(BuildError::from)?;
        let plan = Floorplan::new(&layout, &seats);
        let profile = ThermalModel::new(&plan, &tcfg).solve(&tcfg);
        Ok(Table3Row {
            config: label,
            peak_c: profile.peak(),
            avg_c: profile.avg(),
            min_c: profile.min(),
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweep_skips_bad_cells_and_holds_the_shard_invariant() {
        let bench = BenchmarkProfile::art();
        let scale = ExperimentScale {
            seed: 42,
            warmup: 50,
            sample: 400,
        };
        let mk = |layers, fabric, shards| ScaleSpec {
            layers,
            fabric,
            shards,
            ..ScaleSpec::new()
        };
        let specs = [
            mk(2, FabricKind::Sim, 1),
            mk(2, FabricKind::Sim, 2),
            mk(2, FabricKind::Sim, 4), // cluster-row cut, finer than layers
            mk(2, FabricKind::Sim, 3), // 3 does not divide the 4 cluster rows
            mk(4, FabricKind::LatencyTable, 1),
            mk(4, FabricKind::Ideal, 1),
            mk(16, FabricKind::Sim, 1), // rejected by config validation
        ];
        let cells = scale_sweep(Scheme::CmpDnuca3d, &bench, &specs, scale).expect("sweep runs");
        assert_eq!(cells.len(), specs.len());
        assert!(cells[0].is_some() && cells[1].is_some() && cells[2].is_some());
        assert!(cells[3].is_none(), "non-divisor shard count is skipped");
        assert!(cells[4].is_some() && cells[5].is_some());
        assert!(cells[6].is_none(), "unbuildable topology is skipped");
        let done: Vec<ScaleCell> = cells.into_iter().flatten().collect();
        for c in &done {
            assert!(
                c.report.counters.l2_transactions == 400,
                "{}",
                c.spec.label()
            );
            assert!(c.cycles_per_sec > 0.0, "{}", c.spec.label());
        }
        // Cells 0-2 differ only in shard count: bit-identical.
        assert_eq!(done[0].fingerprint, done[1].fingerprint);
        assert_eq!(done[0].fingerprint, done[2].fingerprint);
        check_shard_invariance(&done).expect("sharding is invisible");
    }

    #[test]
    fn table3_reproduces_the_paper_ordering() {
        let rows = table3_thermal().expect("all configurations place");
        for r in &rows {
            eprintln!(
                "{:26} peak {:7.2}  avg {:6.2}  min {:6.2}",
                r.config, r.peak_c, r.avg_c, r.min_c
            );
        }
        let by = |label: &str| {
            rows.iter()
                .find(|r| r.config == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let d2 = by("2D, maximal offset");
        let opt2 = by("3D-2L, optimal offset");
        let k2 = by("3D-2L, offset k=2");
        let k1 = by("3D-2L, offset k=1");
        let st2 = by("3D-2L, CPU stacking");
        let opt4 = by("3D-4L, optimal offset");
        let st4 = by("3D-4L, CPU stacking");
        // Peak ordering (Table 3).
        assert!(d2.peak_c < opt2.peak_c, "3D runs hotter than 2D");
        assert!(
            opt2.peak_c <= k2.peak_c,
            "shared pillars no cooler than optimal"
        );
        assert!(k2.peak_c <= k1.peak_c, "larger offset reduces the peak");
        assert!(k1.peak_c < st2.peak_c, "stacking creates hotspots");
        assert!(opt4.peak_c < st4.peak_c, "stacking is worst at 4 layers");
        assert!(opt2.peak_c < opt4.peak_c, "more layers run hotter");
        // Average depends only on layer count (same power, same footprint).
        assert!((opt2.avg_c - st2.avg_c).abs() < 1.0);
        assert!(d2.avg_c < opt2.avg_c && opt2.avg_c < opt4.avg_c);
        // Minimum below average below peak, everywhere.
        for r in &rows {
            assert!(r.min_c < r.avg_c && r.avg_c < r.peak_c, "{}", r.config);
        }
    }
}
