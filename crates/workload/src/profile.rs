//! SPEC OMP benchmark profiles (paper Table 5).
//!
//! The paper drives its evaluation with nine SPEC OMP 2001 benchmarks
//! running under Simics. We cannot re-run Simics, so each benchmark is
//! characterised by a *statistical profile* — memory-operation density,
//! store share, streaming-vs-resident access mix, sharing degree, and
//! working-set sizes — chosen so the resulting synthetic reference
//! streams reproduce the property the figures depend on: mgrid, swim,
//! and wupwise produce far more L2 transactions (high L1 miss rates)
//! than the other six. The Table 5 fast-forward and transaction counts
//! are carried verbatim for documentation and sanity tests.

/// Statistical profile of one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as in Table 5.
    pub name: &'static str,
    /// Fast-forward length from Table 5 (million cycles) — documentation.
    pub fastforward_mcycles: u64,
    /// L2 transactions the paper sampled in 2 G cycles (Table 5).
    pub paper_l2_transactions: u64,
    /// Probability that an instruction is a data memory operation.
    pub mem_per_instr: f64,
    /// Fraction of data memory operations that are stores (write-through:
    /// every store becomes an L2 transaction).
    pub store_frac: f64,
    /// Probability that an instruction slot is an instruction-fetch
    /// reference (models I-cache pressure; code mostly fits in L1I).
    pub ifetch_frac: f64,
    /// Fraction of data references that *stream* through a large array
    /// (sequential 8 B stride: compulsory L1 miss every 8th access).
    pub streaming_frac: f64,
    /// Fraction of data references that touch the shared region.
    pub shared_frac: f64,
    /// Probability that a shared reference revisits the thread's current
    /// (L1-resident) line instead of advancing the walk — high for codes
    /// whose inner loops re-touch operands (low L1 miss rate), near zero
    /// for single-pass streaming solvers like swim/mgrid.
    pub shared_reuse: f64,
    /// Per-CPU hot working set (cache lines; sized to fit in L1).
    pub hot_lines: u32,
    /// Per-CPU streaming footprint (cache lines).
    pub footprint_lines: u32,
    /// Shared-region size (cache lines).
    pub shared_lines: u32,
    /// Code footprint (cache lines) looped by instruction fetches.
    pub code_lines: u32,
}

impl BenchmarkProfile {
    /// `ammp` — molecular dynamics; few L2 transactions.
    pub fn ammp() -> Self {
        Self {
            name: "ammp",
            fastforward_mcycles: 3_633,
            paper_l2_transactions: 24_508_715,
            mem_per_instr: 0.26,
            store_frac: 0.03,
            ifetch_frac: 0.012,
            streaming_frac: 0.04,
            shared_frac: 0.55,
            shared_reuse: 0.45,
            hot_lines: 448,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 14,
            code_lines: 320,
        }
    }

    /// `apsi` — air pollution model; moderate L2 traffic.
    pub fn apsi() -> Self {
        Self {
            name: "apsi",
            fastforward_mcycles: 4_453,
            paper_l2_transactions: 27_013_447,
            mem_per_instr: 0.28,
            store_frac: 0.04,
            ifetch_frac: 0.012,
            streaming_frac: 0.05,
            shared_frac: 0.55,
            shared_reuse: 0.42,
            hot_lines: 448,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 14,
            code_lines: 384,
        }
    }

    /// `art` — neural-network image recognition; low L1 miss rate.
    pub fn art() -> Self {
        Self {
            name: "art",
            fastforward_mcycles: 3_523,
            paper_l2_transactions: 25_638_435,
            mem_per_instr: 0.3,
            store_frac: 0.03,
            ifetch_frac: 0.01,
            streaming_frac: 0.04,
            shared_frac: 0.58,
            shared_reuse: 0.4,
            hot_lines: 400,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 14,
            code_lines: 192,
        }
    }

    /// `equake` — earthquake wave propagation.
    pub fn equake() -> Self {
        Self {
            name: "equake",
            fastforward_mcycles: 21_538,
            paper_l2_transactions: 27_502_906,
            mem_per_instr: 0.29,
            store_frac: 0.03,
            ifetch_frac: 0.012,
            streaming_frac: 0.05,
            shared_frac: 0.56,
            shared_reuse: 0.42,
            hot_lines: 448,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 14,
            code_lines: 256,
        }
    }

    /// `fma3d` — crash simulation; the fewest L2 transactions.
    pub fn fma3d() -> Self {
        Self {
            name: "fma3d",
            fastforward_mcycles: 18_535,
            paper_l2_transactions: 12_599_496,
            mem_per_instr: 0.24,
            store_frac: 0.03,
            ifetch_frac: 0.015,
            streaming_frac: 0.03,
            shared_frac: 0.55,
            shared_reuse: 0.55,
            hot_lines: 384,
            footprint_lines: 1 << 11,
            shared_lines: 1 << 13,
            code_lines: 448,
        }
    }

    /// `galgel` — fluid dynamics; large resident set, moderate misses.
    pub fn galgel() -> Self {
        Self {
            name: "galgel",
            fastforward_mcycles: 3_665,
            paper_l2_transactions: 38_181_613,
            mem_per_instr: 0.3,
            store_frac: 0.04,
            ifetch_frac: 0.01,
            streaming_frac: 0.05,
            shared_frac: 0.58,
            shared_reuse: 0.38,
            hot_lines: 448,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 14,
            code_lines: 256,
        }
    }

    /// `mgrid` — multigrid solver; the most L2 transactions (heavy
    /// streaming, high L1 miss rate).
    pub fn mgrid() -> Self {
        Self {
            name: "mgrid",
            fastforward_mcycles: 3_533,
            paper_l2_transactions: 204_815_737,
            mem_per_instr: 0.36,
            store_frac: 0.1,
            ifetch_frac: 0.008,
            streaming_frac: 0.05,
            shared_frac: 0.8,
            shared_reuse: 0.05,
            hot_lines: 256,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 15,
            code_lines: 128,
        }
    }

    /// `swim` — shallow-water model; heavy streaming.
    pub fn swim() -> Self {
        Self {
            name: "swim",
            fastforward_mcycles: 4_306,
            paper_l2_transactions: 164_762_040,
            mem_per_instr: 0.35,
            store_frac: 0.1,
            ifetch_frac: 0.008,
            streaming_frac: 0.05,
            shared_frac: 0.78,
            shared_reuse: 0.08,
            hot_lines: 256,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 15,
            code_lines: 128,
        }
    }

    /// `wupwise` — quantum chromodynamics; high L2 traffic.
    pub fn wupwise() -> Self {
        Self {
            name: "wupwise",
            fastforward_mcycles: 18_777,
            paper_l2_transactions: 141_499_738,
            mem_per_instr: 0.33,
            store_frac: 0.09,
            ifetch_frac: 0.009,
            streaming_frac: 0.06,
            shared_frac: 0.72,
            shared_reuse: 0.15,
            hot_lines: 320,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 15,
            code_lines: 192,
        }
    }

    /// All nine benchmarks, in Table 5 order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::ammp(),
            Self::apsi(),
            Self::art(),
            Self::equake(),
            Self::fma3d(),
            Self::galgel(),
            Self::mgrid(),
            Self::swim(),
            Self::wupwise(),
        ]
    }

    /// Looks a profile up by its Table 5 name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// A small, fast synthetic profile for tests and examples.
    pub fn synthetic() -> Self {
        Self {
            name: "synthetic",
            fastforward_mcycles: 0,
            paper_l2_transactions: 0,
            mem_per_instr: 0.4,
            store_frac: 0.15,
            ifetch_frac: 0.01,
            streaming_frac: 0.5,
            shared_frac: 0.25,
            shared_reuse: 0.3,
            hot_lines: 128,
            footprint_lines: 1 << 12,
            shared_lines: 1 << 12,
            code_lines: 64,
        }
    }

    /// Sanity check on the probability parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (what, v) in [
            ("mem_per_instr", self.mem_per_instr),
            ("store_frac", self.store_frac),
            ("ifetch_frac", self.ifetch_frac),
            ("streaming_frac", self.streaming_frac),
            ("shared_frac", self.shared_frac),
            ("shared_reuse", self.shared_reuse),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{what} = {v} outside [0, 1]"));
            }
        }
        if self.mem_per_instr <= 0.0 {
            return Err("mem_per_instr must be positive".into());
        }
        if self.streaming_frac + self.shared_frac > 1.0 {
            return Err("streaming_frac + shared_frac exceed 1".into());
        }
        for (what, v) in [
            ("hot_lines", self.hot_lines),
            ("footprint_lines", self.footprint_lines),
            ("shared_lines", self.shared_lines),
            ("code_lines", self.code_lines),
        ] {
            if v == 0 {
                return Err(format!("{what} must be nonzero"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_is_reproduced_verbatim() {
        let names: Vec<&str> = BenchmarkProfile::all().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["ammp", "apsi", "art", "equake", "fma3d", "galgel", "mgrid", "swim", "wupwise"]
        );
        assert_eq!(BenchmarkProfile::mgrid().paper_l2_transactions, 204_815_737);
        assert_eq!(BenchmarkProfile::fma3d().fastforward_mcycles, 18_535);
        assert_eq!(BenchmarkProfile::equake().fastforward_mcycles, 21_538);
    }

    #[test]
    fn all_profiles_validate() {
        for p in BenchmarkProfile::all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        BenchmarkProfile::synthetic().validate().unwrap();
    }

    #[test]
    fn high_traffic_benchmarks_touch_more_non_resident_data() {
        // The paper's high-L2-traffic trio (mgrid, swim, wupwise) must
        // have the most aggressive L1-defeating profiles — large walked
        // shared arrays and dense memory operations are what create
        // their L1 miss rates and L2 transaction volumes (Table 5).
        let heavy = ["mgrid", "swim", "wupwise"];
        let all = BenchmarkProfile::all();
        let pressure = |p: &BenchmarkProfile| p.mem_per_instr * (p.shared_frac + p.streaming_frac);
        let min_heavy = all
            .iter()
            .filter(|p| heavy.contains(&p.name))
            .map(pressure)
            .fold(f64::INFINITY, f64::min);
        let max_light = all
            .iter()
            .filter(|p| !heavy.contains(&p.name))
            .map(pressure)
            .fold(0.0, f64::max);
        assert!(
            min_heavy > max_light,
            "heavy {min_heavy} must exceed light {max_light}"
        );
    }

    #[test]
    fn by_name_round_trips() {
        for p in BenchmarkProfile::all() {
            assert_eq!(BenchmarkProfile::by_name(p.name), Some(p));
        }
        assert_eq!(BenchmarkProfile::by_name("doom"), None);
    }
}
