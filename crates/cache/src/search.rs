//! The two-step cache-line search policy (paper §4.2.1).
//!
//! Step 1: the processor probes the tag array of its *local* cluster and
//! its laterally neighbouring clusters, and — broadcast through the
//! pillar — every cluster on every *other* layer: "clusters accessible
//! through the vertical pillar communications are considered to be in
//! local vicinity" (paper §4.2.3). The CPU's vicinity is a *disc* in 2D
//! and widens enormously in 3D (Fig. 8) because the single-hop pillar
//! puts whole layers within reach. Step 2: on a step-1 miss, the request
//! is multicast to every remaining cluster (own-layer for the default
//! plans; each probed tag array answers individually either way). A miss
//! everywhere is an L2 miss.

use nim_topology::ChipLayout;
use nim_types::ClusterId;

/// The probe schedule for one CPU: which clusters are searched in each step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchPlan {
    /// The CPU's own cluster (probed through the directly-connected tag
    /// array, no network round trip).
    pub local: ClusterId,
    /// Step 1: local + lateral neighbours + vertical neighbours.
    pub step1: Vec<ClusterId>,
    /// Step 2: every cluster not covered by step 1.
    pub step2: Vec<ClusterId>,
}

impl SearchPlan {
    /// Builds the plan for a CPU living in `cpu_cluster`.
    pub fn new(layout: &ChipLayout, cpu_cluster: ClusterId) -> Self {
        let own_layer = layout.cluster_layer(cpu_cluster);
        // The lateral disc on the CPU's own layer...
        let mut step1 = vec![cpu_cluster];
        step1.extend(layout.lateral_neighbors(cpu_cluster));
        // ...plus everything a single pillar hop reaches: every cluster
        // of every other layer (§4.2.3).
        step1.extend(
            (0..layout.num_clusters())
                .map(ClusterId)
                .filter(|cl| layout.cluster_layer(*cl) != own_layer),
        );
        step1.sort_unstable();
        step1.dedup();
        let step2: Vec<ClusterId> = (0..layout.num_clusters())
            .map(ClusterId)
            .filter(|cl| !step1.contains(cl))
            .collect();
        Self {
            local: cpu_cluster,
            step1,
            step2,
        }
    }

    /// Which step (1 or 2) probes `cluster`; `None` if it is probed by
    /// neither (cannot happen for clusters of the same chip).
    pub fn step_of(&self, cluster: ClusterId) -> Option<u8> {
        if self.step1.contains(&cluster) {
            Some(1)
        } else if self.step2.contains(&cluster) {
            Some(2)
        } else {
            None
        }
    }

    /// Total clusters covered.
    pub fn coverage(&self) -> usize {
        self.step1.len() + self.step2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    #[test]
    fn plan_partitions_all_clusters() {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        for cl in 0..layout.num_clusters() {
            let plan = SearchPlan::new(&layout, ClusterId(cl));
            assert_eq!(plan.coverage(), layout.num_clusters() as usize);
            for c in 0..layout.num_clusters() {
                assert!(plan.step_of(ClusterId(c)).is_some());
            }
            // No overlap.
            for c in &plan.step1 {
                assert!(!plan.step2.contains(c));
            }
        }
    }

    #[test]
    fn step1_contains_local_lateral_and_vertical() {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        let local = layout.cluster_at_grid(0, 1, 1); // interior: 3 lateral? grid is 4x2 so (1,1) has 3 lateral
        let plan = SearchPlan::new(&layout, local);
        assert!(plan.step1.contains(&local));
        for n in layout.lateral_neighbors(local) {
            assert!(plan.step1.contains(&n), "lateral {n} in step 1");
        }
        for v in layout.vertical_neighbors(local) {
            assert!(plan.step1.contains(&v), "vertical {v} in step 1");
        }
        assert_eq!(plan.local, local);
    }

    #[test]
    fn flat_chip_has_no_vertical_probes() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let plan = SearchPlan::new(&layout, ClusterId(5)); // interior of 4x4 grid
                                                           // local + up to 4 lateral, no vertical.
        assert!(plan.step1.len() <= 5);
        for cl in &plan.step1 {
            assert_eq!(layout.cluster_layer(*cl), 0);
        }
    }

    #[test]
    fn step1_covers_the_disc_plus_every_remote_cluster() {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        let local = layout.cluster_at_grid(0, 1, 1);
        let plan = SearchPlan::new(&layout, local);
        let disc = 1 + layout.lateral_neighbors(local).len();
        let remote = layout.num_clusters() as usize - layout.clusters_per_layer() as usize;
        assert_eq!(
            plan.step1.len(),
            disc + remote,
            "own-layer disc + all pillar-reachable clusters (§4.2.3)"
        );
        // Step 2 is entirely on the CPU's own layer.
        for cl in &plan.step2 {
            assert_eq!(layout.cluster_layer(*cl), layout.cluster_layer(local));
        }
    }

    #[test]
    fn four_layer_vicinity_includes_whole_remote_layers() {
        let layout = ChipLayout::new(&SystemConfig::default().with_layers(4)).unwrap();
        let local = layout.cluster_at_grid(1, 0, 0);
        let plan = SearchPlan::new(&layout, local);
        for layer in [0u8, 2, 3] {
            let on_layer = plan
                .step1
                .iter()
                .filter(|cl| layout.cluster_layer(**cl) == layer)
                .count();
            assert_eq!(
                on_layer,
                layout.clusters_per_layer() as usize,
                "every cluster of layer {layer} is one bus hop away"
            );
        }
    }
}
