//! Regenerates a complete paper-vs-measured markdown report — every
//! table and figure — from live simulation runs.
//!
//! ```sh
//! NIM_SCALE=full cargo run --release -p nim-bench --bin report > report.md
//! ```
//!
//! The shipped `EXPERIMENTS.md` was produced from this output at the
//! full scale (plus prose commentary).

use std::error::Error;

use nim_bench::{representative_benchmarks, scale_from_env};
use nim_core::experiments::{
    fig13_l2_latency, fig14_migrations, fig16_cache_size, fig17_pillars, fig18_layers,
    table3_thermal,
};
use nim_core::Scheme;
use nim_power::{pillar_area_vs_router, table1, table2_row, TABLE2_PITCHES_UM};
use nim_workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = scale_from_env(false);
    let all = BenchmarkProfile::all();
    let representative = representative_benchmarks();

    println!("# Network-in-Memory: regenerated evaluation\n");
    println!(
        "_warmup {} / sample {} transactions per run, seed {}_\n",
        scale.warmup, scale.sample, scale.seed
    );

    println!("## Table 1 — dTDMA components (90 nm)\n");
    println!("| Component | Power | Area |");
    println!("|---|---|---|");
    for c in table1() {
        let power = if c.power_w >= 1e-3 {
            format!("{:.2} mW", c.power_w * 1e3)
        } else {
            format!("{:.2} µW", c.power_w * 1e6)
        };
        println!("| {} | {} | {:.8} mm² |", c.name, power, c.area_mm2);
    }

    println!("\n## Table 2 — pillar wiring area vs via pitch\n");
    println!("| Pitch (µm) | Area (µm²) | vs 5-port router |");
    println!("|---|---|---|");
    for pitch in TABLE2_PITCHES_UM {
        println!(
            "| {} | {:.0} | {:.2} % |",
            pitch,
            table2_row(pitch),
            pillar_area_vs_router(pitch) * 100.0
        );
    }

    println!("\n## Table 3 — thermal profiles\n");
    println!("| Configuration | Peak °C | Avg °C | Min °C |");
    println!("|---|---|---|---|");
    for row in table3_thermal()? {
        println!(
            "| {} | {:.2} | {:.2} | {:.2} |",
            row.config, row.peak_c, row.avg_c, row.min_c
        );
    }

    println!("\n## Figures 13 & 15 — L2 hit latency (cycles) and IPC\n");
    println!(
        "| benchmark | CMP-DNUCA | CMP-DNUCA-2D | CMP-SNUCA-3D | CMP-DNUCA-3D | IPC (same order) |"
    );
    println!("|---|---|---|---|---|---|");
    let rows = fig13_l2_latency(&all, scale)?;
    for row in &rows {
        let lat: Vec<String> = Scheme::ALL
            .iter()
            .map(|&s| format!("{:.2}", row.report(s).avg_l2_hit_latency()))
            .collect();
        let ipc: Vec<String> = Scheme::ALL
            .iter()
            .map(|&s| format!("{:.3}", row.report(s).ipc()))
            .collect();
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            row.benchmark,
            lat[0],
            lat[1],
            lat[2],
            lat[3],
            ipc.join(" / ")
        );
    }

    println!("\n## Figure 14 — migrations normalised to CMP-DNUCA-2D\n");
    println!("| benchmark | CMP-DNUCA | CMP-DNUCA-3D |");
    println!("|---|---|---|");
    for row in fig14_migrations(&all, scale)? {
        println!(
            "| {} | {:.3} | {:.3} |",
            row.benchmark, row.cmp_dnuca, row.cmp_dnuca_3d
        );
    }

    println!("\n## Figure 16 — L2 capacity scaling\n");
    println!("| benchmark | L2 MB | 2D | 3D |");
    println!("|---|---|---|---|");
    for row in fig16_cache_size(&representative, scale)? {
        println!(
            "| {} | {} | {:.2} | {:.2} |",
            row.benchmark, row.l2_mb, row.latency_2d, row.latency_3d
        );
    }

    println!("\n## Figure 17 — pillar count (CMP-DNUCA-3D)\n");
    println!("| benchmark | pillars | latency |");
    println!("|---|---|---|");
    for row in fig17_pillars(&representative, scale)? {
        println!(
            "| {} | {} | {:.2} |",
            row.benchmark, row.pillars, row.latency
        );
    }

    println!("\n## Figure 18 — layer count (CMP-SNUCA-3D)\n");
    println!("| benchmark | layers | latency |");
    println!("|---|---|---|");
    for row in fig18_layers(&representative, scale)? {
        println!(
            "| {} | {} | {:.2} |",
            row.benchmark, row.layers, row.latency
        );
    }
    Ok(())
}
