//! Configuration and assembly of a [`System`].
//!
//! The builder is where the scheme stops mattering: it resolves the
//! [`Scheme`] into a concrete [`ProtocolPolicy`](crate::policy), builds
//! the [`Engine`](crate::protocol::Engine) around it, and wires the real
//! [`SimFabric`](crate::fabric::SimFabric) underneath. After `build()`,
//! nothing in the simulation dispatches on `Scheme` again.

use nim_cache::{NucaL2, SearchPlan};
use nim_coherence::{Directory, WritePolicy};
use nim_cpu::InOrderCore;
use nim_noc::{Network, VerticalMode};
use nim_obs::Obs;
use nim_topology::{ChipLayout, MeshTopology, TopoSpec};
use nim_types::{FxHashMap, PillarPlacement, SystemConfig};

use crate::error::BuildError;
use crate::fabric::{FabricKind, LatencyModel, SimFabric};
use crate::policy::{policy_for, PolicyKnobs};
use crate::protocol::Engine;
use crate::report::Counters;
use crate::scheme::Scheme;
use crate::system::{SampleBuf, System};
use crate::timing::{Banks, MemoryChannels, TagArrays};
use crate::txn::TxnTable;

/// Configures and creates a [`System`].
///
/// ```
/// use nim_core::{Scheme, SystemBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = SystemBuilder::new(Scheme::CmpSnuca3d)
///     .seed(7)
///     .sampled_transactions(500)
///     .build()?;
/// assert_eq!(system.scheme(), Scheme::CmpSnuca3d);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    scheme: Scheme,
    cfg: SystemConfig,
    seed: u64,
    warmup: u64,
    sample: u64,
    prewarm: bool,
    vicinity_stop: bool,
    replication: bool,
    edge_memory: bool,
    skip: bool,
    shards: ShardRequest,
    window_tuning: Option<(u64, usize)>,
    fabric: FabricKind,
    obs: Obs,
}

/// A shard-count request: an explicit number, or `Auto` — pick the
/// largest count the topology supports that does not exceed the
/// machine's available parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardRequest {
    Fixed(usize),
    Auto,
}

impl ShardRequest {
    /// The concrete count to ask the network for; `new_sharded` then
    /// clamps it to the largest valid cluster-row divisor.
    fn resolve(self) -> usize {
        match self {
            Self::Fixed(n) => n,
            Self::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
        }
    }
}

/// Default shard request: the `NIM_SHARDS` environment variable
/// (`auto` or a count), else 1 (plain sequential simulation).
fn shards_from_env() -> ShardRequest {
    let Some(v) = std::env::var("NIM_SHARDS").ok() else {
        return ShardRequest::Fixed(1);
    };
    let v = v.trim();
    if v.eq_ignore_ascii_case("auto") {
        return ShardRequest::Auto;
    }
    v.parse()
        .ok()
        .filter(|&n| n >= 1)
        .map_or(ShardRequest::Fixed(1), ShardRequest::Fixed)
}

impl SystemBuilder {
    /// Starts from the paper's Table 4 configuration.
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            cfg: SystemConfig::default(),
            seed: 42,
            warmup: 1_000,
            sample: 10_000,
            prewarm: true,
            vicinity_stop: true,
            replication: false,
            edge_memory: false,
            skip: std::env::var_os("NIM_NO_SKIP").is_none(),
            shards: shards_from_env(),
            window_tuning: None,
            fabric: FabricKind::default(),
            obs: Obs::disabled(),
        }
    }

    /// Replaces the whole system configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Number of device layers (3D schemes only; 2D schemes always
    /// flatten to one layer).
    pub fn layers(mut self, layers: u8) -> Self {
        self.cfg.network.layers = layers;
        self
    }

    /// Number of vertical pillars.
    pub fn pillars(mut self, pillars: u16) -> Self {
        self.cfg.network.pillars = pillars;
        self
    }

    /// Number of CPUs seated on the chip.
    pub fn cpus(mut self, n: u32) -> Self {
        self.cfg.num_cpus = n;
        self
    }

    /// Where the vertical pillars land on each layer's mesh (spread,
    /// corners, or diagonal — see [`PillarPlacement`]).
    pub fn pillar_placement(mut self, placement: PillarPlacement) -> Self {
        self.cfg.network.pillar_placement = placement;
        self
    }

    /// Applies a parsed topology override (layer count, pillar count,
    /// pillar placement — see [`TopoSpec`]) on top of the current
    /// configuration. Later explicit knobs still win.
    pub fn topology(mut self, spec: &TopoSpec) -> Self {
        spec.apply(&mut self.cfg);
        self
    }

    /// Selects the interconnect substrate: the cycle-accurate flit-level
    /// network (default), the analytic latency-table fabric, or the
    /// ideal contention-free fabric — see [`FabricKind`].
    pub fn fabric(mut self, kind: FabricKind) -> Self {
        self.fabric = kind;
        self
    }

    /// Scales the L2 capacity by a power-of-two factor (Fig. 16: wider
    /// clusters, same cluster count and associativity).
    pub fn l2_scale(mut self, factor: u32) -> Self {
        self.cfg.l2 = self.cfg.l2.scaled(factor);
        self
    }

    /// Workload seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Transactions to complete before measurement starts.
    pub fn warmup_transactions(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Transactions measured after warm-up.
    pub fn sampled_transactions(mut self, n: u64) -> Self {
        self.sample = n;
        self
    }

    /// Whether to pre-install the workload's working set in the L2 and
    /// the hot/code sets in the L1s before simulating (replaces the
    /// paper's 500 M-cycle cache warm-up phase; default on).
    pub fn prewarm(mut self, on: bool) -> Self {
        self.prewarm = on;
        self
    }

    /// Ablation knob: when disabled, lines migrate on *every* access by a
    /// non-local CPU, even when they already sit inside the accessor's
    /// search vicinity. The paper's policy (default on) skips those
    /// migrations — "the increased locality" is why 3D migrates less
    /// (§5.2, Fig. 14).
    pub fn vicinity_stop(mut self, on: bool) -> Self {
        self.vicinity_stop = on;
        self
    }

    /// Extension: replicate read-shared lines into the reader's local
    /// cluster (the NuRapid / victim-replication alternative the paper's
    /// §1–§2 discusses). Replicas serve subsequent local reads; any write
    /// invalidates them. Off by default — the paper's design relies on
    /// migration alone.
    pub fn replication(mut self, on: bool) -> Self {
        self.replication = on;
        self
    }

    /// Extension: route L2 misses over the network to edge memory
    /// controllers with per-channel bandwidth limits
    /// (`SystemConfig::{memory_controllers, memory_interval}`), instead
    /// of the paper's flat 260-cycle memory latency. Off by default so
    /// the headline experiments match the paper's memory model.
    pub fn edge_memory_controllers(mut self, on: bool) -> Self {
        self.edge_memory = on;
        self
    }

    /// Whether the main loop may batch-advance the clock through spans
    /// it can prove are dead (no network phase fires, no timed event is
    /// due, no core needs a tick). On by default; the `NIM_NO_SKIP`
    /// environment variable (any value) flips the default off, forcing
    /// the naive one-tick-per-cycle loop. Results are bit-identical
    /// either way — skipping only elides cycles in which nothing
    /// observable happens (`noc_skip_equivalence` asserts this).
    pub fn horizon_skipping(mut self, on: bool) -> Self {
        self.skip = on;
        self
    }

    /// Cuts the network into `n` independently-clocked shards (bands of
    /// whole cluster rows) that advance concurrently between dTDMA
    /// pillar grants — see `Network::advance_window` in `nim-noc`.
    /// Results are bit-identical for any shard count; the request is
    /// clamped to the largest divisor of the cluster-row count
    /// (`layers × cluster-grid height`; always 1 for 2D schemes).
    /// Defaults to the `NIM_SHARDS` environment variable (`auto` or a
    /// count), else 1. Requires [`SystemBuilder::horizon_skipping`]
    /// (the default) to have any effect on the run loop.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = ShardRequest::Fixed(n.max(1));
        self
    }

    /// Picks the shard count automatically: the largest count the
    /// topology supports that does not exceed the machine's available
    /// parallelism. Equivalent to `NIM_SHARDS=auto` or `--shards auto`.
    pub fn shards_auto(mut self) -> Self {
        self.shards = ShardRequest::Auto;
        self
    }

    /// Overrides the window executor's spawn threshold and worker count
    /// (see `Network::set_window_tuning`), disabling the runtime
    /// calibration. Results are bit-identical for any values; exists so
    /// tests can force the threaded path onto arbitrarily short windows.
    #[doc(hidden)]
    pub fn window_tuning(mut self, spawn_min: u64, workers: usize) -> Self {
        self.window_tuning = Some((spawn_min, workers));
        self
    }

    /// Attaches an observability handle (see [`nim_obs::Obs`]): the
    /// network, NUCA L2, directory, and the system's own transaction
    /// machinery all emit trace events and metrics through it. The
    /// default is a disabled handle costing one branch per site.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the configuration, topology, or CPU
    /// placement is invalid.
    pub fn build(self) -> Result<System, BuildError> {
        let cfg = if self.scheme.is_3d() {
            self.cfg
        } else {
            self.cfg.flattened()
        };
        cfg.validate()?;
        let layout = ChipLayout::new(&cfg)?;
        let share_pillars =
            cfg.network.layers > 1 && u32::from(layout.num_pillars()) < cfg.num_cpus;
        let placement = self.scheme.placement(share_pillars);
        let seats = placement.place(&layout, cfg.num_cpus)?;
        let plans = seats
            .iter()
            .map(|s| SearchPlan::new(&layout, layout.cluster_of(s.coord)))
            .collect();
        let mut cluster_cpus = vec![0u64; layout.num_clusters() as usize];
        let mut cpu_at = FxHashMap::default();
        for seat in &seats {
            cluster_cpus[layout.cluster_of(seat.coord).index()] |= 1 << seat.cpu.index();
            cpu_at.insert(seat.coord, seat.cpu);
        }
        let mut net = Network::new_sharded(
            &layout,
            &cfg.network,
            VerticalMode::Pillars,
            self.shards.resolve(),
        );
        net.set_obs(self.obs.clone());
        if let Some((spawn_min, workers)) = self.window_tuning {
            net.set_window_tuning(spawn_min, workers);
        }
        let mut l2 = NucaL2::new(&cfg.l2);
        l2.set_obs(self.obs.clone());
        let mut dir = Directory::new(cfg.num_cpus, WritePolicy::WriteThrough);
        dir.set_obs(self.obs.clone());
        let cores = seats
            .iter()
            .map(|s| InOrderCore::new(s.cpu, &cfg.l1))
            .collect();
        let policy = policy_for(
            self.scheme,
            PolicyKnobs {
                vicinity_stop: self.vicinity_stop,
                replication: self.replication,
                edge_memory: self.edge_memory,
                memory_latency: u64::from(cfg.memory_latency),
            },
        );
        let model = match self.fabric {
            FabricKind::Sim => None,
            FabricKind::LatencyTable => Some(LatencyModel::latency_table(
                MeshTopology::new(layout.clone(), cfg.network.router_latency),
                &cfg.network,
            )),
            FabricKind::Ideal => Some(LatencyModel::ideal(
                MeshTopology::new(layout.clone(), cfg.network.router_latency),
                &cfg.network,
            )),
        };
        let fabric = SimFabric::new(
            net,
            model,
            TagArrays::new(
                layout.num_clusters() as usize,
                u64::from(cfg.l2.tag_latency),
            ),
            Banks::new(layout.num_nodes(), u64::from(cfg.l2.bank_latency)),
            MemoryChannels::new(
                cfg.memory_controllers as usize,
                u64::from(cfg.memory_interval),
                u64::from(cfg.memory_latency),
            ),
            self.obs.clone(),
        );
        let engine = Engine {
            seats,
            plans,
            cluster_cpus,
            cpu_at,
            l2,
            dir,
            cores,
            txns: TxnTable::default(),
            last_accessor: FxHashMap::default(),
            mc_coords: layout.memory_controller_coords(cfg.memory_controllers),
            counters: Counters::default(),
            policy,
            line_bytes: u64::from(cfg.l2.line_bytes),
            data_flits: cfg.network.data_packet_flits,
            layout,
        };
        let sharded = fabric.net.shards() > 1;
        Ok(System {
            scheme: self.scheme,
            cfg,
            engine,
            fabric,
            sample_buf: SampleBuf::default(),
            seed: self.seed,
            warmup: self.warmup,
            sample: self.sample,
            prewarm: self.prewarm,
            skip: self.skip,
            sharded,
            obs: self.obs,
            knobs: crate::system::RebuildKnobs {
                vicinity_stop: self.vicinity_stop,
                replication: self.replication,
                edge_memory: self.edge_memory,
                fabric: self.fabric,
            },
            progress: None,
        })
    }
}
