//! Deterministic parallel execution of independent simulation jobs.
//!
//! The paper's evaluation is a design-space sweep: every `(scheme,
//! benchmark, configuration)` cell is a fully independent, deterministic
//! simulation, so the sweep is embarrassingly parallel. [`par_map`] runs
//! such a job list across threads while keeping the *output* bit-identical
//! to a sequential run:
//!
//! * jobs are claimed from a shared [`AtomicUsize`] cursor (no work
//!   stealing, no channels — claiming is one `fetch_add`);
//! * every worker tags its results with the job index and the results are
//!   merged back into a pre-sized slot vector, so output ordering never
//!   depends on thread interleaving;
//! * each job's simulation is seeded and self-contained, so the values
//!   themselves cannot depend on scheduling either.
//!
//! The thread count comes from the `NIM_JOBS` environment variable
//! (default: [`std::thread::available_parallelism`]); `NIM_JOBS=1`
//! byte-for-byte reproduces the sequential runner by executing every job
//! inline on the calling thread. Tools that need to compare parallel and
//! sequential runs in-process (the `bench` binary, the determinism test)
//! can pin the count with [`set_jobs_override`] instead of mutating the
//! environment.
//!
//! ```
//! use nim_core::parallel::par_map;
//!
//! let squares = par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Process-wide override for the worker count; 0 means "not set, consult
/// `NIM_JOBS` / `available_parallelism`".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker count for subsequent [`par_map`] calls, bypassing the
/// `NIM_JOBS` environment variable; `None` restores env-driven behaviour.
/// Intended for benchmarks and tests that compare `jobs = 1` against
/// `jobs = N` within one process.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count [`par_map`] will use: the [`set_jobs_override`] value
/// if set, else `NIM_JOBS` if parseable and non-zero, else
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
pub fn configured_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("NIM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` with [`configured_jobs`] worker threads,
/// returning the results in item order — deterministically equal to the
/// sequential `items.iter().enumerate().map(|(i, it)| f(i, it))`.
///
/// `f` receives the job index and the item. Jobs are claimed atomically;
/// with one worker (or one item) everything runs inline on the calling
/// thread with no threads spawned.
///
/// # Panics
///
/// Propagates the first worker panic after all threads have stopped.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = configured_jobs().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        debug_assert!(slots[i].is_none(), "job {i} claimed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` with a pinned worker count, restoring the override
    /// afterwards even on panic.
    fn with_jobs<R>(jobs: usize, body: impl FnOnce() -> R) -> R {
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                set_jobs_override(None);
            }
        }
        let _reset = Reset;
        set_jobs_override(Some(jobs));
        body()
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map(&[], |_, x: &u32| *x);
        assert!(empty.is_empty());
        assert_eq!(par_map(&[9u32], |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn parallel_output_matches_sequential_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq = with_jobs(1, || par_map(&items, |i, &x| x * 31 + i as u64));
        let par = with_jobs(4, || par_map(&items, |i, &x| x * 31 + i as u64));
        assert_eq!(seq, par);
        assert_eq!(seq[10], 10 * 31 + 10);
    }

    #[test]
    fn every_index_is_passed_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_jobs(8, || {
            par_map(&items, |i, &x| {
                assert_eq!(i, x);
                i
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            with_jobs(4, || {
                par_map(&items, |_, &x| {
                    if x == 7 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn override_beats_env() {
        with_jobs(3, || assert_eq!(configured_jobs(), 3));
    }
}
