//! Tree pseudo-LRU replacement (paper §4.2.2: "we use a pseudo-LRU
//! replacement policy to evict a cache line to service a cache miss").
//!
//! The classic binary-tree approximation of LRU: one bit per internal node
//! of a complete binary tree over the ways. On an access, every node on
//! the way's root path is pointed *away* from it; the victim is found by
//! following the node bits from the root.

/// Tree pseudo-LRU state for one set of `ways` ways.
///
/// Supports power-of-two associativities up to 32 (the default L2 is
/// 16-way). State is one bit per internal node, packed in a `u32`.
///
/// ```
/// use nim_cache::TreePlru;
///
/// let mut plru = TreePlru::new(4);
/// plru.touch(0);
/// plru.touch(1);
/// assert_ne!(plru.victim(), 0, "recently used ways are protected");
/// assert_ne!(plru.victim(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreePlru {
    bits: u32,
    ways: u8,
}

impl TreePlru {
    /// Creates the replacement state for a set of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two in `1..=32`.
    pub fn new(ways: u32) -> Self {
        assert!(
            (1..=32).contains(&ways) && ways.is_power_of_two(),
            "ways must be a power of two in 1..=32, got {ways}"
        );
        Self {
            bits: 0,
            ways: ways as u8,
        }
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> u32 {
        u32::from(self.ways)
    }

    /// The packed tree bits (snapshot save).
    #[inline]
    pub fn raw_bits(&self) -> u32 {
        self.bits
    }

    /// Overwrites the packed tree bits (snapshot restore).
    #[inline]
    pub fn set_raw_bits(&mut self, bits: u32) {
        self.bits = bits;
    }

    #[inline]
    fn bit(&self, node: u32) -> bool {
        self.bits & (1 << node) != 0
    }

    #[inline]
    fn set_bit(&mut self, node: u32, v: bool) {
        if v {
            self.bits |= 1 << node;
        } else {
            self.bits &= !(1 << node);
        }
    }

    /// Marks `way` most-recently used.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `way` is out of range.
    pub fn touch(&mut self, way: u32) {
        debug_assert!(way < self.ways());
        let (mut node, mut lo, mut hi) = (1u32, 0u32, self.ways());
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed left: point the victim hint right.
                self.set_bit(node, true);
                node *= 2;
                hi = mid;
            } else {
                self.set_bit(node, false);
                node = 2 * node + 1;
                lo = mid;
            }
        }
    }

    /// The way the tree currently designates as the victim.
    pub fn victim(&self) -> u32 {
        let (mut node, mut lo, mut hi) = (1u32, 0u32, self.ways());
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bit(node) {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node *= 2;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_victimises_way_zero() {
        assert_eq!(TreePlru::new(16).victim(), 0);
        assert_eq!(TreePlru::new(2).victim(), 0);
        assert_eq!(TreePlru::new(1).victim(), 0);
    }

    #[test]
    fn touched_way_is_never_the_next_victim() {
        for ways in [2u32, 4, 8, 16, 32] {
            let mut plru = TreePlru::new(ways);
            for way in 0..ways {
                plru.touch(way);
                assert_ne!(plru.victim(), way, "ways={ways} way={way}");
            }
        }
    }

    #[test]
    fn round_robin_touching_cycles_victims_through_all_ways() {
        // Touching the current victim repeatedly must visit every way —
        // the defining liveness property of tree-PLRU.
        let ways = 16u32;
        let mut plru = TreePlru::new(ways);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..ways {
            let v = plru.victim();
            seen.insert(v);
            plru.touch(v);
        }
        assert_eq!(seen.len(), ways as usize);
    }

    #[test]
    fn sequential_fill_then_reuse_keeps_hot_way_resident() {
        let mut plru = TreePlru::new(4);
        for w in 0..4 {
            plru.touch(w);
        }
        // Way 3 was just used; keep hammering way 0 as well.
        for _ in 0..10 {
            plru.touch(0);
            assert_ne!(plru.victim(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = TreePlru::new(12);
    }

    #[test]
    fn single_way_always_victimises_zero() {
        let mut plru = TreePlru::new(1);
        plru.touch(0);
        assert_eq!(plru.victim(), 0);
    }
}
