//! Machine-readable parallel-sweep benchmark.
//!
//! Runs the Figure-13 grid (every benchmark × every scheme) twice — once
//! with one worker, once with `NIM_JOBS` (default: all cores) — and
//! writes `BENCH_sweep.json` with cycles simulated, wall seconds,
//! cycles/sec, and the jobs=N speedup over jobs=1, plus a `deterministic`
//! flag asserting the two sweeps produced identical reports.
//!
//! ```sh
//! NIM_SCALE=quick NIM_JOBS=4 cargo run --release -p nim-bench --bin bench
//! ```
//!
//! The output path defaults to `BENCH_sweep.json` in the current
//! directory; pass a path as the first argument to override it.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nim_bench::scale_from_env;
use nim_core::experiments::{run_cells, ExperimentScale, SweepSpec};
use nim_core::parallel::{configured_jobs, set_jobs_override};
use nim_core::{RunReport, Scheme};
use nim_workload::BenchmarkProfile;

/// Pulls `"cycles_per_sec_1": <number>` out of a previously written
/// sweep JSON, so successive runs record before/after throughput
/// without needing a JSON dependency.
fn prev_cycles_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"cycles_per_sec_1\":";
    let rest = text[text.find(key)? + key.len()..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn timed_sweep(
    jobs: usize,
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
    specs: &[SweepSpec],
) -> Result<(Vec<RunReport>, f64), Box<dyn Error>> {
    set_jobs_override(Some(jobs));
    let start = Instant::now();
    let reports = run_cells(benchmarks, scale, specs);
    let wall = start.elapsed().as_secs_f64();
    set_jobs_override(None);
    Ok((reports?, wall))
}

fn main() -> Result<(), Box<dyn Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let scale = scale_from_env(true);
    let scale_name = if scale == ExperimentScale::quick() {
        "quick"
    } else {
        "full"
    };
    let benchmarks = BenchmarkProfile::all();
    let mut specs = Vec::new();
    for bi in 0..benchmarks.len() {
        for &scheme in &Scheme::ALL {
            specs.push(SweepSpec::new(scheme, bi));
        }
    }
    let jobs = configured_jobs();
    eprintln!(
        "# bench: {} cells at scale {scale_name}, jobs=1 then jobs={jobs}",
        specs.len()
    );

    let prev_cps_1 = prev_cycles_per_sec(&out_path);
    let (baseline, wall_1) = timed_sweep(1, &benchmarks, scale, &specs)?;
    let (parallel, wall_n) = timed_sweep(jobs, &benchmarks, scale, &specs)?;

    // RunReport intentionally has no PartialEq; the Debug form covers
    // every field, so equal strings mean bit-identical sweeps.
    let deterministic = format!("{baseline:?}") == format!("{parallel:?}");
    let cycles: u64 = parallel.iter().map(|r| r.cycles).sum();
    let cps_1 = cycles as f64 / wall_1.max(1e-9);
    let cps_n = cycles as f64 / wall_n.max(1e-9);
    let speedup = wall_1 / wall_n.max(1e-9);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"warmup_transactions\": {},", scale.warmup);
    let _ = writeln!(json, "  \"sampled_transactions\": {},", scale.sample);
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"cells\": {},", specs.len());
    let _ = writeln!(json, "  \"cycles_simulated\": {cycles},");
    let _ = writeln!(json, "  \"wall_secs_1\": {wall_1:.6},");
    let _ = writeln!(json, "  \"wall_secs_n\": {wall_n:.6},");
    let _ = writeln!(json, "  \"cycles_per_sec_1\": {cps_1:.1},");
    let _ = writeln!(json, "  \"cycles_per_sec_n\": {cps_n:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    // Before/after throughput relative to whatever sweep last wrote this
    // file (absent on a first run).
    if let Some(prev) = prev_cps_1 {
        let _ = writeln!(json, "  \"prev_cycles_per_sec_1\": {prev:.1},");
        let _ = writeln!(
            json,
            "  \"speedup_vs_prev\": {:.3},",
            cps_1 / prev.max(1e-9)
        );
    }
    let _ = writeln!(json, "  \"deterministic\": {deterministic}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!("# wrote {out_path}");
    if !deterministic {
        return Err("parallel sweep diverged from the sequential sweep".into());
    }
    Ok(())
}
