//! The attribution sum invariant, end to end: across a 10-cell sweep of
//! schemes, benchmarks, and extension features, every cycle of every
//! completed transaction must land in exactly one of the five phase
//! buckets — so the aggregated bucket counters must equal the summed
//! end-to-end latencies *exactly*, with no residue and no double count.
//!
//! These runs execute in debug builds, so the per-transaction
//! `debug_assert`s in the engine's completion path (each transaction's
//! buckets sum to its own latency) fire on any mis-credit long before
//! the aggregate comparison here would.

use nim_core::{Phase, Scheme, SystemBuilder};
use nim_workload::BenchmarkProfile;

struct Cell {
    scheme: Scheme,
    benchmark: BenchmarkProfile,
    replication: bool,
    edge_memory: bool,
    narrow_bus: bool,
    /// Measure from transaction 0 so cold misses (and their memory
    /// waits) land inside the sampled window.
    cold: bool,
}

impl Cell {
    fn new(scheme: Scheme, benchmark: BenchmarkProfile) -> Self {
        Self {
            scheme,
            benchmark,
            replication: false,
            edge_memory: false,
            narrow_bus: false,
            cold: false,
        }
    }
}

/// One test fn on purpose: each cell is a full (small) run, and keeping
/// them serial bounds peak memory in debug CI.
#[test]
fn phase_buckets_sum_to_latency_across_the_sweep() {
    let mut cells: Vec<Cell> = Vec::new();
    // The four schemes on two benchmarks: 8 baseline cells. The art
    // cells measure cold so the window contains real memory misses.
    for (profile, cold) in [
        (BenchmarkProfile::art(), true),
        (BenchmarkProfile::swim(), false),
    ] {
        for &scheme in &Scheme::ALL {
            let mut c = Cell::new(scheme, profile);
            c.cold = cold;
            cells.push(c);
        }
    }
    // Extension paths ride the same engine: replication creates the
    // replica-install flow, edge MCs reroute the memory path, and a
    // narrow bus stretches dTDMA serialisation so pillar waits dominate.
    let mut repl = Cell::new(Scheme::CmpDnuca3d, BenchmarkProfile::swim());
    repl.replication = true;
    cells.push(repl);
    let mut edge = Cell::new(Scheme::CmpSnuca3d, BenchmarkProfile::art());
    edge.edge_memory = true;
    edge.narrow_bus = true;
    edge.cold = true;
    cells.push(edge);
    assert_eq!(cells.len(), 10);

    for cell in &cells {
        let mut cfg = nim_types::SystemConfig::default();
        if cell.narrow_bus {
            cfg.network.bus_width_bits = 32;
        }
        let mut sys = SystemBuilder::new(cell.scheme)
            .config(cfg)
            .seed(42)
            .prewarm(!cell.cold)
            .warmup_transactions(if cell.cold { 0 } else { 50 })
            .sampled_transactions(400)
            .replication(cell.replication)
            .edge_memory_controllers(cell.edge_memory)
            .build()
            .expect("system builds");
        let report = sys.run(&cell.benchmark).expect("run completes");
        let c = &report.counters;
        let label = format!(
            "{:?}/{}/repl={}/edge_mc={}/narrow_bus={}",
            cell.scheme, cell.benchmark.name, cell.replication, cell.edge_memory, cell.narrow_bus
        );

        assert!(c.l2_transactions > 0, "{label}: empty sample window");
        let attributed: u64 = c.phase_cycles().iter().sum();
        let latency = c.hit_latency_sum + c.miss_latency_sum;
        assert_eq!(
            attributed, latency,
            "{label}: phase buckets must sum exactly to end-to-end latency"
        );

        // The decomposition must be a real decomposition, not a single
        // catch-all bucket: network and L2 service always accrue.
        let b = c.phase_cycles();
        assert!(b[Phase::NocHop as usize] > 0, "{label}: no NoC-hop cycles");
        assert!(
            b[Phase::L2Service as usize] > 0,
            "{label}: no L2-service cycles"
        );
        // 3D schemes route through the dTDMA pillars; a scheme that
        // never waited for a bus slot would mean the pillar stamp is
        // disconnected.
        if matches!(cell.scheme, Scheme::CmpSnuca3d | Scheme::CmpDnuca3d) {
            assert!(
                b[Phase::PillarWait as usize] > 0,
                "{label}: 3D scheme recorded no pillar-wait cycles"
            );
        }
        // Cold windows contain compulsory misses, so the memory-wait
        // bucket must accrue their off-chip round trips.
        if cell.cold {
            assert!(c.l2_misses > 0, "{label}: cold window saw no misses");
            assert!(
                b[Phase::MemWait as usize] > 0,
                "{label}: misses completed without memory-wait cycles"
            );
        }
        // The per-txn means re-derive from the same counters.
        let means = report.latency_breakdown();
        let mean_total: f64 = means.iter().sum();
        let expect = latency as f64 / c.l2_transactions as f64;
        assert!(
            (mean_total - expect).abs() < 1e-9,
            "{label}: breakdown means must sum to the mean latency"
        );
    }
}
