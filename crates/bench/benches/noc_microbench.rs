//! NoC microbenchmarks: zero-load latency and saturation behaviour of
//! the 3D fabric — the standard characterisation behind the paper's
//! interconnect choices, plus raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::ChipLayout;
use nim_types::{Coord, SystemConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform-random traffic at a given injection rate (packets per node
/// per cycle), run for a fixed horizon; returns average packet latency.
fn offered_load(layout: &ChipLayout, rate: f64, horizon: u64, seed: u64) -> f64 {
    let cfg = SystemConfig::default();
    let mut net = Network::new(layout, &cfg.network, VerticalMode::Pillars);
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = layout.num_nodes();
    let mut token = 0u64;
    for _ in 0..horizon {
        for n in 0..nodes {
            if rng.random::<f64>() < rate {
                let src = layout.coord_of_index(n);
                let dst = layout.coord_of_index(rng.random_range(0..nodes));
                net.send(SendRequest {
                    src,
                    dst,
                    via: layout.nearest_pillar(src),
                    class: TrafficClass::Data,
                    flits: 4,
                    token,
                });
                token += 1;
            }
        }
        net.tick();
    }
    net.run_until_idle(2_000_000)
        .expect("drains after injection stops");
    net.stats().avg_latency()
}

fn bench(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).expect("layout");

    let mut group = c.benchmark_group("noc");
    group.sample_size(10);
    group.bench_function("zero_load_corner_to_corner", |b| {
        b.iter(|| {
            let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
            net.send(SendRequest {
                src: Coord::new(0, 0, 0),
                dst: Coord::new(15, 7, 1),
                via: layout.nearest_pillar(Coord::new(0, 0, 0)),
                class: TrafficClass::Data,
                flits: 4,
                token: 0,
            });
            net.run_until_idle(10_000).expect("drains");
            black_box(net.stats().avg_latency())
        })
    });
    group.bench_function("uniform_random_3pct_load", |b| {
        b.iter(|| black_box(offered_load(&layout, 0.003, 2_000, 7)))
    });
    group.finish();

    // Latency-vs-load curve (printed once): the knee marks saturation.
    eprintln!("noc: uniform-random latency vs offered load (4-flit packets)");
    for rate in [0.0005, 0.001, 0.002, 0.004, 0.008] {
        let lat = offered_load(&layout, rate, 2_000, 7);
        eprintln!("noc: {rate:.4} pkts/node/cycle -> {lat:.2} cycles");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
