//! Figure 13 — average L2 hit latency under the four schemes.
//!
//! Each iteration regenerates one Figure-13 row (all four schemes on one
//! benchmark) at the quick experiment scale; the measured series is
//! printed afterwards. `cargo run -p nim-bench --bin figures` regenerates
//! the full figure across all nine benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig13_l2_latency;
use nim_core::Scheme;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::swim()];
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("swim_all_schemes", |b| {
        b.iter(|| black_box(fig13_l2_latency(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    let rows = fig13_l2_latency(&bench_set, scale).expect("runs complete");
    for row in rows {
        for scheme in Scheme::ALL {
            eprintln!(
                "fig13: {:<6} {:<14} avg L2 hit = {:.2} cycles",
                row.benchmark,
                scheme.label(),
                row.report(scheme).avg_l2_hit_latency()
            );
        }
    }
    if scale.sample < 10_000 {
        eprintln!(
            "fig13: note — the quick scale samples the pre-rotation transient \
             (2D migration still fully converged); run with NIM_SCALE=full for \
             the figure's regime (see EXPERIMENTS.md)."
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
