//! Table 3 — steady-state thermal profile of the seven CPU-placement
//! configurations (the solver runs to convergence on every iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_core::experiments::table3_thermal;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("thermal_profiles", |b| {
        b.iter(|| black_box(table3_thermal().expect("all rows place")))
    });
    group.finish();
    for row in table3_thermal().expect("rows") {
        eprintln!(
            "table3: {:<26} peak {:>7.2} C  avg {:>6.2} C  min {:>6.2} C",
            row.config, row.peak_c, row.avg_c, row.min_c
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
