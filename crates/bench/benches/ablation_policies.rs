//! Policy ablations called out in DESIGN.md §8: what each design choice
//! contributes to the 3D scheme.
//!
//! * migration on/off — CMP-DNUCA-3D vs CMP-SNUCA-3D (first-class schemes)
//! * vicinity-stop on/off — the §4.2.3 "don't migrate data that is
//!   already local" rule vs migrating on every non-local access
//! * pre-warm on/off — sampling a warmed vs a cold L2
//! * replication on/off — the NuRapid / victim-replication alternative
//!   (§1–§2) composed with the static and dynamic 3D schemes

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_core::{RunReport, Scheme, SystemBuilder};
use nim_workload::BenchmarkProfile;

fn run(scheme: Scheme, vicinity_stop: bool, prewarm: bool) -> RunReport {
    run_r(scheme, vicinity_stop, prewarm, false)
}

fn run_r(scheme: Scheme, vicinity_stop: bool, prewarm: bool, replication: bool) -> RunReport {
    SystemBuilder::new(scheme)
        .seed(42)
        .warmup_transactions(200)
        .sampled_transactions(1_500)
        .vicinity_stop(vicinity_stop)
        .prewarm(prewarm)
        .replication(replication)
        .build()
        .expect("build")
        .run(&BenchmarkProfile::swim())
        .expect("run")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(10);
    group.bench_function("dnuca3d_paper_policy", |b| {
        b.iter(|| black_box(run(Scheme::CmpDnuca3d, true, true)))
    });
    group.bench_function("dnuca3d_no_vicinity_stop", |b| {
        b.iter(|| black_box(run(Scheme::CmpDnuca3d, false, true)))
    });
    group.finish();

    let paper = run(Scheme::CmpDnuca3d, true, true);
    let eager = run(Scheme::CmpDnuca3d, false, true);
    let snuca = run(Scheme::CmpSnuca3d, true, true);
    let cold = run(Scheme::CmpDnuca3d, true, false);
    eprintln!(
        "ablation: migration off (SNUCA-3D)        latency {:.2}, migrations {}",
        snuca.avg_l2_hit_latency(),
        snuca.counters.migrations
    );
    eprintln!(
        "ablation: paper policy (vicinity stop)    latency {:.2}, migrations {}",
        paper.avg_l2_hit_latency(),
        paper.counters.migrations
    );
    eprintln!(
        "ablation: eager migration (no stop)       latency {:.2}, migrations {}",
        eager.avg_l2_hit_latency(),
        eager.counters.migrations
    );
    eprintln!(
        "ablation: cold L2 (no pre-warm)           latency {:.2}, miss rate {:.3}",
        cold.avg_l2_hit_latency(),
        cold.l2_miss_rate()
    );
    let snuca_r = run_r(Scheme::CmpSnuca3d, true, true, true);
    let dnuca_r = run_r(Scheme::CmpDnuca3d, true, true, true);
    eprintln!(
        "ablation: SNUCA-3D + replication          latency {:.2}, replicas {}",
        snuca_r.avg_l2_hit_latency(),
        snuca_r.counters.replicas_created
    );
    eprintln!(
        "ablation: DNUCA-3D + replication          latency {:.2}, replicas {}, migrations {}",
        dnuca_r.avg_l2_hit_latency(),
        dnuca_r.counters.replicas_created,
        dnuca_r.counters.migrations
    );
    assert!(
        eager.counters.migrations > paper.counters.migrations,
        "vicinity stop must cut migration volume"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
