//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this path crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter`, range and
//! tuple strategies, [`any`], `proptest::collection::vec`,
//! `prop_oneof!`, the `proptest!` macro with `#![proptest_config(..)]`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the deterministic per-test seed and case index so it can be
//! reproduced by rerunning the test. Generation is deterministic per
//! test name, so CI results are stable. Case count defaults to 64 and
//! honours both `#![proptest_config(ProptestConfig::with_cases(n))]`
//! and the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive.
        end: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.below(span.max(1)) as usize);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prelude` — the workspace's single import surface.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, Rejection, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current property test case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Discards the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(&format!($($fmt)*)),
            );
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = u64::from(cases) * 20 + 1000;
            while accepted < cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} accepted)",
                    stringify!($name), attempts, accepted
                );
                // Generate every argument; a filter rejection discards the case.
                let __vals = (|| -> ::core::result::Result<_, $crate::test_runner::Rejection> {
                    ::core::result::Result::Ok((
                        $($crate::strategy::Strategy::generate(&$strategy, &mut rng)?,)+
                    ))
                })();
                let ($($pat,)+) = match __vals {
                    ::core::result::Result::Ok(v) => v,
                    ::core::result::Result::Err(_) => continue,
                };
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (deterministic per test name): {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
