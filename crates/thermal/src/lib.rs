//! Steady-state 3D thermal estimation for stacked chips (HS3d-like).
//!
//! Reproduces the thermal methodology of the paper's §3.3: given a
//! floorplan (which tile holds a CPU, which a cache bank) the model
//! solves a tile-granularity thermal RC network and reports the peak,
//! average, and minimum temperatures that drive the CPU-placement
//! decisions of Table 3.
//!
//! # Examples
//!
//! ```
//! use nim_thermal::{ThermalConfig, ThermalModel};
//! use nim_topology::{ChipLayout, Floorplan, PlacementPolicy};
//! use nim_types::SystemConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::default();
//! let layout = ChipLayout::new(&cfg)?;
//! let seats = PlacementPolicy::MaximalOffset.place(&layout, cfg.num_cpus)?;
//! let plan = Floorplan::new(&layout, &seats);
//! let tcfg = ThermalConfig::default();
//! let profile = ThermalModel::new(&plan, &tcfg).solve(&tcfg);
//! assert!(profile.peak() > profile.min());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod model;
pub mod search;

pub use model::{ThermalConfig, ThermalModel, ThermalProfile, TransientConfig};
pub use search::{best_placement, rank_placements, RankedPlacement};
