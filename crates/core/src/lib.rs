//! System assembly and experiment drivers for the 3D network-in-memory
//! chip multiprocessor.
//!
//! This crate is the paper's "novel simulation environment" (§5.1): it
//! couples the in-order cores and their L1s (`nim-cpu`), the directory
//! (`nim-coherence`), the NUCA L2 (`nim-cache`), and the cycle-accurate
//! 3D NoC with dTDMA pillars (`nim-noc`) into one lock-step simulation,
//! then exposes the paper's four schemes and every evaluation experiment.
//!
//! * [`Scheme`] — CMP-DNUCA / CMP-DNUCA-2D / CMP-SNUCA-3D / CMP-DNUCA-3D.
//! * [`SystemBuilder`] / [`System`] — build and run one configuration.
//! * [`RunReport`] — avg L2 hit latency, IPC, migrations, energy.
//! * [`experiments`] — one driver per table/figure (Table 3, Figs 13–18).
//! * [`parallel`] — the deterministic `NIM_JOBS`-wide sweep executor the
//!   experiment drivers fan out on.
//!
//! # Examples
//!
//! ```
//! use nim_core::{Scheme, SystemBuilder};
//! use nim_workload::BenchmarkProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = SystemBuilder::new(Scheme::CmpSnuca3d)
//!     .warmup_transactions(100)
//!     .sampled_transactions(400)
//!     .build()?
//!     .run(&BenchmarkProfile::synthetic())?;
//! assert!(report.avg_l2_hit_latency() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod builder;
mod error;
pub mod experiments;
mod fabric;
pub mod parallel;
mod policy;
mod protocol;
mod report;
mod scheme;
mod snapshot;
mod system;
mod timing;
mod token;
mod txn;

pub use builder::SystemBuilder;
pub use error::{BuildError, RunError, SnapshotError};
pub use fabric::FabricKind;
pub use report::{Counters, RunReport};
pub use scheme::Scheme;
pub use snapshot::ResumedRun;
pub use system::System;
pub use txn::Phase;
