//! Thermally-aware placement search.
//!
//! The paper's §3.3 hand-derives a placement methodology (offset CPUs in
//! all three dimensions; Algorithm 1 when pillars are shared) and
//! validates it against HS3d. This module closes the loop: given a chip
//! configuration, it evaluates every applicable placement policy with the
//! thermal model and ranks them by peak temperature — the automated
//! version of the paper's design process.

use nim_topology::{ChipLayout, Floorplan, PlacementPolicy};
use nim_types::SystemConfig;

use crate::model::{ThermalConfig, ThermalModel, ThermalProfile};

/// One evaluated placement.
#[derive(Clone, Debug)]
pub struct RankedPlacement {
    /// The policy evaluated.
    pub policy: PlacementPolicy,
    /// Its steady-state thermal profile.
    pub profile: ThermalProfile,
}

impl RankedPlacement {
    /// Peak temperature of this placement, °C.
    pub fn peak_c(&self) -> f64 {
        self.profile.peak()
    }
}

/// Evaluates every placement policy that can seat `num_cpus` CPUs on the
/// configuration's chip and returns them sorted by peak temperature,
/// coolest first. Policies that cannot seat the CPUs (e.g. maximal
/// offsetting without enough pillars) are skipped.
///
/// # Errors
///
/// Returns the topology error if the chip layout itself cannot be built.
pub fn rank_placements(
    cfg: &SystemConfig,
    tcfg: &ThermalConfig,
) -> Result<Vec<RankedPlacement>, nim_topology::TopologyError> {
    let layout = ChipLayout::new(cfg)?;
    // Candidates follow the paper's design space: pillar-anchored
    // placements on a stack (every CPU needs single-hop vertical access),
    // planar placements on a single-layer chip.
    let candidates: &[PlacementPolicy] = if layout.layers() > 1 {
        &[
            PlacementPolicy::MaximalOffset,
            PlacementPolicy::Algorithm1 { k: 1 },
            PlacementPolicy::Algorithm1 { k: 2 },
            PlacementPolicy::Stacked,
        ]
    } else {
        &[PlacementPolicy::Edges, PlacementPolicy::Interior2d]
    };
    let mut ranked: Vec<RankedPlacement> = candidates
        .iter()
        .copied()
        .filter_map(|policy| {
            let seats = policy.place(&layout, cfg.num_cpus).ok()?;
            let plan = Floorplan::new(&layout, &seats);
            let profile = ThermalModel::new(&plan, tcfg).solve(tcfg);
            Some(RankedPlacement { policy, profile })
        })
        .collect();
    ranked.sort_by(|a, b| a.peak_c().total_cmp(&b.peak_c()));
    Ok(ranked)
}

/// The coolest placement for a configuration (the §3.3 recommendation,
/// found automatically).
///
/// # Errors
///
/// Returns the topology error if the chip layout cannot be built.
///
/// # Panics
///
/// Panics if *no* policy can seat the CPUs (cannot happen for valid
/// configurations: `Interior2d` always places).
pub fn best_placement(
    cfg: &SystemConfig,
    tcfg: &ThermalConfig,
) -> Result<RankedPlacement, nim_topology::TopologyError> {
    let mut ranked = rank_placements(cfg, tcfg)?;
    assert!(!ranked.is_empty(), "at least one policy must place");
    Ok(ranked.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_recommends_offsetting_over_stacking() {
        let cfg = SystemConfig::default(); // 2 layers, 8 pillars, 8 CPUs
        let tcfg = ThermalConfig::default();
        let ranked = rank_placements(&cfg, &tcfg).unwrap();
        // With one pillar per CPU, Algorithm 1 (which shares pillars)
        // does not apply; offsetting and stacking remain.
        assert!(ranked.len() >= 2);
        // Coolest first; the winner must beat stacking by a wide margin.
        let best = &ranked[0];
        let stacked = ranked
            .iter()
            .find(|r| r.policy == PlacementPolicy::Stacked)
            .expect("stacking is placeable");
        assert!(best.peak_c() + 10.0 < stacked.peak_c());
        // And the automated search agrees with the paper's §3.3 choice.
        assert_eq!(
            best_placement(&cfg, &tcfg).unwrap().policy,
            PlacementPolicy::MaximalOffset
        );
    }

    #[test]
    fn ranking_is_sorted_by_peak() {
        let cfg = SystemConfig::default().with_layers(4);
        let ranked = rank_placements(&cfg, &ThermalConfig::default()).unwrap();
        for pair in ranked.windows(2) {
            assert!(pair[0].peak_c() <= pair[1].peak_c());
        }
    }

    #[test]
    fn shared_pillar_chips_fall_back_to_algorithm_1() {
        // 4 pillars cannot give each of the 8 CPUs its own, so maximal
        // offsetting is unplaceable; Algorithm 1 must win.
        let cfg = SystemConfig::default().with_pillars(4);
        let best = best_placement(&cfg, &ThermalConfig::default()).unwrap();
        assert!(
            matches!(best.policy, PlacementPolicy::Algorithm1 { .. }),
            "got {:?}",
            best.policy
        );
    }
}
