//! The dTDMA bus phase: one arbitration round per pillar per cycle.
//!
//! Runs first each tick, so a flit granted the bus (stamped
//! `arrived == now`) cannot also traverse a router in the same cycle.
//!
//! Unlike the router and injection phases, a bus grant moves a flit
//! *between* layers — out of the sending layer's transceiver interface
//! (owned by the shard of that layer's pillar node) into the
//! destination layer's pillar router (in general owned by another
//! shard). The bus phase therefore always runs sequentially, at ticks
//! and at window barriers; bus-grant latency is part of the
//! conservative lookahead the window planner exploits.

use nim_obs::{Category, EventData};
use nim_types::{Coord, Cycle, Dir};

use super::Network;

impl Network {
    pub(super) fn bus_phase(&mut self, now: Cycle) {
        if self.bus_active.is_empty() {
            return;
        }
        let mut work =
            std::mem::replace(&mut self.bus_active, std::mem::take(&mut self.bus_scratch));
        work.sort_unstable();
        for &b in &work {
            self.in_bus_active[b as usize] = false;
        }
        for &b in &work {
            let b = b as usize;
            self.process_bus(b, now);
            if self.bus_queued(b) > 0 {
                self.mark_bus(b);
            }
        }
        work.clear();
        self.bus_scratch = work;
    }

    /// One dTDMA arbitration round: at most one flit crosses the bus.
    fn process_bus(&mut self, b: usize, now: Cycle) {
        // A narrow bus is still serialising the previous flit.
        if self.bus_ready_at[b] > now.0 {
            return;
        }
        let layers = self.layout.layers() as usize;
        let mut eligible = 0u64;
        for layer in 0..self.layout.layers() {
            let (s, i) = self.iface_pos(b, layer);
            let st = &self.shards[s];
            if st.ifaces[i]
                .q
                .front(&st.arena)
                .is_some_and(|f| f.arrived < now)
            {
                eligible += 1;
            }
        }
        if eligible == 0 {
            return;
        }
        let rr = self.buses[b].rr;
        for off in 0..layers {
            let i = (rr + off) % layers;
            let (src_shard, src_iface) = self.iface_pos(b, i as u8);
            let front = {
                let st = &self.shards[src_shard];
                st.ifaces[src_iface].q.front(&st.arena).copied()
            };
            let Some(front) = front else {
                continue;
            };
            if front.arrived >= now {
                continue;
            }
            let (px, py) = self.buses[b].xy;
            let dest_idx = self.layout.node_index(Coord::new(px, py, front.dst.layer));
            let vi = Dir::Vertical.index();
            let port = self.routers[dest_idx].inputs[vi]
                .as_ref()
                .expect("pillar node lacks vertical port");
            let vc_sel = if front.kind.is_head() {
                port.free_vc()
            } else {
                self.shards[src_shard].ifaces[src_iface]
                    .bound_vc
                    .filter(|&v| port.vc(v).accepts_continuation(front.pkt))
            };
            let Some(vc) = vc_sel else {
                continue;
            };
            // Multiple transmitters competing for a grant that actually
            // happens is contention; a round where every candidate is
            // VC-blocked is backpressure and counts nowhere.
            if eligible >= 2 {
                self.buses[b].stats.contention_cycles += 1;
                self.obs
                    .emit(Category::Pillar, || EventData::BusContention {
                        pillar: b as u32,
                        waiting: eligible as u32,
                    });
            }
            // The flit leaves the sending layer's shard arena and enters
            // the destination layer's; popping needs only a shared arena
            // borrow, so the cross-shard move is two plain statements.
            let mut f = {
                let st = &mut self.shards[src_shard];
                st.ifaces[src_iface]
                    .q
                    .pop_front(&st.arena)
                    .expect("front checked")
            };
            // `arrived` still holds the bus-enqueue stamp: the span up
            // to this grant is time spent waiting for a dTDMA slot.
            f.bus_wait += (now.0 - f.arrived.0) as u32;
            f.arrived = now;
            f.hops += 1;
            let dest_shard = self.shard_of_node(dest_idx);
            self.routers[dest_idx].inputs[vi]
                .as_mut()
                .expect("checked above")
                .vc_mut(vc)
                .push(&mut self.shards[dest_shard].arena, f);
            self.routers[dest_idx].occupancy += 1;
            self.mark_dirty(dest_idx);
            let iface = &mut self.shards[src_shard].ifaces[src_iface];
            iface.bound_vc = if f.kind.is_tail() {
                None
            } else if f.kind.is_head() {
                Some(vc)
            } else {
                iface.bound_vc
            };
            self.buses[b].stats.transfers += 1;
            self.buses[b].stats.busy_cycles += self.bus_cycles_per_flit;
            self.stats.bus_transfers += 1;
            self.obs.emit(Category::Pillar, || EventData::BusGrant {
                pillar: b as u32,
                from_layer: i as u16,
                to_layer: u16::from(f.dst.layer),
            });
            self.buses[b].rr = (i + 1) % layers;
            self.bus_ready_at[b] = now.0 + self.bus_cycles_per_flit;
            break; // one flit per bus grant
        }
    }
}
