//! Cluster-granular shard geometry for the parallel network engine.
//!
//! A *shard* is a contiguous run of **cluster rows** — horizontal bands
//! of one cluster height spanning a layer's full width. Node indexing is
//! layer-major ([`ChipLayout::node_index`]), so a run of cluster rows is
//! also a contiguous run of node indices: `node / nodes_per_shard` is the
//! owning shard with no lookup table. A chip with `layers` layers and a
//! `grid_h`-tall cluster grid has `layers * grid_h` cluster rows, so
//! valid shard counts are the divisors of that product — strictly more
//! than the layer-count divisors the engine's original layer-group cut
//! allowed (a 2-layer chip with `grid_h = 2` can be cut 4 ways).
//!
//! Besides the cut itself, the plan precomputes the two tables the
//! window executor's mesh-boundary lookahead needs:
//!
//! * [`ShardPlan::band`] — the y-interval of each layer a shard owns
//!   (shards need not own whole layers, and may span layer boundaries);
//! * [`ShardPlan::boundary_dist`] — per node, the Manhattan distance in
//!   mesh hops to the nearest *same-layer* router owned by another
//!   shard. Under dimension-order routing every hop costs at least one
//!   router dwell, so `movable + (dist - 1) × router_latency` is a sound
//!   lower bound on when a flit standing at the node could first enter
//!   foreign territory.

use crate::layout::ChipLayout;

/// How a chip layout is cut into equally-sized, node-contiguous shards
/// of whole cluster rows, plus the boundary-distance tables the
/// conservative window planner derives its mesh-boundary lookahead from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    nodes_per_shard: usize,
    layers: u8,
    height: u8,
    /// Owned y-band per `(shard, layer)`, indexed `shard * layers + layer`;
    /// `None` when the shard owns no nodes on that layer.
    bands: Vec<Option<(u8, u8)>>,
    /// Per-node mesh hops to the nearest same-layer router of another
    /// shard; `u32::MAX` when the owning shard has no same-layer cut
    /// there (i.e. it owns the layer's full height).
    boundary_dist: Vec<u32>,
}

impl ShardPlan {
    /// Cluster rows available for cutting: `layers × grid_h`.
    pub fn cluster_rows(layout: &ChipLayout) -> usize {
        usize::from(layout.layers()) * usize::from(layout.cluster_grid().1)
    }

    /// Every shard count the layout supports, ascending — the divisors
    /// of [`ShardPlan::cluster_rows`].
    pub fn valid_counts(layout: &ChipLayout) -> Vec<usize> {
        let rows = Self::cluster_rows(layout);
        (1..=rows).filter(|&d| rows.is_multiple_of(d)).collect()
    }

    /// Builds the plan, clamping `requested` to the largest valid shard
    /// count not exceeding it (so any request is safe).
    pub fn new(layout: &ChipLayout, requested: usize) -> Self {
        let rows = Self::cluster_rows(layout);
        let req = requested.clamp(1, rows);
        let shards = (1..=req)
            .rev()
            .find(|&d| rows.is_multiple_of(d))
            .unwrap_or(1);
        let rows_per_shard = rows / shards;
        let layers = layout.layers();
        let grid_h = usize::from(layout.cluster_grid().1);
        let cluster_h = usize::from(layout.cluster_dims().1);
        let mut bands = vec![None; shards * usize::from(layers)];
        for s in 0..shards {
            let (r0, r1) = (s * rows_per_shard, (s + 1) * rows_per_shard - 1);
            for layer in 0..usize::from(layers) {
                let (lr0, lr1) = (layer * grid_h, (layer + 1) * grid_h - 1);
                let (a, b) = (r0.max(lr0), r1.min(lr1));
                if a <= b {
                    bands[s * usize::from(layers) + layer] = Some((
                        ((a - lr0) * cluster_h) as u8,
                        ((b - lr0 + 1) * cluster_h - 1) as u8,
                    ));
                }
            }
        }
        let nodes_per_shard = layout.num_nodes() / shards;
        let height = layout.height();
        let mut boundary_dist = vec![u32::MAX; layout.num_nodes()];
        for (idx, dist) in boundary_dist.iter_mut().enumerate() {
            let c = layout.coord_of_index(idx);
            let s = idx / nodes_per_shard;
            let (y0, y1) = bands[s * usize::from(layers) + usize::from(c.layer)]
                .expect("node lies in its shard's band");
            debug_assert!((y0..=y1).contains(&c.y));
            if y0 > 0 {
                *dist = (*dist).min(u32::from(c.y - y0) + 1);
            }
            if y1 + 1 < height {
                *dist = (*dist).min(u32::from(y1 - c.y) + 1);
            }
        }
        Self {
            shards,
            nodes_per_shard,
            layers,
            height,
            bands,
            boundary_dist,
        }
    }

    /// Number of shards the chip is cut into (≥ 1).
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Nodes per shard; shards are node-contiguous, so
    /// `node / nodes_per_shard` is the owning shard.
    #[inline]
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// The shard owning a (layer-major) node index.
    #[inline]
    pub fn shard_of_node(&self, node: usize) -> usize {
        node / self.nodes_per_shard
    }

    /// The inclusive y-interval of `layer` owned by `shard`, or `None`
    /// when the shard owns no nodes on that layer.
    #[inline]
    pub fn band(&self, shard: usize, layer: u8) -> Option<(u8, u8)> {
        self.bands[shard * usize::from(self.layers) + usize::from(layer)]
    }

    /// Mesh hops from the node to the nearest same-layer router owned by
    /// another shard, or `None` when its shard owns the layer's full
    /// height there (layer-aligned cuts have no same-layer boundary).
    #[inline]
    pub fn boundary_dist(&self, node: usize) -> Option<u32> {
        let d = self.boundary_dist[node];
        (d != u32::MAX).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    fn layout(layers: u8) -> ChipLayout {
        let mut cfg = SystemConfig::default();
        cfg.network.layers = layers;
        ChipLayout::new(&cfg).expect("valid layout")
    }

    #[test]
    fn valid_counts_are_cluster_row_divisors() {
        // Default 2-layer chip: 16x8 mesh, 4x2 cluster grid -> 4 rows.
        let l2 = layout(2);
        assert_eq!(ShardPlan::cluster_rows(&l2), 4);
        assert_eq!(ShardPlan::valid_counts(&l2), vec![1, 2, 4]);
        // 4-layer chip: 8x8 mesh, 2x2 cluster grid -> 8 rows.
        let l4 = layout(4);
        assert_eq!(ShardPlan::cluster_rows(&l4), 8);
        assert_eq!(ShardPlan::valid_counts(&l4), vec![1, 2, 4, 8]);
    }

    #[test]
    fn requests_clamp_to_the_largest_valid_count() {
        let l2 = layout(2);
        for (req, want) in [(0, 1), (1, 1), (2, 2), (3, 2), (4, 4), (64, 4)] {
            assert_eq!(ShardPlan::new(&l2, req).shards(), want, "request {req}");
        }
    }

    #[test]
    fn bands_partition_every_layer_and_match_ownership() {
        for layers in [2u8, 4] {
            let lay = layout(layers);
            for &shards in &ShardPlan::valid_counts(&lay) {
                let plan = ShardPlan::new(&lay, shards);
                assert_eq!(plan.shards(), shards);
                assert_eq!(plan.nodes_per_shard() * shards, lay.num_nodes());
                for idx in 0..lay.num_nodes() {
                    let c = lay.coord_of_index(idx);
                    let s = plan.shard_of_node(idx);
                    let (y0, y1) = plan.band(s, c.layer).expect("owned band");
                    assert!(
                        (y0..=y1).contains(&c.y),
                        "node {idx} outside its shard's band"
                    );
                }
                // Bands tile each layer exactly.
                for layer in 0..layers {
                    let mut covered = vec![false; usize::from(lay.height())];
                    for s in 0..shards {
                        if let Some((y0, y1)) = plan.band(s, layer) {
                            for y in y0..=y1 {
                                assert!(!covered[usize::from(y)], "overlapping bands");
                                covered[usize::from(y)] = true;
                            }
                        }
                    }
                    assert!(
                        covered.iter().all(|&c| c),
                        "uncovered rows on layer {layer}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_dist_counts_hops_to_the_cut() {
        let lay = layout(2);
        // 4 shards on 2 layers cut each layer at mid-height (y = 4).
        let plan = ShardPlan::new(&lay, 4);
        for idx in 0..lay.num_nodes() {
            let c = lay.coord_of_index(idx);
            let want = if c.y < 4 { 4 - c.y } else { c.y - 3 };
            assert_eq!(plan.boundary_dist(idx), Some(u32::from(want)), "node {idx}");
        }
        // Layer-aligned cuts have no same-layer boundary anywhere.
        let aligned = ShardPlan::new(&lay, 2);
        assert!((0..lay.num_nodes()).all(|i| aligned.boundary_dist(i).is_none()));
    }
}
