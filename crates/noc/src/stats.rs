//! Network-wide statistics.

use crate::packet::{Delivered, TrafficClass};

// The histogram moved to `nim-obs` so every simulator crate can record
// distributions; re-exported here to keep existing imports working.
pub use nim_obs::LatencyHistogram;

/// Counters accumulated by the network across a run.
///
/// Per-class breakdowns are indexed by [`TrafficClass::index`]; the energy
/// model in `nim-power` consumes the flit-hop and bus-transfer counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets handed to [`Network::send`].
    ///
    /// [`Network::send`]: crate::Network::send
    pub packets_sent: u64,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub total_latency: u64,
    /// Largest single packet latency seen.
    pub max_latency: u64,
    /// Sum of head-flit hop counts over delivered packets.
    pub total_hops: u64,
    /// Individual flit router-to-router traversals (energy proxy).
    pub flit_hops: u64,
    /// Flit traversals by traffic class.
    pub flit_hops_by_class: [u64; 4],
    /// Packets delivered by traffic class.
    pub delivered_by_class: [u64; 4],
    /// Latency sum by traffic class.
    pub latency_by_class: [u64; 4],
    /// Flits carried across all dTDMA buses.
    pub bus_transfers: u64,
    /// Switch-allocation losses (a flit wanted an output but another flit
    /// won it, or downstream had no space/VC).
    pub switch_contention: u64,
    /// End-to-end packet latency distribution.
    pub latency_histogram: LatencyHistogram,
}

impl NetworkStats {
    /// Mean end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Mean latency for one traffic class.
    pub fn avg_latency_for(&self, class: TrafficClass) -> f64 {
        let n = self.delivered_by_class[class.index()];
        if n == 0 {
            0.0
        } else {
            self.latency_by_class[class.index()] as f64 / n as f64
        }
    }

    /// Mean hop count of delivered packets.
    pub fn avg_hops(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.packets_delivered as f64
        }
    }

    pub(crate) fn record_delivery(&mut self, d: &Delivered) {
        self.packets_delivered += 1;
        let lat = d.latency();
        self.latency_histogram.record(lat);
        self.total_latency += lat;
        self.max_latency = self.max_latency.max(lat);
        self.total_hops += u64::from(d.hops);
        self.delivered_by_class[d.class.index()] += 1;
        self.latency_by_class[d.class.index()] += lat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::{Coord, Cycle, PacketId};

    #[test]
    fn averages_handle_empty_stats() {
        let s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.avg_latency_for(TrafficClass::Data), 0.0);
    }

    #[test]
    fn record_delivery_accumulates() {
        let mut s = NetworkStats::default();
        let d = Delivered {
            packet: PacketId(1),
            src: Coord::new(0, 0, 0),
            dst: Coord::new(3, 0, 0),
            class: TrafficClass::Data,
            token: 0,
            injected: Cycle(0),
            delivered: Cycle(10),
            hops: 3,
            bus_wait: 0,
        };
        s.record_delivery(&d);
        let d2 = Delivered {
            delivered: Cycle(30),
            hops: 5,
            class: TrafficClass::Control,
            ..d
        };
        s.record_delivery(&d2);
        assert_eq!(s.packets_delivered, 2);
        assert_eq!(s.avg_latency(), 20.0);
        assert_eq!(s.avg_hops(), 4.0);
        assert_eq!(s.max_latency, 30);
        assert_eq!(s.avg_latency_for(TrafficClass::Data), 10.0);
        assert_eq!(s.avg_latency_for(TrafficClass::Control), 30.0);
        assert_eq!(s.latency_histogram.count(), 2);
    }
}
