//! Snapshot seam for the network: serializing every flit in flight.
//!
//! The network's live state is saved *logically*, not physically: flits
//! are written per (node, input direction, VC), per (bus, layer)
//! transceiver interface, and per-node injection queue — never as raw
//! [`FlitArena`](crate::packet::FlitArena) slabs. Arena slot layout
//! depends on how the chip was cut into shards, so a logical encoding
//! lets a snapshot taken under one `NIM_SHARDS` restore under any other
//! (sharding is bit-identical by construction, so the resumed run still
//! reproduces the uninterrupted one exactly).
//!
//! Restore targets a freshly built [`Network`] with the same layout and
//! configuration; the derived work lists (router dirty lists, active
//! injectors, active buses, delivered-node list) are recomputed from the
//! restored queues rather than serialized, and scratch state (window
//! tuner, diagnostics) intentionally starts fresh.

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{Coord, Cycle, PacketId, PillarId};

use crate::packet::{Delivered, Flit, FlitKind, SendRequest, TrafficClass};
use crate::router::Hold;
use crate::stats::{LatencyHistogram, NetworkStats};

use super::{Network, Pending};

fn save_coord(w: &mut ByteWriter, c: Coord) {
    w.u8(c.x);
    w.u8(c.y);
    w.u8(c.layer);
}

fn restore_coord(r: &mut ByteReader<'_>) -> Result<Coord, CodecError> {
    Ok(Coord::new(r.u8()?, r.u8()?, r.u8()?))
}

fn save_via(w: &mut ByteWriter, via: Option<PillarId>) {
    match via {
        Some(p) => {
            w.u8(1);
            w.u16(p.0);
        }
        None => w.u8(0),
    }
}

fn restore_via(r: &mut ByteReader<'_>) -> Result<Option<PillarId>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(PillarId(r.u16()?))),
        _ => Err(CodecError::Corrupt("bad pillar option tag")),
    }
}

fn restore_class(r: &mut ByteReader<'_>) -> Result<TrafficClass, CodecError> {
    let tag = usize::from(r.u8()?);
    TrafficClass::ALL
        .get(tag)
        .copied()
        .ok_or(CodecError::Corrupt("bad traffic class tag"))
}

fn save_kind(w: &mut ByteWriter, kind: FlitKind) {
    w.u8(match kind {
        FlitKind::Head => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::HeadTail => 3,
    });
}

fn restore_kind(r: &mut ByteReader<'_>) -> Result<FlitKind, CodecError> {
    Ok(match r.u8()? {
        0 => FlitKind::Head,
        1 => FlitKind::Body,
        2 => FlitKind::Tail,
        3 => FlitKind::HeadTail,
        _ => return Err(CodecError::Corrupt("bad flit kind tag")),
    })
}

fn save_flit(w: &mut ByteWriter, f: &Flit) {
    w.u64(f.pkt.0);
    save_kind(w, f.kind);
    save_coord(w, f.src);
    save_coord(w, f.dst);
    save_via(w, f.via);
    w.u8(f.class.index() as u8);
    w.u64(f.token);
    w.u64(f.injected.0);
    w.u64(f.arrived.0);
    w.u16(f.hops);
    w.u32(f.bus_wait);
}

fn restore_flit(r: &mut ByteReader<'_>) -> Result<Flit, CodecError> {
    Ok(Flit {
        pkt: PacketId(r.u64()?),
        kind: restore_kind(r)?,
        src: restore_coord(r)?,
        dst: restore_coord(r)?,
        via: restore_via(r)?,
        class: restore_class(r)?,
        token: r.u64()?,
        injected: Cycle(r.u64()?),
        arrived: Cycle(r.u64()?),
        hops: r.u16()?,
        bus_wait: r.u32()?,
    })
}

fn save_stats(w: &mut ByteWriter, s: &NetworkStats) {
    w.u64(s.packets_sent);
    w.u64(s.packets_delivered);
    w.u64(s.total_latency);
    w.u64(s.max_latency);
    w.u64(s.total_hops);
    w.u64(s.flit_hops);
    for arr in [
        &s.flit_hops_by_class,
        &s.delivered_by_class,
        &s.latency_by_class,
    ] {
        for &v in arr {
            w.u64(v);
        }
    }
    w.u64(s.bus_transfers);
    w.u64(s.switch_contention);
    for &b in s.latency_histogram.buckets() {
        w.u64(b);
    }
}

fn restore_stats(r: &mut ByteReader<'_>) -> Result<NetworkStats, CodecError> {
    let mut s = NetworkStats {
        packets_sent: r.u64()?,
        packets_delivered: r.u64()?,
        total_latency: r.u64()?,
        max_latency: r.u64()?,
        total_hops: r.u64()?,
        flit_hops: r.u64()?,
        ..NetworkStats::default()
    };
    for arr in [
        &mut s.flit_hops_by_class,
        &mut s.delivered_by_class,
        &mut s.latency_by_class,
    ] {
        for v in arr.iter_mut() {
            *v = r.u64()?;
        }
    }
    s.bus_transfers = r.u64()?;
    s.switch_contention = r.u64()?;
    let mut buckets = [0u64; 16];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    s.latency_histogram = LatencyHistogram::from_buckets(buckets);
    Ok(s)
}

fn save_pending(w: &mut ByteWriter, p: &Pending) {
    w.u64(p.id.0);
    save_coord(w, p.req.src);
    save_coord(w, p.req.dst);
    save_via(w, p.req.via);
    w.u8(p.req.class.index() as u8);
    w.u32(p.req.flits);
    w.u64(p.req.token);
    w.u32(p.seq);
    w.u64(p.injected.0);
}

fn restore_pending(r: &mut ByteReader<'_>) -> Result<Pending, CodecError> {
    Ok(Pending {
        id: PacketId(r.u64()?),
        req: SendRequest {
            src: restore_coord(r)?,
            dst: restore_coord(r)?,
            via: restore_via(r)?,
            class: restore_class(r)?,
            flits: r.u32()?,
            token: r.u64()?,
        },
        seq: r.u32()?,
        injected: Cycle(r.u64()?),
    })
}

impl Checkpoint for Network {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(self.now.0);
        w.u64(self.next_pkt);
        w.u64(self.flits_in_flight);
        save_stats(w, &self.stats);
        w.u64_slice(&self.traversals);
        w.u64_slice(&self.bus_ready_at);

        // Routers: ports and VC contents in (node, direction, VC) order.
        w.u32(self.routers.len() as u32);
        for (n, router) in self.routers.iter().enumerate() {
            let st = &self.shards[self.shard_of_node(n)];
            for input in &router.inputs {
                match input {
                    None => w.u8(0),
                    Some(port) => {
                        w.u8(1);
                        w.u8(port.num_vcs() as u8);
                        for v in 0..port.num_vcs() {
                            let vc = port.vc(v);
                            w.opt_u64(vc.owner().map(|p| p.0));
                            w.u16(vc.fifo().len() as u16);
                            for f in vc.fifo().iter(&st.arena) {
                                save_flit(w, f);
                            }
                        }
                    }
                }
            }
            for held in &router.held {
                match held {
                    None => w.u8(0),
                    Some(h) => {
                        w.u8(1);
                        w.u64(h.pkt.0);
                        w.u8(h.in_dir as u8);
                        w.u8(h.vc as u8);
                    }
                }
            }
            for &rr in &router.rr {
                w.u16(rr);
            }
            w.u32(router.occupancy);
        }

        // Injection queues and delivery outboxes, in node order.
        for inj in &self.injectors {
            w.opt_u64(inj.vc.map(|v| v as u64));
            w.u32(inj.queue.len() as u32);
            for p in &inj.queue {
                save_pending(w, p);
            }
        }
        for outbox in &self.outbox {
            w.u32(outbox.len() as u32);
            for d in outbox {
                d.save(w);
            }
        }

        // Buses and their per-layer transceiver interfaces, in (bus,
        // layer) order — shard-agnostic by construction.
        w.u32(self.buses.len() as u32);
        for (b, bus) in self.buses.iter().enumerate() {
            w.usize(bus.rr);
            w.u64(bus.stats.transfers);
            w.u64(bus.stats.busy_cycles);
            w.u64(bus.stats.contention_cycles);
            w.u64(bus.stats.peak_queued);
            for layer in 0..self.layout.layers() {
                let (s, i) = self.iface_pos(b, layer);
                let iface = &self.shards[s].ifaces[i];
                w.opt_u64(iface.bound_vc.map(|v| v as u64));
                w.u16(iface.q.len() as u16);
                for f in iface.q.iter(&self.shards[s].arena) {
                    save_flit(w, f);
                }
            }
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.now = Cycle(r.u64()?);
        self.next_pkt = r.u64()?;
        self.flits_in_flight = r.u64()?;
        self.stats = restore_stats(r)?;
        let traversals = r.u64_vec()?;
        if traversals.len() != self.traversals.len() {
            return Err(CodecError::Corrupt("traversal table size mismatch"));
        }
        self.traversals = traversals;
        let bus_ready_at = r.u64_vec()?;
        if bus_ready_at.len() != self.bus_ready_at.len() {
            return Err(CodecError::Corrupt("bus table size mismatch"));
        }
        self.bus_ready_at = bus_ready_at;

        if r.u32()? as usize != self.routers.len() {
            return Err(CodecError::Corrupt("router count mismatch"));
        }
        let mut flit_buf = Vec::new();
        for n in 0..self.routers.len() {
            let s = self.shard_of_node(n);
            let arena = &mut self.shards[s].arena;
            let router = &mut self.routers[n];
            for input in &mut router.inputs {
                let present = r.u8()? == 1;
                let Some(port) = input.as_mut() else {
                    if present {
                        return Err(CodecError::Corrupt("input port structure mismatch"));
                    }
                    continue;
                };
                if !present {
                    return Err(CodecError::Corrupt("input port structure mismatch"));
                }
                if usize::from(r.u8()?) != port.num_vcs() {
                    return Err(CodecError::Corrupt("VC count mismatch"));
                }
                for v in 0..port.num_vcs() {
                    let owner = r.opt_u64()?.map(PacketId);
                    let count = usize::from(r.u16()?);
                    if count > port.vc(v).fifo().capacity() {
                        return Err(CodecError::Corrupt("VC deeper than its capacity"));
                    }
                    flit_buf.clear();
                    for _ in 0..count {
                        flit_buf.push(restore_flit(r)?);
                    }
                    port.vc_mut(v).restore_flits(arena, &flit_buf, owner);
                }
            }
            for held in &mut router.held {
                *held = match r.u8()? {
                    0 => None,
                    1 => Some(Hold {
                        pkt: PacketId(r.u64()?),
                        in_dir: usize::from(r.u8()?),
                        vc: usize::from(r.u8()?),
                    }),
                    _ => return Err(CodecError::Corrupt("bad hold tag")),
                };
            }
            for rr in &mut router.rr {
                *rr = r.u16()?;
            }
            router.occupancy = r.u32()?;
        }

        for inj in &mut self.injectors {
            inj.vc = r.opt_u64()?.map(|v| v as usize);
            inj.queue.clear();
            for _ in 0..r.u32()? {
                inj.queue.push_back(restore_pending(r)?);
            }
        }
        for outbox in &mut self.outbox {
            outbox.clear();
            for _ in 0..r.u32()? {
                outbox.push_back(Delivered::restore(r)?);
            }
        }

        if r.u32()? as usize != self.buses.len() {
            return Err(CodecError::Corrupt("bus count mismatch"));
        }
        for b in 0..self.buses.len() {
            self.buses[b].rr = r.usize()?;
            self.buses[b].stats.transfers = r.u64()?;
            self.buses[b].stats.busy_cycles = r.u64()?;
            self.buses[b].stats.contention_cycles = r.u64()?;
            self.buses[b].stats.peak_queued = r.u64()?;
            for layer in 0..self.layout.layers() {
                let (s, i) = self.iface_pos(b, layer);
                let bound_vc = r.opt_u64()?.map(|v| v as usize);
                let count = usize::from(r.u16()?);
                let st = &mut self.shards[s];
                if count > st.ifaces[i].q.capacity() {
                    return Err(CodecError::Corrupt("interface deeper than its capacity"));
                }
                st.ifaces[i].bound_vc = bound_vc;
                for _ in 0..count {
                    let f = restore_flit(r)?;
                    st.ifaces[i].q.push_back(&mut st.arena, f);
                }
            }
        }

        // Rebuild the derived work lists from the restored queues (in
        // ascending node/bus order — any deterministic order works; the
        // phases are order-independent, as the shard-invariance suite
        // proves).
        for n in 0..self.routers.len() {
            if self.routers[n].occupancy > 0 {
                self.mark_dirty(n);
            }
        }
        for n in 0..self.injectors.len() {
            if !self.injectors[n].queue.is_empty() {
                self.mark_inj(n);
            }
        }
        for n in 0..self.outbox.len() {
            if !self.outbox[n].is_empty() && !self.in_delivered[n] {
                self.in_delivered[n] = true;
                self.delivered_nodes.push(n as u32);
            }
        }
        for b in 0..self.buses.len() {
            if self.bus_queued(b) > 0 {
                self.mark_bus(b);
            }
        }
        self.obs.set_now(self.now.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::VerticalMode;
    use nim_topology::ChipLayout;
    use nim_types::SystemConfig;

    fn busy_net(shards: usize) -> (ChipLayout, Network) {
        let cfg = SystemConfig::default();
        let layout = ChipLayout::new(&cfg).unwrap();
        let mut net = Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, shards);
        // Mixed traffic: multi-flit cross-layer packets (pillar bus in
        // use), same-layer packets, and a backlog that is still mid-
        // injection when we snapshot.
        for i in 0..12u64 {
            let src = layout.coord_of_index((i as usize * 3) % layout.num_nodes());
            let dst = layout.coord_of_index((i as usize * 7 + 5) % layout.num_nodes());
            net.send(SendRequest {
                src,
                dst,
                via: None,
                class: TrafficClass::ALL[(i % 4) as usize],
                flits: 1 + (i % 4) as u32,
                token: i,
            });
        }
        for _ in 0..6 {
            net.tick();
        }
        (layout, net)
    }

    fn drain_and_digest(net: &mut Network) -> (Vec<Delivered>, NetworkStats, Vec<u64>) {
        net.run_until_idle(10_000).expect("network must drain");
        let mut delivered = net.drain_delivered();
        delivered.sort_by_key(|d| d.packet.0);
        (delivered, net.stats().clone(), net.traversals().to_vec())
    }

    #[test]
    fn snapshot_mid_flight_restores_bit_identically() {
        for (save_shards, restore_shards) in [(1, 1), (1, 2), (2, 1)] {
            let (layout, mut original) = busy_net(save_shards);
            let mut w = ByteWriter::new();
            original.save(&mut w);
            let bytes = w.into_bytes();

            let cfg = SystemConfig::default();
            let mut restored =
                Network::new_sharded(&layout, &cfg.network, VerticalMode::Pillars, restore_shards);
            let mut r = ByteReader::new(&bytes);
            restored.restore(&mut r).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(restored.now(), original.now());

            let a = drain_and_digest(&mut original);
            let b = drain_and_digest(&mut restored);
            assert_eq!(a, b, "shards {save_shards} -> {restore_shards}");
        }
    }

    #[test]
    fn truncated_bytes_error_instead_of_panicking() {
        let (_, original) = busy_net(1);
        let mut w = ByteWriter::new();
        original.save(&mut w);
        let bytes = w.into_bytes();
        let cfg = SystemConfig::default();
        let layout = ChipLayout::new(&cfg).unwrap();
        for cut in [8usize, 100, bytes.len() / 2, bytes.len() - 1] {
            let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(net.restore(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn restore_rejects_a_different_topology() {
        let (_, original) = busy_net(1);
        let mut w = ByteWriter::new();
        original.save(&mut w);
        let bytes = w.into_bytes();
        let mut cfg = SystemConfig::default();
        cfg.network.layers = 1;
        let layout = ChipLayout::new(&cfg).unwrap();
        let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
        let mut r = ByteReader::new(&bytes);
        assert!(net.restore(&mut r).is_err());
    }
}
