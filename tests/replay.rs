//! Record/replay integration: a recorded trace drives the system to the
//! exact same result as the live generator that produced it.

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::types::CpuId;
use network_in_memory::workload::{BenchmarkProfile, ReplayTrace, TraceGenerator, TraceWriter};

#[test]
fn replaying_a_recorded_trace_reproduces_the_run() {
    let bench = BenchmarkProfile::synthetic();
    let cpus = 8u32;

    // Record a long-enough trace from the deterministic generator.
    let mut gen = TraceGenerator::new(&bench, cpus, 77);
    let mut writer = TraceWriter::new(Vec::new()).unwrap();
    let mut recorded = ReplayTrace::default();
    for i in 0..200_000u32 {
        let cpu = CpuId::from_index((i % cpus) as usize);
        let op = gen.next_op(cpu);
        writer.record(cpu, op).unwrap();
        recorded.push(cpu, op);
    }
    let bytes = writer.finish().unwrap();

    // Live run from a fresh generator with the same seed.
    let mut live_gen = TraceGenerator::new(&bench, cpus, 77);
    let live = SystemBuilder::new(Scheme::CmpSnuca3d)
        .warmup_transactions(100)
        .sampled_transactions(800)
        .build()
        .unwrap()
        .run_with_source(bench.name, &mut live_gen)
        .unwrap();

    // Replay from the in-memory queues...
    let mut replay = recorded;
    let from_memory = SystemBuilder::new(Scheme::CmpSnuca3d)
        .warmup_transactions(100)
        .sampled_transactions(800)
        .build()
        .unwrap()
        .run_with_source(bench.name, &mut replay)
        .unwrap();

    // ...and from the serialized file.
    let mut from_disk_trace = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
    let from_disk = SystemBuilder::new(Scheme::CmpSnuca3d)
        .warmup_transactions(100)
        .sampled_transactions(800)
        .build()
        .unwrap()
        .run_with_source(bench.name, &mut from_disk_trace)
        .unwrap();

    assert_eq!(live.counters, from_memory.counters);
    assert_eq!(live.cycles, from_memory.cycles);
    assert_eq!(from_memory.counters, from_disk.counters);
    assert_eq!(from_memory.cycles, from_disk.cycles);
    assert_eq!(from_memory.instructions, from_disk.instructions);
}
