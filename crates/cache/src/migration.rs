//! The cache-line migration policy (paper §4.2.3).
//!
//! Migration moves data *gradually* — one cluster-grid step per qualifying
//! access — toward the accessing processor:
//!
//! * **Intra-layer**: step toward the accessor's cluster, skipping over
//!   clusters that contain *other* processors (so their local access
//!   patterns are not disturbed); repeated access by a single processor
//!   eventually pulls the line into its local cluster.
//! * **Inter-layer**: step toward the cluster (on the line's own layer)
//!   that holds the accessor's pillar. Lines **never** cross layers —
//!   vertically adjacent clusters are already in the accessor's local
//!   vicinity through the single-hop pillar, and staying put saves
//!   migration traffic and power.

use nim_topology::ChipLayout;
use nim_types::{ClusterId, Coord, PillarId};

/// Computes the next cluster a line should migrate to after an access, or
/// `None` if the line should stay where it is.
///
/// ```
/// use nim_cache::migration_target;
/// use nim_topology::ChipLayout;
/// use nim_types::SystemConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layout = ChipLayout::new(&SystemConfig::default().flattened())?;
/// let line = layout.cluster_at_grid(0, 3, 0);
/// let accessor = layout.cluster_at_grid(0, 0, 0);
/// let next = migration_target(&layout, line, accessor, None, &|_| false);
/// assert_eq!(next, Some(layout.cluster_at_grid(0, 2, 0)), "one step closer");
/// # Ok(())
/// # }
/// ```
///
/// * `line_cluster` — where the line currently lives.
/// * `accessor_cluster` — the cluster containing the accessing CPU.
/// * `accessor_pillar` — the accessing CPU's dedicated pillar (used for
///   the inter-layer case); `None` on a single-layer chip.
/// * `has_other_cpu(cl)` — whether cluster `cl` contains a processor
///   *other than* the accessing one.
pub fn migration_target(
    layout: &ChipLayout,
    line_cluster: ClusterId,
    accessor_cluster: ClusterId,
    accessor_pillar: Option<PillarId>,
    has_other_cpu: &dyn Fn(ClusterId) -> bool,
) -> Option<ClusterId> {
    if line_cluster == accessor_cluster {
        return None;
    }
    let line_layer = layout.cluster_layer(line_cluster);
    let acc_layer = layout.cluster_layer(accessor_cluster);
    let target = if line_layer == acc_layer {
        // Intra-layer: head for the accessor's own cluster.
        layout.cluster_grid_pos(accessor_cluster)
    } else {
        // Inter-layer: head for the pillar's cluster on the line's layer.
        let (px, py) = match accessor_pillar {
            Some(p) => layout.pillar_xy(p),
            None => {
                let c = layout.cluster_center(accessor_cluster);
                (c.x, c.y)
            }
        };
        let pillar_cluster = layout.cluster_of(Coord::new(px, py, line_layer));
        layout.cluster_grid_pos(pillar_cluster)
    };
    step_toward(layout, line_cluster, target, has_other_cpu)
}

/// One grid step from `from` toward grid position `target` on the same
/// layer, skipping (jumping over) occupied clusters. Every candidate must
/// strictly reduce the grid Manhattan distance to the target.
fn step_toward(
    layout: &ChipLayout,
    from: ClusterId,
    target: (u8, u8),
    has_other_cpu: &dyn Fn(ClusterId) -> bool,
) -> Option<ClusterId> {
    let layer = layout.cluster_layer(from);
    let (fx, fy) = layout.cluster_grid_pos(from);
    let (tx, ty) = target;
    if (fx, fy) == (tx, ty) {
        return None;
    }
    let (gw, gh) = layout.cluster_grid();
    let dist = |x: u8, y: u8| u32::from(x.abs_diff(tx)) + u32::from(y.abs_diff(ty));
    let here = dist(fx, fy);
    let dx: i16 = (i16::from(tx) - i16::from(fx)).signum();
    let dy: i16 = (i16::from(ty) - i16::from(fy)).signum();
    // Candidates in preference order: one step in x, skip-two in x, one
    // step in y, skip-two in y (x first, matching XY routing).
    let mut candidates: Vec<(i16, i16)> = Vec::with_capacity(4);
    if dx != 0 {
        candidates.push((dx, 0));
        candidates.push((2 * dx, 0));
    }
    if dy != 0 {
        candidates.push((0, dy));
        candidates.push((0, 2 * dy));
    }
    for (cx, cy) in candidates {
        let nx = i16::from(fx) + cx;
        let ny = i16::from(fy) + cy;
        if nx < 0 || ny < 0 || nx >= i16::from(gw) || ny >= i16::from(gh) {
            continue;
        }
        let (nx, ny) = (nx as u8, ny as u8);
        if dist(nx, ny) >= here {
            continue; // skipping must not move the line farther away
        }
        let cl = layout.cluster_at_grid(layer, nx, ny);
        if !has_other_cpu(cl) {
            return Some(cl);
        }
        // Occupied: fall through — the next candidate in the list is the
        // skip-over (or the other axis).
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    fn layout() -> ChipLayout {
        // 2 layers, cluster grid 4x2 per layer.
        ChipLayout::new(&SystemConfig::default()).unwrap()
    }

    fn flat_layout() -> ChipLayout {
        // 1 layer, cluster grid 4x4.
        ChipLayout::new(&SystemConfig::default().flattened()).unwrap()
    }

    const FREE: &dyn Fn(ClusterId) -> bool = &|_| false;

    #[test]
    fn local_lines_stay_put() {
        let l = layout();
        let cl = l.cluster_at_grid(0, 1, 1);
        assert_eq!(migration_target(&l, cl, cl, None, FREE), None);
    }

    #[test]
    fn intra_layer_moves_one_step_toward_accessor() {
        let l = flat_layout();
        let line = l.cluster_at_grid(0, 3, 3);
        let acc = l.cluster_at_grid(0, 0, 3);
        let next = migration_target(&l, line, acc, None, FREE).unwrap();
        assert_eq!(l.cluster_grid_pos(next), (2, 3), "x-first single step");
    }

    #[test]
    fn repeated_steps_reach_the_accessor_cluster() {
        let l = flat_layout();
        let acc = l.cluster_at_grid(0, 0, 0);
        let mut cur = l.cluster_at_grid(0, 3, 3);
        let mut steps = 0;
        while let Some(next) = migration_target(&l, cur, acc, None, FREE) {
            cur = next;
            steps += 1;
            assert!(steps <= 10, "must converge");
        }
        assert_eq!(cur, acc, "single-CPU access pulls the line all the way");
        assert_eq!(steps, 6, "3 x-steps + 3 y-steps");
    }

    #[test]
    fn occupied_cluster_is_skipped_over() {
        let l = flat_layout();
        let line = l.cluster_at_grid(0, 3, 0);
        let acc = l.cluster_at_grid(0, 0, 0);
        let blocked = l.cluster_at_grid(0, 2, 0);
        let occ = move |cl: ClusterId| cl == blocked;
        let next = migration_target(&l, line, acc, None, &occ).unwrap();
        assert_eq!(
            l.cluster_grid_pos(next),
            (1, 0),
            "jumps over the other CPU's cluster to the next closest"
        );
    }

    #[test]
    fn blocked_straight_line_falls_back_to_other_axis() {
        let l = flat_layout();
        let line = l.cluster_at_grid(0, 2, 1);
        let acc = l.cluster_at_grid(0, 0, 0);
        // Both x candidates blocked; y must be used.
        let b1 = l.cluster_at_grid(0, 1, 1);
        let b2 = l.cluster_at_grid(0, 0, 1);
        let occ = move |cl: ClusterId| cl == b1 || cl == b2;
        let next = migration_target(&l, line, acc, None, &occ).unwrap();
        assert_eq!(l.cluster_grid_pos(next), (2, 0));
    }

    #[test]
    fn adjacent_but_occupied_target_means_stay() {
        let l = flat_layout();
        let line = l.cluster_at_grid(0, 1, 0);
        let acc = l.cluster_at_grid(0, 0, 0);
        // The only improving candidate contains another CPU, and skipping
        // two would overshoot (not closer). Line must stay.
        let occ = move |cl: ClusterId| cl == acc;
        assert_eq!(migration_target(&l, line, acc, None, &occ), None);
    }

    #[test]
    fn inter_layer_lines_never_change_layers() {
        let l = layout();
        // Accessor on layer 0, line on layer 1.
        let acc = l.cluster_at_grid(0, 0, 0);
        let line = l.cluster_at_grid(1, 3, 1);
        let pillar = l.nearest_pillar(l.cluster_center(acc));
        let mut cur = line;
        for _ in 0..10 {
            match migration_target(&l, cur, acc, pillar, FREE) {
                Some(next) => {
                    assert_eq!(
                        l.cluster_layer(next),
                        1,
                        "inter-layer migration stays on the line's layer"
                    );
                    cur = next;
                }
                None => break,
            }
        }
        // Converged to the cluster holding the pillar's (x, y) on layer 1.
        let (px, py) = l.pillar_xy(pillar.unwrap());
        let expect = l.cluster_of(Coord::new(px, py, 1));
        assert_eq!(cur, expect);
    }

    #[test]
    fn convergence_is_monotone_in_grid_distance() {
        let l = flat_layout();
        let acc = l.cluster_at_grid(0, 1, 2);
        let target = l.cluster_grid_pos(acc);
        let mut cur = l.cluster_at_grid(0, 3, 0);
        let mut last = {
            let (x, y) = l.cluster_grid_pos(cur);
            u32::from(x.abs_diff(target.0)) + u32::from(y.abs_diff(target.1))
        };
        while let Some(next) = migration_target(&l, cur, acc, None, FREE) {
            let (x, y) = l.cluster_grid_pos(next);
            let d = u32::from(x.abs_diff(target.0)) + u32::from(y.abs_diff(target.1));
            assert!(d < last, "every step gets strictly closer");
            last = d;
            cur = next;
        }
        assert_eq!(cur, acc);
    }
}
