//! Ablation — the §3.1 design search: dTDMA bus pillars vs the rejected
//! 7-port full-3D-mesh router as the vertical interconnect.
//!
//! The 7-port router's enlarged crossbar and more complicated switch
//! arbiters prevent the speculative single-cycle pipeline, so the mesh3d
//! configuration runs with 2-cycle routers (every router in that design
//! is 7-port). Identical random traffic is driven through both fabrics;
//! the printed average latencies reproduce the paper's conclusion that
//! the bus is the better vertical gateway below 9 layers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::ChipLayout;
use nim_types::{Coord, SystemConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn traffic(layout: &ChipLayout, seed: u64, count: usize) -> Vec<(Coord, Coord, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let src = Coord::new(
                rng.random_range(0..layout.width()),
                rng.random_range(0..layout.height()),
                rng.random_range(0..layout.layers()),
            );
            let dst = Coord::new(
                rng.random_range(0..layout.width()),
                rng.random_range(0..layout.height()),
                rng.random_range(0..layout.layers()),
            );
            let flits = if rng.random_bool(0.5) { 1 } else { 4 };
            (src, dst, flits)
        })
        .collect()
}

fn run(mode: VerticalMode, layers: u8) -> f64 {
    let mut cfg = SystemConfig::default().with_layers(layers);
    if mode == VerticalMode::Mesh3d {
        // 7-port routers cannot close single-cycle timing (§3.1).
        cfg.network.router_latency = 2;
    }
    let layout = ChipLayout::new(&cfg).expect("layout");
    let mut net = Network::new(&layout, &cfg.network, mode);
    // L2 transactions arrive spread over time, not as a synchronised
    // burst — a burst would saturate any fabric and measure queueing
    // capacity rather than the vertical-gateway design point.
    for (i, (src, dst, flits)) in traffic(&layout, 99, 600).into_iter().enumerate() {
        net.send(SendRequest {
            src,
            dst,
            via: layout.nearest_pillar(src),
            class: TrafficClass::Data,
            flits,
            token: i as u64,
        });
        for _ in 0..10 {
            net.tick();
        }
    }
    net.run_until_idle(1_000_000).expect("drains");
    net.stats().avg_latency()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vertical_link");
    group.sample_size(10);
    group.bench_function("dtdma_pillars_2_layers", |b| {
        b.iter(|| black_box(run(VerticalMode::Pillars, 2)))
    });
    group.bench_function("mesh3d_7port_2_layers", |b| {
        b.iter(|| black_box(run(VerticalMode::Mesh3d, 2)))
    });
    group.finish();
    for layers in [2u8, 4] {
        let bus = run(VerticalMode::Pillars, layers);
        let mesh = run(VerticalMode::Mesh3d, layers);
        eprintln!(
            "ablation: {layers} layers — dTDMA pillars {bus:.2} cycles vs 7-port mesh {mesh:.2} cycles ({})",
            if bus < mesh { "bus wins, as in §3.1" } else { "mesh wins" }
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
