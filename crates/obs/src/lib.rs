//! Observability spine for the network-in-memory simulator.
//!
//! `nim-obs` provides three things, all behind one cheap shared handle:
//!
//! 1. **Cycle-stamped event tracing** — a bounded ring of typed
//!    [`EventData`] records (packet inject/deliver, dTDMA slot grants,
//!    NUCA search probes, migrations, invalidations, bank and memory
//!    accesses) with per-[`Category`] runtime filtering, exported as
//!    Chrome `trace_event` JSON loadable in [Perfetto](https://ui.perfetto.dev).
//! 2. **A metrics registry** — named counters, gauges, and
//!    [`LatencyHistogram`]s (e.g. per-router link utilization,
//!    per-pillar occupancy, per-cluster hit/miss matrices).
//! 3. **An epoch sampler** — snapshots selected metrics every N cycles
//!    and self-profiles simulated-cycles-per-wall-second.
//!
//! The handle is an `Option<Rc<_>>`: a disabled [`Obs`] costs one branch
//! per instrumentation point, and event payloads are built lazily via
//! closures so nothing allocates unless the category is live.
//!
//! ```
//! use nim_obs::{Category, EventData, Obs, ObsConfig};
//!
//! let obs = Obs::new(ObsConfig { trace: true, ..ObsConfig::default() });
//! obs.set_now(17);
//! obs.emit(Category::Pillar, || EventData::BusGrant {
//!     pillar: 0,
//!     from_layer: 1,
//!     to_layer: 0,
//! });
//! obs.counter_add("pillar/0/transfers", 1);
//! assert_eq!(obs.event_count(), 1);
//! assert_eq!(obs.counter("pillar/0/transfers"), 1);
//!
//! let mut trace = Vec::new();
//! obs.export_trace(&mut trace).unwrap();
//! assert!(String::from_utf8(trace).unwrap().contains("slot_grant"));
//! ```
//!
//! The crate is deliberately dependency-free (std only) so it can sit
//! below every simulator crate without cycles and build offline.

#![forbid(unsafe_code)]

mod category;
mod event;
mod hist;
mod json;
mod metrics;
mod ring;
mod sampler;

pub use category::{Category, CategoryMask};
pub use event::{Event, EventData};
pub use hist::LatencyHistogram;
pub use metrics::{Metric, MetricsRegistry};
pub use ring::TraceBuffer;
pub use sampler::{EpochSampler, SampleRow};

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::rc::Rc;

/// Configuration for an enabled [`Obs`] handle.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Record trace events (the metrics registry is always on for an
    /// enabled handle).
    pub trace: bool,
    /// Ring capacity in events; oldest events are evicted past this.
    pub trace_capacity: usize,
    /// Which categories to record when tracing.
    pub mask: CategoryMask,
    /// Snapshot metrics every this many cycles (0 disables sampling).
    pub sample_every: u64,
    /// Emit begin/end latency spans for every Nth transaction
    /// (0 disables transaction spans).
    pub txn_sample: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace: false,
            trace_capacity: 1 << 20,
            mask: CategoryMask::default_trace(),
            sample_every: 0,
            txn_sample: 0,
        }
    }
}

struct Inner {
    now: Cell<u64>,
    tracing: bool,
    mask: CategoryMask,
    trace: RefCell<TraceBuffer>,
    metrics: RefCell<MetricsRegistry>,
    sample_every: u64,
    next_sample: Cell<u64>,
    sampler: RefCell<EpochSampler>,
    txn_sample: u64,
}

/// Shared observability handle threaded through the simulator.
///
/// Cloning is cheap (reference-counted); all clones see the same trace
/// ring, metrics registry, sampler, and current-cycle stamp. A
/// [`Obs::disabled`] handle makes every operation a no-op costing one
/// branch.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Rc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(i) => f
                .debug_struct("Obs")
                .field("now", &i.now.get())
                .field("tracing", &i.tracing)
                .field("events", &i.trace.borrow().len())
                .field("metrics", &i.metrics.borrow().len())
                .finish(),
        }
    }
}

impl Obs {
    /// A handle where every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle per `config`.
    pub fn new(config: ObsConfig) -> Obs {
        Obs {
            inner: Some(Rc::new(Inner {
                now: Cell::new(0),
                tracing: config.trace,
                mask: config.mask,
                trace: RefCell::new(TraceBuffer::new(config.trace_capacity)),
                metrics: RefCell::new(MetricsRegistry::default()),
                sample_every: config.sample_every,
                next_sample: Cell::new(config.sample_every.max(1)),
                sampler: RefCell::new(EpochSampler::new(config.sample_every.max(1))),
                txn_sample: config.txn_sample,
            })),
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Stamps the current simulation cycle (called once per tick by the
    /// component driving time; all subsequent events use this stamp).
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.now.set(cycle);
        }
    }

    /// The last stamped cycle (0 when disabled).
    #[inline]
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now.get())
    }

    /// Whether events of `cat` would currently be recorded. Use to skip
    /// expensive payload prep beyond what [`Obs::emit`]'s laziness covers.
    #[inline]
    pub fn wants(&self, cat: Category) -> bool {
        match &self.inner {
            Some(inner) => inner.tracing && inner.mask.contains(cat),
            None => false,
        }
    }

    /// Whether transaction `txn_id` is selected for begin/end span
    /// emission: tracing must be on, [`Category::Txn`] unfiltered, and
    /// the id a multiple of the configured sampling stride. One branch
    /// when disabled.
    #[inline]
    pub fn txn_span_due(&self, txn_id: u64) -> bool {
        match &self.inner {
            Some(inner) => {
                inner.txn_sample > 0
                    && inner.tracing
                    && inner.mask.contains(Category::Txn)
                    && txn_id.is_multiple_of(inner.txn_sample)
            }
            None => false,
        }
    }

    /// Records an event of `cat` at the current cycle. The payload
    /// closure only runs if the category is live, so call sites pay one
    /// branch when tracing is off or filtered.
    #[inline]
    pub fn emit<F: FnOnce() -> EventData>(&self, cat: Category, f: F) {
        if let Some(inner) = &self.inner {
            if inner.tracing && inner.mask.contains(cat) {
                inner.trace.borrow_mut().push(Event {
                    cycle: inner.now.get(),
                    data: f(),
                });
            }
        }
    }

    /// Adds `delta` to a named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().counter_add(name, delta);
        }
    }

    /// Sets a named counter to an absolute value.
    #[inline]
    pub fn counter_set(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().counter_set(name, value);
        }
    }

    /// Sets a named gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().gauge_set(name, value);
        }
    }

    /// Records one sample into a named histogram.
    #[inline]
    pub fn histogram_record(&self, name: &str, sample: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().histogram_record(name, sample);
        }
    }

    /// Stores a pre-accumulated histogram under `name`.
    pub fn histogram_set(&self, name: &str, h: LatencyHistogram) {
        if let Some(inner) = &self.inner {
            inner.metrics.borrow_mut().histogram_set(name, h);
        }
    }

    /// A counter's current value (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.metrics.borrow().counter(name))
    }

    /// Runs `f` against the metrics registry (None when disabled).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|i| f(&i.metrics.borrow()))
    }

    /// The configured sampling epoch (0 when sampling is off).
    pub fn sample_every(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sample_every)
    }

    /// Whether an epoch boundary has been reached or passed at `now`.
    /// The driver loop checks this each iteration and calls
    /// [`Obs::record_sample`] when true; skipped epochs (fast-forward)
    /// collapse into one snapshot at the next aligned boundary.
    #[inline]
    pub fn sample_due(&self, now: u64) -> bool {
        match &self.inner {
            Some(inner) => inner.sample_every > 0 && now >= inner.next_sample.get(),
            None => false,
        }
    }

    /// The next armed epoch boundary, or `None` when sampling is off.
    /// Drivers that batch-advance the clock use this to emit catch-up
    /// snapshots at every boundary inside the skipped span, keeping the
    /// sample timeline identical to per-cycle execution.
    #[inline]
    pub fn next_sample_at(&self) -> Option<u64> {
        match &self.inner {
            Some(inner) if inner.sample_every > 0 => Some(inner.next_sample.get()),
            _ => None,
        }
    }

    /// Records one snapshot at `now` and arms the next aligned epoch
    /// (`(now / every + 1) * every`).
    pub fn record_sample(&self, now: u64, pairs: &[(&str, f64)]) {
        if let Some(inner) = &self.inner {
            if inner.sample_every == 0 {
                return;
            }
            inner.sampler.borrow_mut().record(now, pairs);
            let every = inner.sample_every;
            inner.next_sample.set((now / every + 1) * every);
        }
    }

    /// Records one snapshot at `now` from parallel `names`/`values`
    /// slices and arms the next aligned epoch — the allocation-lean
    /// sibling of [`Obs::record_sample`] for callers that precompute
    /// their column names once and reuse a values buffer every epoch.
    pub fn record_sample_cols(&self, now: u64, names: &[String], values: &[f64]) {
        if let Some(inner) = &self.inner {
            if inner.sample_every == 0 {
                return;
            }
            inner.sampler.borrow_mut().record_cols(now, names, values);
            let every = inner.sample_every;
            inner.next_sample.set((now / every + 1) * every);
        }
    }

    /// The sampler's column layout and recorded rows, cloned for
    /// snapshotting (`None` when disabled).
    pub fn sampler_state(&self) -> Option<(Vec<String>, Vec<SampleRow>)> {
        self.inner.as_ref().map(|i| {
            let s = i.sampler.borrow();
            (s.columns().to_vec(), s.rows().to_vec())
        })
    }

    /// Restores the sampler's columns/rows and re-arms the next epoch
    /// boundary (snapshot resume). A no-op when disabled.
    pub fn restore_sampler_state(
        &self,
        columns: Vec<String>,
        rows: Vec<SampleRow>,
        next_sample: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.sampler.borrow_mut().restore_rows(columns, rows);
            inner.next_sample.set(next_sample);
        }
    }

    /// Every registered metric, name-ordered and cloned for
    /// snapshotting (`None` when disabled).
    pub fn metrics_state(&self) -> Option<Vec<(String, Metric)>> {
        self.with_metrics(|m| {
            m.iter()
                .map(|(name, metric)| (name.to_string(), metric.clone()))
                .collect()
        })
    }

    /// Reinserts metrics captured by [`Obs::metrics_state`] (snapshot
    /// resume). A no-op when disabled.
    pub fn restore_metrics_state(&self, entries: Vec<(String, Metric)>) {
        if let Some(inner) = &self.inner {
            let mut metrics = inner.metrics.borrow_mut();
            for (name, metric) in entries {
                metrics.set(name, metric);
            }
        }
    }

    /// The configuration this handle was created with (`None` when
    /// disabled) — enough for a snapshot to rebuild an equivalent
    /// handle on resume.
    pub fn config(&self) -> Option<ObsConfig> {
        self.inner.as_ref().map(|i| ObsConfig {
            trace: i.tracing,
            trace_capacity: i.trace.borrow().capacity(),
            mask: i.mask,
            sample_every: i.sample_every,
            txn_sample: i.txn_sample,
        })
    }

    /// The cycle of the most recently recorded sample row (`None` when
    /// disabled or before the first row).
    pub fn last_sample_cycle(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|i| i.sampler.borrow().rows().last().map(|r| r.cycle))
    }

    /// Hashes the Chrome-JSON rendering of every buffered event stamped
    /// at or after `cycle`. Two handles driven by the same binary agree
    /// on this digest iff their trace suffixes match line-for-line
    /// (the hasher is std's `DefaultHasher`, so digests are only
    /// comparable within one build).
    pub fn trace_digest_from(&self, cycle: u64) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        if let Some(inner) = &self.inner {
            let trace = inner.trace.borrow();
            let mut line = String::new();
            for event in trace.iter() {
                if event.cycle < cycle {
                    continue;
                }
                line.clear();
                event.write_chrome_json(&mut line);
                line.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Simulated cycles per wall-clock second measured by the sampler.
    pub fn cycles_per_sec(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.sampler.borrow().cycles_per_sec())
    }

    /// Events currently in the ring.
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.trace.borrow().len())
    }

    /// Events evicted from a full ring.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.trace.borrow().dropped())
    }

    /// Writes the trace as a Chrome `trace_event` JSON array — one
    /// object per line — loadable in Perfetto or `chrome://tracing`.
    /// Includes per-category track names, every buffered event, the
    /// epoch-sampled series as counter (`"ph":"C"`) events, and a final
    /// summary record. 1 trace µs = 1 simulated cycle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn export_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = match &self.inner {
            Some(i) => i,
            None => return w.write_all(b"[]\n"),
        };
        let mut line = String::new();
        w.write_all(b"[\n")?;
        let mut first = true;
        let flush = |w: &mut dyn Write, line: &mut String, first: &mut bool| -> io::Result<()> {
            if !*first {
                w.write_all(b",\n")?;
            }
            *first = false;
            w.write_all(line.as_bytes())?;
            line.clear();
            Ok(())
        };
        // Name one Perfetto track per category.
        for cat in Category::ALL {
            let _ = write!(
                line,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                cat.index(),
                cat.name()
            );
            flush(w, &mut line, &mut first)?;
        }
        let trace = inner.trace.borrow();
        for event in trace.iter() {
            event.write_chrome_json(&mut line);
            flush(w, &mut line, &mut first)?;
        }
        // Epoch-sampled series render as counter tracks.
        let sampler = inner.sampler.borrow();
        if inner.sample_every > 0 {
            for row in sampler.rows() {
                for (col, name) in sampler.columns().iter().enumerate() {
                    let v = row.values.get(col).copied().unwrap_or(0.0);
                    line.push_str("{\"name\":");
                    json::push_json_string(&mut line, name);
                    let _ = write!(
                        line,
                        ",\"cat\":\"meta\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                        row.cycle,
                        json::json_f64(v)
                    );
                    flush(w, &mut line, &mut first)?;
                }
            }
        }
        let _ = write!(
            line,
            "{{\"name\":\"trace_summary\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\
             \"args\":{{\"events\":{},\"dropped\":{},\"cycles_per_sec\":{}}}}}",
            inner.now.get(),
            Category::Meta.index(),
            trace.len(),
            trace.dropped(),
            json::json_f64(sampler.cycles_per_sec())
        );
        flush(w, &mut line, &mut first)?;
        w.write_all(b"\n]\n")
    }

    /// Writes the metrics registry and epoch-sample table as one JSON
    /// document: `{"final": {...}, "epochs": {...} | null}`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn export_metrics(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = match &self.inner {
            Some(i) => i,
            None => return w.write_all(b"{}\n"),
        };
        let mut out = String::from("{\n\"final\": ");
        inner.metrics.borrow().write_json(&mut out);
        out.push_str(",\n\"epochs\": ");
        if inner.sample_every > 0 {
            inner.sampler.borrow().write_json(&mut out);
        } else {
            out.push_str("null");
        }
        out.push_str("\n}\n");
        w.write_all(out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.set_now(100);
        obs.emit(Category::Packet, || panic!("payload must not be built"));
        obs.counter_add("x", 1);
        assert!(!obs.is_enabled());
        assert_eq!(obs.now(), 0);
        assert_eq!(obs.counter("x"), 0);
        assert!(!obs.sample_due(1_000_000));
        let mut buf = Vec::new();
        obs.export_trace(&mut buf).unwrap();
        assert_eq!(buf, b"[]\n");
    }

    #[test]
    fn filtered_categories_skip_payload_construction() {
        let obs = Obs::new(ObsConfig {
            trace: true,
            mask: CategoryMask::NONE.with(Category::Packet),
            ..ObsConfig::default()
        });
        obs.emit(Category::Hop, || panic!("hop is filtered out"));
        obs.emit(Category::Packet, || EventData::MemFill { line: 1 });
        // MemFill is a Memory-category payload but was emitted under
        // Packet: emit() trusts the caller's category for filtering.
        assert_eq!(obs.event_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig {
            trace: true,
            ..ObsConfig::default()
        });
        let other = obs.clone();
        other.set_now(7);
        other.counter_add("shared", 2);
        obs.emit(Category::Memory, || EventData::MemRequest { line: 9 });
        assert_eq!(obs.now(), 7);
        assert_eq!(obs.counter("shared"), 2);
        assert_eq!(other.event_count(), 1);
    }

    #[test]
    fn sampling_aligns_to_epochs() {
        let obs = Obs::new(ObsConfig {
            sample_every: 100,
            ..ObsConfig::default()
        });
        assert!(!obs.sample_due(99));
        assert!(obs.sample_due(100));
        obs.record_sample(100, &[("m", 1.0)]);
        assert!(!obs.sample_due(150));
        // A fast-forward past several epochs samples once, then re-aligns.
        assert!(obs.sample_due(437));
        obs.record_sample(437, &[("m", 2.0)]);
        assert!(!obs.sample_due(499));
        assert!(obs.sample_due(500));
    }

    #[test]
    fn next_sample_at_tracks_armed_epoch() {
        assert_eq!(Obs::disabled().next_sample_at(), None);
        let obs = Obs::new(ObsConfig {
            sample_every: 100,
            ..ObsConfig::default()
        });
        assert_eq!(obs.next_sample_at(), Some(100));
        obs.record_sample(100, &[("m", 1.0)]);
        assert_eq!(obs.next_sample_at(), Some(200));
        obs.record_sample(437, &[("m", 2.0)]);
        assert_eq!(obs.next_sample_at(), Some(500));
    }

    #[test]
    fn txn_span_sampling_strides_over_ids() {
        assert!(!Obs::disabled().txn_span_due(0));
        let off = Obs::new(ObsConfig {
            trace: true,
            ..ObsConfig::default()
        });
        assert!(!off.txn_span_due(0), "txn_sample 0 keeps spans off");
        let every3 = Obs::new(ObsConfig {
            trace: true,
            txn_sample: 3,
            ..ObsConfig::default()
        });
        assert!(every3.txn_span_due(0));
        assert!(!every3.txn_span_due(1));
        assert!(every3.txn_span_due(6));
        let untraced = Obs::new(ObsConfig {
            txn_sample: 1,
            ..ObsConfig::default()
        });
        assert!(!untraced.txn_span_due(0), "spans need the trace ring");
        let filtered = Obs::new(ObsConfig {
            trace: true,
            txn_sample: 1,
            mask: CategoryMask::ALL.without(Category::Txn),
            ..ObsConfig::default()
        });
        assert!(!filtered.txn_span_due(0));
    }

    #[test]
    fn trace_export_is_valid_json_lines() {
        let obs = Obs::new(ObsConfig {
            trace: true,
            sample_every: 10,
            ..ObsConfig::default()
        });
        obs.set_now(5);
        obs.emit(Category::Packet, || EventData::PacketInject {
            packet: 1,
            src: [0, 0, 0],
            dst: [1, 2, 0],
            class: "data",
            flits: 5,
        });
        obs.record_sample(10, &[("occ", 0.5)]);
        let mut buf = Vec::new();
        obs.export_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        // Every line between the brackets is one JSON object.
        for line in text.lines() {
            let line = line.trim_end_matches(',');
            if line == "[" || line == "]" || line.is_empty() {
                continue;
            }
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(text.contains("\"inject\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("trace_summary"));
    }
}
