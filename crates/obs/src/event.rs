//! Typed trace events and their Chrome `trace_event` serialization.

use std::fmt::Write as _;

use crate::category::Category;
use crate::json::push_json_string;

/// One cycle-stamped trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// The typed payload.
    pub data: EventData,
}

/// Event payloads, one variant per instrumented point in the simulator.
///
/// Fields are plain integers (node/cluster indices, line addresses) so
/// the crate stays dependency-free; callers translate their own id
/// types. Coordinates are `[x, y, z]` triples.
#[derive(Clone, Debug, PartialEq)]
pub enum EventData {
    /// A packet entered the network.
    PacketInject {
        packet: u64,
        src: [u16; 3],
        dst: [u16; 3],
        class: &'static str,
        flits: u32,
    },
    /// A packet's tail flit was ejected at its destination.
    PacketDeliver {
        packet: u64,
        dst: [u16; 3],
        latency: u64,
        hops: u32,
    },
    /// One flit crossed a router (high volume; off by default).
    FlitHop { at: [u16; 3], class: &'static str },
    /// A dTDMA pillar bus granted its slot to a layer interface.
    BusGrant {
        pillar: u32,
        from_layer: u16,
        to_layer: u16,
    },
    /// Multiple interfaces wanted the same dTDMA slot.
    BusContention { pillar: u32, waiting: u32 },
    /// A NUCA search step (1 = local cluster, 2 = pillar broadcast).
    SearchStep { txn: u64, step: u8, targets: u32 },
    /// A probe arrived at a candidate cluster.
    Probe { txn: u64, cluster: u32, step: u8 },
    /// A probe found the line.
    ProbeHit { txn: u64, cluster: u32 },
    /// Every probed cluster missed; the search widens or goes off-chip.
    ProbeMiss { txn: u64, step: u8 },
    /// The search restarted (line was mid-migration or contended).
    SearchRetry { txn: u64, attempt: u32 },
    /// A cache line began migrating between clusters.
    MigrationStart { line: u64, from: u32, to: u32 },
    /// A migration's data arrived and the move committed.
    MigrationCommit { line: u64, from: u32, to: u32 },
    /// A migration was abandoned (e.g. destination set filled).
    MigrationAbort { line: u64, from: u32, to: u32 },
    /// The directory invalidated one L1 copy.
    Invalidate { line: u64, cpu: u32 },
    /// The directory invalidated every sharer of a line.
    InvalidateAll { line: u64, sharers: u32 },
    /// A data-bank port serviced an access.
    BankAccess { node: u32, write: bool },
    /// A resident line was evicted from a cluster's set.
    Eviction { line: u64, cluster: u32 },
    /// A request left the chip for main memory.
    MemRequest { line: u64 },
    /// Main memory returned a line.
    MemFill { line: u64 },
    /// Free-form annotation (also exercises JSON escaping).
    Note { label: String },
    /// A sampled transaction was issued (opens a Perfetto async span;
    /// paired with [`EventData::TxnEnd`] via the transaction id).
    TxnBegin {
        txn: u64,
        cpu: u32,
        kind: &'static str,
    },
    /// A sampled transaction completed, carrying its full latency
    /// decomposition: the five buckets sum to `total` exactly.
    TxnEnd {
        txn: u64,
        noc_hop: u64,
        pillar_wait: u64,
        resource_queue: u64,
        l2_service: u64,
        mem_wait: u64,
        total: u64,
    },
}

impl EventData {
    /// The category this payload belongs to.
    pub fn category(&self) -> Category {
        match self {
            EventData::PacketInject { .. } | EventData::PacketDeliver { .. } => Category::Packet,
            EventData::FlitHop { .. } => Category::Hop,
            EventData::BusGrant { .. } | EventData::BusContention { .. } => Category::Pillar,
            EventData::SearchStep { .. }
            | EventData::Probe { .. }
            | EventData::ProbeHit { .. }
            | EventData::ProbeMiss { .. }
            | EventData::SearchRetry { .. } => Category::Search,
            EventData::MigrationStart { .. }
            | EventData::MigrationCommit { .. }
            | EventData::MigrationAbort { .. } => Category::Migration,
            EventData::Invalidate { .. } | EventData::InvalidateAll { .. } => Category::Coherence,
            EventData::BankAccess { .. } | EventData::Eviction { .. } => Category::Bank,
            EventData::MemRequest { .. } | EventData::MemFill { .. } => Category::Memory,
            EventData::Note { .. } => Category::Meta,
            EventData::TxnBegin { .. } | EventData::TxnEnd { .. } => Category::Txn,
        }
    }

    /// Short event name (the trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventData::PacketInject { .. } => "inject",
            EventData::PacketDeliver { .. } => "deliver",
            EventData::FlitHop { .. } => "hop",
            EventData::BusGrant { .. } => "slot_grant",
            EventData::BusContention { .. } => "contention",
            EventData::SearchStep { .. } => "search_step",
            EventData::Probe { .. } => "probe",
            EventData::ProbeHit { .. } => "probe_hit",
            EventData::ProbeMiss { .. } => "probe_miss",
            EventData::SearchRetry { .. } => "search_retry",
            EventData::MigrationStart { .. } => "migration_start",
            EventData::MigrationCommit { .. } => "migration_commit",
            EventData::MigrationAbort { .. } => "migration_abort",
            EventData::Invalidate { .. } => "invalidate",
            EventData::InvalidateAll { .. } => "invalidate_all",
            EventData::BankAccess { .. } => "bank_access",
            EventData::Eviction { .. } => "eviction",
            EventData::MemRequest { .. } => "mem_request",
            EventData::MemFill { .. } => "mem_fill",
            EventData::Note { .. } => "note",
            EventData::TxnBegin { .. } | EventData::TxnEnd { .. } => "txn",
        }
    }

    /// Chrome `ph` phase and async-span id: instant events are
    /// `("i", None)`; transaction spans pair `"b"`/`"e"` events through
    /// the transaction id so Perfetto renders them as one async slice.
    fn phase(&self) -> (&'static str, Option<u64>) {
        match self {
            EventData::TxnBegin { txn, .. } => ("b", Some(*txn)),
            EventData::TxnEnd { txn, .. } => ("e", Some(*txn)),
            _ => ("i", None),
        }
    }

    fn write_args(&self, out: &mut String) {
        match self {
            EventData::PacketInject {
                packet,
                src,
                dst,
                class,
                flits,
            } => {
                let _ = write!(
                    out,
                    "\"packet\":{packet},\"src\":\"{},{},{}\",\"dst\":\"{},{},{}\",\"class\":\"{class}\",\"flits\":{flits}",
                    src[0], src[1], src[2], dst[0], dst[1], dst[2]
                );
            }
            EventData::PacketDeliver {
                packet,
                dst,
                latency,
                hops,
            } => {
                let _ = write!(
                    out,
                    "\"packet\":{packet},\"dst\":\"{},{},{}\",\"latency\":{latency},\"hops\":{hops}",
                    dst[0], dst[1], dst[2]
                );
            }
            EventData::FlitHop { at, class } => {
                let _ = write!(
                    out,
                    "\"at\":\"{},{},{}\",\"class\":\"{class}\"",
                    at[0], at[1], at[2]
                );
            }
            EventData::BusGrant {
                pillar,
                from_layer,
                to_layer,
            } => {
                let _ = write!(
                    out,
                    "\"pillar\":{pillar},\"from_layer\":{from_layer},\"to_layer\":{to_layer}"
                );
            }
            EventData::BusContention { pillar, waiting } => {
                let _ = write!(out, "\"pillar\":{pillar},\"waiting\":{waiting}");
            }
            EventData::SearchStep { txn, step, targets } => {
                let _ = write!(out, "\"txn\":{txn},\"step\":{step},\"targets\":{targets}");
            }
            EventData::Probe { txn, cluster, step } => {
                let _ = write!(out, "\"txn\":{txn},\"cluster\":{cluster},\"step\":{step}");
            }
            EventData::ProbeHit { txn, cluster } => {
                let _ = write!(out, "\"txn\":{txn},\"cluster\":{cluster}");
            }
            EventData::ProbeMiss { txn, step } => {
                let _ = write!(out, "\"txn\":{txn},\"step\":{step}");
            }
            EventData::SearchRetry { txn, attempt } => {
                let _ = write!(out, "\"txn\":{txn},\"attempt\":{attempt}");
            }
            EventData::MigrationStart { line, from, to }
            | EventData::MigrationCommit { line, from, to }
            | EventData::MigrationAbort { line, from, to } => {
                let _ = write!(out, "\"line\":{line},\"from\":{from},\"to\":{to}");
            }
            EventData::Invalidate { line, cpu } => {
                let _ = write!(out, "\"line\":{line},\"cpu\":{cpu}");
            }
            EventData::InvalidateAll { line, sharers } => {
                let _ = write!(out, "\"line\":{line},\"sharers\":{sharers}");
            }
            EventData::BankAccess { node, write } => {
                let _ = write!(out, "\"node\":{node},\"write\":{write}");
            }
            EventData::Eviction { line, cluster } => {
                let _ = write!(out, "\"line\":{line},\"cluster\":{cluster}");
            }
            EventData::MemRequest { line } | EventData::MemFill { line } => {
                let _ = write!(out, "\"line\":{line}");
            }
            EventData::Note { label } => {
                out.push_str("\"label\":");
                push_json_string(out, label);
            }
            EventData::TxnBegin { txn, cpu, kind } => {
                let _ = write!(out, "\"txn\":{txn},\"cpu\":{cpu},\"kind\":\"{kind}\"");
            }
            EventData::TxnEnd {
                txn,
                noc_hop,
                pillar_wait,
                resource_queue,
                l2_service,
                mem_wait,
                total,
            } => {
                let _ = write!(
                    out,
                    "\"txn\":{txn},\"noc_hop\":{noc_hop},\"pillar_wait\":{pillar_wait},\
                     \"resource_queue\":{resource_queue},\"l2_service\":{l2_service},\
                     \"mem_wait\":{mem_wait},\"total\":{total}"
                );
            }
        }
    }
}

impl Event {
    /// Appends this event as one Chrome `trace_event` instant-event JSON
    /// object (no trailing newline or comma). `ts` is the simulation
    /// cycle, mapped 1 cycle = 1 µs; `tid` is the category track.
    pub fn write_chrome_json(&self, out: &mut String) {
        let cat = self.data.category();
        match self.data.phase() {
            // Async span halves carry an `id` (pairs "b" with "e") and
            // no instant scope.
            (ph, Some(id)) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"id\":{id},\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{",
                    self.data.name(),
                    cat.name(),
                    self.cycle,
                    cat.index()
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{",
                    self.data.name(),
                    cat.name(),
                    self.cycle,
                    cat.index()
                );
            }
        }
        self.data.write_args(out);
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_as_instant_event() {
        let e = Event {
            cycle: 42,
            data: EventData::BusGrant {
                pillar: 3,
                from_layer: 0,
                to_layer: 1,
            },
        };
        let mut out = String::new();
        e.write_chrome_json(&mut out);
        assert_eq!(
            out,
            "{\"name\":\"slot_grant\",\"cat\":\"pillar\",\"ph\":\"i\",\"ts\":42,\"pid\":0,\
             \"tid\":2,\"s\":\"t\",\"args\":{\"pillar\":3,\"from_layer\":0,\"to_layer\":1}}"
        );
    }

    #[test]
    fn txn_spans_serialize_as_async_pairs() {
        let b = Event {
            cycle: 100,
            data: EventData::TxnBegin {
                txn: 7,
                cpu: 2,
                kind: "read",
            },
        };
        let mut out = String::new();
        b.write_chrome_json(&mut out);
        assert_eq!(
            out,
            "{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"b\",\"id\":7,\"ts\":100,\"pid\":0,\
             \"tid\":9,\"args\":{\"txn\":7,\"cpu\":2,\"kind\":\"read\"}}"
        );

        let e = Event {
            cycle: 130,
            data: EventData::TxnEnd {
                txn: 7,
                noc_hop: 19,
                pillar_wait: 0,
                resource_queue: 6,
                l2_service: 5,
                mem_wait: 0,
                total: 30,
            },
        };
        out.clear();
        e.write_chrome_json(&mut out);
        assert_eq!(
            out,
            "{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"e\",\"id\":7,\"ts\":130,\"pid\":0,\
             \"tid\":9,\"args\":{\"txn\":7,\"noc_hop\":19,\"pillar_wait\":0,\
             \"resource_queue\":6,\"l2_service\":5,\"mem_wait\":0,\"total\":30}}"
        );
    }

    #[test]
    fn note_labels_are_escaped() {
        let e = Event {
            cycle: 0,
            data: EventData::Note {
                label: "tab\t\"quote\"".to_string(),
            },
        };
        let mut out = String::new();
        e.write_chrome_json(&mut out);
        assert!(out.contains("\\t"));
        assert!(out.contains("\\\"quote\\\""));
    }
}
