//! Migration study: how much data movement does each scheme generate,
//! and what does it cost in network traffic and energy?
//!
//! Reproduces the reasoning behind the paper's Figure 14: the 3D
//! topology needs far fewer migrations than 2D because whole layers sit
//! in each CPU's vicinity, and fewer movements mean less network traffic
//! and lower L2 power.
//!
//! ```sh
//! cargo run --release --example migration_study
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = BenchmarkProfile::mgrid();
    println!(
        "migration behaviour on {} ({} L2 transactions sampled)\n",
        bench.name, 20_000
    );
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "scheme", "migrations", "per txn", "migr. flit-hops", "invalidations", "L2 mJ"
    );
    let mut base_migrations = None;
    for scheme in [
        Scheme::CmpDnuca2d,
        Scheme::CmpDnuca,
        Scheme::CmpDnuca3d,
        Scheme::CmpSnuca3d,
    ] {
        let report = SystemBuilder::new(scheme)
            .seed(7)
            .warmup_transactions(2_000)
            .sampled_transactions(20_000)
            .build()?
            .run(&bench)?;
        let migr = report.counters.migrations;
        if scheme == Scheme::CmpDnuca2d {
            base_migrations = Some(migr.max(1));
        }
        println!(
            "{:<14} {:>10} {:>12.4} {:>14} {:>14} {:>12.4}",
            scheme.label(),
            migr,
            report.migrations_per_transaction(),
            report.network.flit_hops_by_class
                [network_in_memory::noc::TrafficClass::Migration.index()],
            report.counters.invalidations,
            report.energy().total_j() * 1e3,
        );
        if let Some(base) = base_migrations {
            if scheme == Scheme::CmpDnuca3d {
                println!(
                    "  -> CMP-DNUCA-3D migrates {:.0}% as often as CMP-DNUCA-2D (paper Fig. 14)",
                    migr as f64 / base as f64 * 100.0
                );
            }
        }
    }
    Ok(())
}
