//! Synthesised component figures (paper Table 1) and dTDMA control
//! wiring arithmetic (§3.1).
//!
//! The paper implemented the dTDMA bus components in Verilog and
//! synthesised them with 90 nm TSMC libraries; Table 1 reports the
//! resulting power and area next to a generic 5-port NoC router. Those
//! figures are constants of the design, reproduced here as the component
//! model the rest of the workspace builds on.

/// Power and area of one hardware component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentSpec {
    /// Component name (as in Table 1).
    pub name: &'static str,
    /// Power in watts.
    pub power_w: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// How many instances a design needs ("2 per client", ...).
    pub multiplicity: &'static str,
}

/// Generic 5-port NoC router (N, S, E, W, local), 90 nm synthesis.
pub const GENERIC_ROUTER: ComponentSpec = ComponentSpec {
    name: "Generic NoC Router (5-port)",
    power_w: 119.55e-3,
    area_mm2: 0.3748,
    multiplicity: "1 per node",
};

/// dTDMA bus transceiver (Rx/Tx pair), 90 nm synthesis.
pub const DTDMA_TRANSCEIVER: ComponentSpec = ComponentSpec {
    name: "dTDMA Bus Rx/Tx",
    power_w: 97.39e-6,
    area_mm2: 0.00036207,
    multiplicity: "2 per client",
};

/// dTDMA bus arbiter, 90 nm synthesis.
pub const DTDMA_ARBITER: ComponentSpec = ComponentSpec {
    name: "dTDMA Bus Arbiter",
    power_w: 204.98e-6,
    area_mm2: 0.00065480,
    multiplicity: "1 per bus",
};

/// Table 1, in row order.
pub fn table1() -> [ComponentSpec; 3] {
    [GENERIC_ROUTER, DTDMA_TRANSCEIVER, DTDMA_ARBITER]
}

/// Control wires from the dTDMA arbiter to each layer: `3n + log2(n)`
/// for `n` layers (paper §3.1).
///
/// # Panics
///
/// Panics if `layers` is zero.
pub fn control_wires_per_layer(layers: u8) -> u32 {
    assert!(layers > 0, "a bus needs at least one layer");
    3 * u32::from(layers) + u32::from(layers).ilog2()
}

/// Total wires in one pillar: the data bus plus control to every layer.
/// For a 128-bit bus spanning 4 layers this is the paper's 170 wires
/// (128 + 3 × 14).
pub fn pillar_wires(bus_bits: u32, layers: u8) -> u32 {
    bus_bits + 3 * control_wires_per_layer(layers)
}

/// Area and power overhead of adding a vertical port to a router:
/// transceivers (2 per client) plus the per-layer share of the arbiter.
pub fn pillar_node_overhead_area_mm2() -> f64 {
    2.0 * DTDMA_TRANSCEIVER.area_mm2 + DTDMA_ARBITER.area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_verbatim() {
        let [router, rxtx, arb] = table1();
        assert_eq!(router.power_w, 0.11955);
        assert_eq!(router.area_mm2, 0.3748);
        assert_eq!(rxtx.power_w, 97.39e-6);
        assert_eq!(rxtx.area_mm2, 0.00036207);
        assert_eq!(arb.power_w, 204.98e-6);
        assert_eq!(arb.area_mm2, 0.00065480);
    }

    #[test]
    fn dtdma_overhead_is_orders_of_magnitude_below_the_router() {
        // The paper's justification for using the bus as the vertical
        // gateway: area and power overheads are negligible.
        assert!(pillar_node_overhead_area_mm2() < GENERIC_ROUTER.area_mm2 / 100.0);
        let dtdma_power = 2.0 * DTDMA_TRANSCEIVER.power_w + DTDMA_ARBITER.power_w;
        assert!(dtdma_power < GENERIC_ROUTER.power_w / 100.0);
    }

    #[test]
    fn four_layer_pillar_has_170_wires() {
        assert_eq!(control_wires_per_layer(4), 14, "3*4 + log2(4)");
        assert_eq!(pillar_wires(128, 4), 170, "128-bit bus + 42 control");
    }

    #[test]
    fn control_wires_grow_with_layers() {
        assert_eq!(control_wires_per_layer(2), 7);
        assert_eq!(control_wires_per_layer(8), 27);
        assert!(control_wires_per_layer(8) > control_wires_per_layer(4));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        let _ = control_wires_per_layer(0);
    }
}
