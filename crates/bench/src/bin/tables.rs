//! Regenerates Tables 1–3 of the paper.
//!
//! ```sh
//! cargo run --release -p nim-bench --bin tables
//! ```

use std::error::Error;

use nim_core::experiments::table3_thermal;
use nim_power::{pillar_area_vs_router, table1, table2_row, TABLE2_PITCHES_UM};

fn main() -> Result<(), Box<dyn Error>> {
    println!("## Table 1 — area and power overhead of the dTDMA bus (90 nm)");
    println!("{:<30} {:>12} {:>14}", "Component", "Power", "Area");
    for c in table1() {
        let power = if c.power_w >= 1e-3 {
            format!("{:.2} mW", c.power_w * 1e3)
        } else {
            format!("{:.2} uW", c.power_w * 1e6)
        };
        println!("{:<30} {:>12} {:>11.8} mm2", c.name, power, c.area_mm2);
    }

    println!();
    println!("## Table 2 — inter-wafer wiring area (170-wire pillar)");
    println!(
        "{:>10} {:>16} {:>18}",
        "pitch um", "area um2", "vs 5-port router"
    );
    for pitch in TABLE2_PITCHES_UM {
        println!(
            "{:>10} {:>16.1} {:>17.2}%",
            pitch,
            table2_row(pitch),
            pillar_area_vs_router(pitch) * 100.0
        );
    }

    println!();
    println!("## Table 3 — temperature profile of placement configurations");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "Configuration", "Peak C", "Avg C", "Min C"
    );
    for row in table3_thermal()? {
        println!(
            "{:<26} {:>10.2} {:>10.2} {:>10.2}",
            row.config, row.peak_c, row.avg_c, row.min_c
        );
    }
    Ok(())
}
