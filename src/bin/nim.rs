//! `nim` — command-line front end for the network-in-memory simulator.
//!
//! ```sh
//! nim run --scheme dnuca3d --bench swim --sample 20000
//! nim compare --bench mgrid
//! nim thermal
//! nim list
//! ```
//!
//! Argument parsing is deliberately dependency-free (the workspace only
//! uses the pre-approved crates); see `nim help` for the full grammar.

use std::error::Error;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use network_in_memory::core::experiments::{
    check_shard_invariance, latency_breakdown, scale_sweep, table3_thermal, ExperimentScale,
    ScaleSpec,
};
use network_in_memory::core::{FabricKind, Phase, Scheme, SystemBuilder};
use network_in_memory::obs::{CategoryMask, Obs, ObsConfig};
use network_in_memory::topology::{ChipLayout, ShardPlan, TopoSpec};
use network_in_memory::types::{PillarPlacement, SystemConfig};
use network_in_memory::workload::BenchmarkProfile;

const HELP: &str = "\
nim — 3D chip-multiprocessor network-in-memory simulator (ISCA'06)

USAGE:
    nim <COMMAND> [OPTIONS]

COMMANDS:
    run        simulate one scheme on one benchmark
    compare    simulate all four schemes on one benchmark
    breakdown  per-phase latency decomposition, all four schemes
    scale      sweep topologies × fabrics × shard counts; print
               cycles/sec and per-cell fingerprints
    thermal    print the Table 3 thermal profiles
    list       list benchmarks and schemes
    help       show this message

OPTIONS (run / compare):
    --scheme <dnuca|dnuca2d|snuca3d|dnuca3d>   scheme (run only; default dnuca3d)
    --bench <name>                             benchmark profile (default swim)
    --topology <spec>                          'default', '4-layer', '8-layer',
                                               or a comma list of layers=N,
                                               pillars=N, placement=
                                               {spread|corners|diagonal};
                                               explicit flags below override it
    --layers <n>                               device layers (default 2)
    --pillars <n>                              vertical pillars (default 8)
    --l2-scale <1|2|4>                         L2 capacity factor (default 1)
    --fabric <sim|latency-table|ideal>         interconnect substrate: the
                                               cycle-accurate NoC, the analytic
                                               latency-table model, or the
                                               contention-free ideal (default sim)
    --warmup <n>                               warm-up transactions (default 2000)
    --sample <n>                               sampled transactions (default 20000)
    --seed <n>                                 workload seed (default 42)
    --shards <n|auto>                          advance the network as n
                                               cluster-row shards on worker
                                               threads (bit-identical; must
                                               divide the selected topology's
                                               cluster-row count, i.e.
                                               layers × cluster-grid height;
                                               'auto' picks the largest count
                                               up to the machine's cores;
                                               default: NIM_SHARDS, else 1)

OPTIONS (scale; comma lists sweep the grid):
    --bench <name>                             benchmark profile (default swim)
    --layers <a,b,..>                          layer counts (default 2,4,8)
    --cpus <a,b,..>                            CPU counts (default 8)
    --l2-scale <a,b,..>                        L2 capacity factors (default 1)
    --placements <a,b,..>                      pillar placements (default spread)
    --fabric <a,b,..>                          substrates (default sim)
    --shards <a,b,..>                          shard counts (default 1; cells
                                               where shards do not divide the
                                               cluster-row count are skipped)
    --warmup / --sample / --seed               as above

SNAPSHOT / RESUME (run only):
    --snapshot-out <path>     write a resumable checkpoint image; alone,
                              snapshots once at the warmup boundary;
                              with --snapshot-every, overwrites the image
                              every N transactions (rolling checkpoint)
    --snapshot-every <txns>   checkpoint cadence in completed
                              transactions (requires --snapshot-out)
    --resume <path>           reconstruct a checkpointed run and carry it
                              to completion; scheme/benchmark/topology
                              flags are ignored (the image records them),
                              but --shards <n> re-cuts the resumed
                              network (snapshots are shard-agnostic)

OBSERVABILITY (run only; all off by default):
    --trace-out <path>        write a Chrome trace_event JSON file
                              (load it at https://ui.perfetto.dev)
    --trace-filter <cats>     categories to trace: 'all', 'none', or a
                              comma list of packet,hop,pillar,search,
                              migration,coherence,bank,memory,meta;
                              prefix '-' subtracts from all (default:
                              all except the per-flit 'hop' firehose)
    --metrics-out <path>      write final metrics + epoch samples JSON
    --sample-every <cycles>   snapshot metrics every N cycles (0 = off)
    --trace-txn-sample <n>    emit begin/end spans with the per-phase
                              latency breakdown for every n-th
                              transaction (0 = off; implies tracing)
";

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    match s.to_ascii_lowercase().as_str() {
        "dnuca" | "cmp-dnuca" => Ok(Scheme::CmpDnuca),
        "dnuca2d" | "cmp-dnuca-2d" | "2d" => Ok(Scheme::CmpDnuca2d),
        "snuca3d" | "cmp-snuca-3d" | "snuca" => Ok(Scheme::CmpSnuca3d),
        "dnuca3d" | "cmp-dnuca-3d" | "3d" => Ok(Scheme::CmpDnuca3d),
        other => Err(format!("unknown scheme '{other}'")),
    }
}

#[derive(Debug)]
struct Options {
    scheme: Scheme,
    bench: BenchmarkProfile,
    /// Parsed `--topology` overrides, applied before the explicit flags.
    topology: TopoSpec,
    /// `None` keeps the topology's (or the default) layer count.
    layers: Option<u8>,
    /// `None` keeps the topology's (or the default) pillar count.
    pillars: Option<u16>,
    l2_scale: u32,
    fabric: FabricKind,
    warmup: u64,
    sample: u64,
    seed: u64,
    /// `None` keeps the builder default (`NIM_SHARDS`, else 1).
    shards: Option<ShardArg>,
    trace_out: Option<String>,
    trace_filter: CategoryMask,
    metrics_out: Option<String>,
    sample_every: u64,
    txn_sample: u64,
    snapshot_out: Option<String>,
    /// Checkpoint cadence in completed transactions (0 = once, at the
    /// warmup boundary).
    snapshot_every: u64,
    resume: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scheme: Scheme::CmpDnuca3d,
            bench: BenchmarkProfile::swim(),
            topology: TopoSpec::default(),
            layers: None,
            pillars: None,
            l2_scale: 1,
            fabric: FabricKind::Sim,
            warmup: 2_000,
            sample: 20_000,
            seed: 42,
            shards: None,
            trace_out: None,
            trace_filter: CategoryMask::default_trace(),
            metrics_out: None,
            sample_every: 0,
            txn_sample: 0,
            snapshot_out: None,
            snapshot_every: 0,
            resume: None,
        }
    }
}

/// An explicit `--shards` argument: a fixed count, or `auto` (the
/// largest count the topology supports up to the machine's cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardArg {
    Count(usize),
    Auto,
}

impl Options {
    /// The configuration the selected topology flags describe, for
    /// validation ahead of `build()` (which re-derives the same thing).
    fn effective_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::default();
        self.topology.apply(&mut cfg);
        if let Some(l) = self.layers {
            cfg.network.layers = l;
        }
        if let Some(p) = self.pillars {
            cfg.network.pillars = p;
        }
        cfg
    }
}

/// Rejects a `--shards` count the selected topology cannot honour — the
/// shard executor cuts the chip into equal bands of whole cluster rows,
/// so the count must divide `layers × cluster-grid height` or it would
/// be silently clamped. An unbuildable topology is let through here so
/// `build()` reports the real error.
fn validate_shards(shards: usize, cfg: &SystemConfig) -> Result<(), String> {
    let Ok(layout) = ChipLayout::new(cfg) else {
        return Ok(());
    };
    let valid = ShardPlan::valid_counts(&layout);
    if valid.contains(&shards) {
        return Ok(());
    }
    let rows = ShardPlan::cluster_rows(&layout);
    let counts: Vec<String> = valid.iter().map(|d| d.to_string()).collect();
    Err(format!(
        "--shards {shards} does not divide the selected topology's {rows} cluster rows \
         ({} layers x {}-row cluster grid; valid shard counts: {}, or 'auto')",
        cfg.network.layers,
        layout.cluster_grid().1,
        counts.join(", ")
    ))
}

impl Options {
    /// Builds the observability handle the flags ask for — a disabled
    /// handle (one branch per instrumentation point) when no flag is set.
    fn obs(&self) -> Obs {
        if self.trace_out.is_none()
            && self.metrics_out.is_none()
            && self.sample_every == 0
            && self.txn_sample == 0
        {
            return Obs::disabled();
        }
        Obs::new(ObsConfig {
            // Transaction spans live in the trace ring, so sampling them
            // implies tracing even without --trace-out (the run summary
            // still reports the event count).
            trace: self.trace_out.is_some() || self.txn_sample > 0,
            mask: self.trace_filter,
            sample_every: self.sample_every,
            txn_sample: self.txn_sample,
            ..ObsConfig::default()
        })
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => opts.scheme = parse_scheme(&value()?)?,
            "--bench" => {
                let name = value()?;
                opts.bench = BenchmarkProfile::by_name(&name)
                    .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
            }
            "--topology" => {
                opts.topology =
                    TopoSpec::parse(&value()?).map_err(|e| format!("--topology: {e}"))?
            }
            "--layers" => {
                opts.layers = Some(value()?.parse().map_err(|e| format!("--layers: {e}"))?)
            }
            "--pillars" => {
                opts.pillars = Some(value()?.parse().map_err(|e| format!("--pillars: {e}"))?)
            }
            "--l2-scale" => {
                opts.l2_scale = value()?.parse().map_err(|e| format!("--l2-scale: {e}"))?
            }
            "--fabric" => {
                opts.fabric = FabricKind::parse(&value()?)
                    .map_err(|v| format!("--fabric: unknown fabric '{v}'"))?
            }
            "--warmup" => opts.warmup = value()?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--sample" => opts.sample = value()?.parse().map_err(|e| format!("--sample: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--shards" => {
                let v = value()?;
                opts.shards = Some(if v.eq_ignore_ascii_case("auto") {
                    ShardArg::Auto
                } else {
                    ShardArg::Count(v.parse().map_err(|e| format!("--shards: {e}"))?)
                })
            }
            "--trace-out" => opts.trace_out = Some(value()?),
            "--trace-filter" => {
                opts.trace_filter =
                    CategoryMask::parse(&value()?).map_err(|e| format!("--trace-filter: {e}"))?
            }
            "--metrics-out" => opts.metrics_out = Some(value()?),
            "--sample-every" => {
                opts.sample_every = value()?
                    .parse()
                    .map_err(|e| format!("--sample-every: {e}"))?
            }
            "--trace-txn-sample" => {
                opts.txn_sample = value()?
                    .parse()
                    .map_err(|e| format!("--trace-txn-sample: {e}"))?
            }
            "--snapshot-out" => opts.snapshot_out = Some(value()?),
            "--snapshot-every" => {
                opts.snapshot_every = value()?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?
            }
            "--resume" => opts.resume = Some(value()?),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.snapshot_every > 0 && opts.snapshot_out.is_none() {
        return Err("--snapshot-every needs --snapshot-out".into());
    }
    if opts.resume.is_some() && opts.shards == Some(ShardArg::Auto) {
        return Err("--resume takes an explicit --shards count, not 'auto'".into());
    }
    if let Some(ShardArg::Count(n)) = opts.shards {
        if opts.resume.is_none() {
            validate_shards(n, &opts.effective_config())?;
        }
    }
    Ok(opts)
}

/// Runs a freshly built system to completion, pausing at the requested
/// checkpoint stops (`--snapshot-out`/`--snapshot-every`) to overwrite
/// the image at `path` — each pause lands on an epoch boundary, so every
/// image is resumable and the run itself is bit-identical to one that
/// never paused.
fn run_checkpointed(
    system: &mut network_in_memory::core::System,
    bench: &BenchmarkProfile,
    path: &str,
    every: u64,
    warmup: u64,
) -> Result<network_in_memory::core::RunReport, Box<dyn Error>> {
    let mut gen = system.begin(bench);
    // With no cadence, checkpoint once at the warmup boundary — the
    // warmed image sweeps fork from.
    let mut next = if every > 0 { every } else { warmup };
    loop {
        if next == 0 {
            return Ok(system
                .run_until(&mut gen, u64::MAX)?
                .expect("unbounded run finishes"));
        }
        match system.run_until(&mut gen, next)? {
            Some(report) => return Ok(report),
            None => {
                system.snapshot_to(path, &gen)?;
                eprintln!("snapshot after {next} transactions -> {path}");
                next = if every > 0 { next + every } else { 0 };
            }
        }
    }
}

/// Reconstructs a checkpointed run from `--resume` and carries it to
/// completion; the image records the scheme, benchmark, topology, and
/// observability, so only `--shards` applies.
fn run_resumed(opts: &Options, path: &str) -> Result<(), Box<dyn Error>> {
    let shards = match opts.shards {
        Some(ShardArg::Count(n)) => Some(n),
        _ => None,
    };
    let mut resumed = SystemBuilder::resume(path, shards)?;
    let scheme = resumed.system().scheme();
    eprintln!(
        "resumed {} ({}) at cycle {}",
        resumed.benchmark(),
        scheme.label(),
        resumed.system().network().now().0
    );
    let report = resumed.finish()?;
    print_report(scheme, &report);
    Ok(())
}

fn print_report(scheme: Scheme, report: &network_in_memory::core::RunReport) {
    println!(
        "{:<14} avg L2 hit {:>7.2} cy | IPC {:>6.4} | migrations {:>7} | miss {:>6.4} | L2 energy {:>8.4} mJ | fp 0x{:016x}",
        scheme.label(),
        report.avg_l2_hit_latency(),
        report.ipc(),
        report.counters.migrations,
        report.l2_miss_rate(),
        report.energy().total_j() * 1e3,
        report.fingerprint(),
    );
}

fn run_one(opts: &Options, scheme: Scheme, obs: Obs) -> Result<(), Box<dyn Error>> {
    let mut builder = SystemBuilder::new(scheme)
        .topology(&opts.topology)
        .l2_scale(opts.l2_scale)
        .fabric(opts.fabric)
        .warmup_transactions(opts.warmup)
        .sampled_transactions(opts.sample)
        .seed(opts.seed)
        .observability(obs.clone());
    if let Some(l) = opts.layers {
        builder = builder.layers(l);
    }
    if let Some(p) = opts.pillars {
        builder = builder.pillars(p);
    }
    match opts.shards {
        Some(ShardArg::Count(n)) => builder = builder.shards(n),
        Some(ShardArg::Auto) => builder = builder.shards_auto(),
        None => {}
    }
    let mut system = builder.build()?;
    let report = match &opts.snapshot_out {
        Some(path) => run_checkpointed(
            &mut system,
            &opts.bench,
            path,
            opts.snapshot_every,
            opts.warmup,
        )?,
        None => system.run(&opts.bench)?,
    };
    print_report(scheme, &report);
    if let Some(path) = &opts.trace_out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
        obs.export_trace(&mut w)?;
        eprintln!(
            "trace: {} events ({} dropped) -> {path}",
            obs.event_count(),
            obs.dropped_events()
        );
    }
    if let Some(path) = &opts.metrics_out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
        obs.export_metrics(&mut w)?;
        eprintln!("metrics -> {path}");
    }
    if obs.is_enabled() && obs.sample_every() > 0 {
        eprintln!("simulated {:.0} cycles/sec", obs.cycles_per_sec());
    }
    Ok(())
}

#[derive(Debug)]
struct ScaleOptions {
    bench: BenchmarkProfile,
    layers: Vec<u8>,
    cpus: Vec<u32>,
    l2_scales: Vec<u32>,
    placements: Vec<PillarPlacement>,
    fabrics: Vec<FabricKind>,
    shards: Vec<usize>,
    warmup: u64,
    sample: u64,
    seed: u64,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        Self {
            bench: BenchmarkProfile::swim(),
            layers: vec![2, 4, 8],
            cpus: vec![8],
            l2_scales: vec![1],
            placements: vec![PillarPlacement::Spread],
            fabrics: vec![FabricKind::Sim],
            shards: vec![1],
            warmup: 2_000,
            sample: 20_000,
            seed: 42,
        }
    }
}

/// Parses a comma list through `parse` with the flag name in errors.
fn comma_list<T>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = value.split(',').map(|s| parse(s.trim())).collect();
    let items = items.map_err(|e| format!("{flag}: {e}"))?;
    if items.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(items)
}

fn parse_scale_options(args: &[String]) -> Result<ScaleOptions, String> {
    let mut opts = ScaleOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" => {
                let name = value()?;
                opts.bench = BenchmarkProfile::by_name(&name)
                    .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
            }
            "--layers" => {
                opts.layers = comma_list("--layers", &value()?, |s| {
                    s.parse().map_err(|e| format!("{e}"))
                })?
            }
            "--cpus" => {
                opts.cpus = comma_list("--cpus", &value()?, |s| {
                    s.parse().map_err(|e| format!("{e}"))
                })?
            }
            "--l2-scale" => {
                opts.l2_scales = comma_list("--l2-scale", &value()?, |s| {
                    s.parse().map_err(|e| format!("{e}"))
                })?
            }
            "--placements" => {
                opts.placements = comma_list("--placements", &value()?, |s| {
                    PillarPlacement::parse(s).map_err(|v| format!("unknown placement '{v}'"))
                })?
            }
            "--fabric" => {
                opts.fabrics = comma_list("--fabric", &value()?, |s| {
                    FabricKind::parse(s).map_err(|v| format!("unknown fabric '{v}'"))
                })?
            }
            "--shards" => {
                opts.shards = comma_list("--shards", &value()?, |s| {
                    s.parse().map_err(|e| format!("{e}"))
                })?
            }
            "--warmup" => opts.warmup = value()?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--sample" => opts.sample = value()?.parse().map_err(|e| format!("--sample: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// The spec grid of a `scale` invocation, in deterministic row order.
fn scale_grid(opts: &ScaleOptions) -> Vec<ScaleSpec> {
    let mut specs = Vec::new();
    for &layers in &opts.layers {
        for &cpus in &opts.cpus {
            for &l2_scale in &opts.l2_scales {
                for &placement in &opts.placements {
                    for &fabric in &opts.fabrics {
                        for &shards in &opts.shards {
                            specs.push(ScaleSpec {
                                layers,
                                cpus,
                                l2_scale,
                                placement,
                                fabric,
                                shards,
                            });
                        }
                    }
                }
            }
        }
    }
    specs
}

fn cmd_scale(opts: &ScaleOptions) -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        seed: opts.seed,
        warmup: opts.warmup,
        sample: opts.sample,
    };
    let specs = scale_grid(opts);
    println!("benchmark: {}", opts.bench.name);
    let results = scale_sweep(Scheme::CmpDnuca3d, &opts.bench, &specs, scale)?;
    println!(
        "{:<44} {:>12} {:>8} {:>12} {:>8} {:>8} {:>18}",
        "cell", "cycles", "wall s", "cycles/sec", "hits", "misses", "fingerprint"
    );
    let mut cells = Vec::new();
    for (spec, result) in specs.iter().zip(results) {
        match result {
            Some(cell) => {
                println!(
                    "{:<44} {:>12} {:>8.2} {:>12.0} {:>8} {:>8} 0x{:016x}",
                    cell.spec.label(),
                    cell.report.cycles,
                    cell.wall_secs,
                    cell.cycles_per_sec,
                    cell.report.counters.l2_hits,
                    cell.report.counters.l2_misses,
                    cell.fingerprint
                );
                cells.push(cell);
            }
            None => println!("{:<44} skipped (unbuildable cell)", spec.label()),
        }
    }
    if let Err((a, b)) = check_shard_invariance(&cells) {
        return Err(format!("shard-count fingerprint mismatch: [{a}] vs [{b}]").into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let result: Result<(), Box<dyn Error>> = match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "list" => {
            println!("benchmarks (SPEC OMP, Table 5):");
            for b in BenchmarkProfile::all() {
                println!(
                    "  {:<8} paper L2 transactions: {:>12}",
                    b.name, b.paper_l2_transactions
                );
            }
            println!("schemes:");
            for s in Scheme::ALL {
                println!("  {}", s.label());
            }
            Ok(())
        }
        "thermal" => (|| -> Result<(), Box<dyn Error>> {
            println!(
                "{:<26} {:>10} {:>10} {:>10}",
                "configuration", "peak C", "avg C", "min C"
            );
            for row in table3_thermal()? {
                println!(
                    "{:<26} {:>10.2} {:>10.2} {:>10.2}",
                    row.config, row.peak_c, row.avg_c, row.min_c
                );
            }
            Ok(())
        })(),
        "run" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| match opts.resume.clone() {
                Some(path) => run_resumed(&opts, &path),
                None => {
                    println!("benchmark: {}", opts.bench.name);
                    run_one(&opts, opts.scheme, opts.obs())
                }
            }),
        "breakdown" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| {
                println!("benchmark: {}", opts.bench.name);
                let scale = ExperimentScale {
                    seed: opts.seed,
                    warmup: opts.warmup,
                    sample: opts.sample,
                };
                let rows = latency_breakdown(std::slice::from_ref(&opts.bench), scale)?;
                print!("{:<14}", "scheme");
                for phase in Phase::ALL {
                    print!(" {:>14}", phase.name());
                }
                println!(" {:>14}", "total");
                for row in rows {
                    print!("{:<14}", row.scheme.label());
                    for mean in row.phases {
                        print!(" {:>14.2}", mean);
                    }
                    println!(" {:>14.2}", row.total());
                }
                Ok(())
            }),
        "scale" => parse_scale_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| cmd_scale(&opts)),
        "compare" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|mut opts| {
                println!("benchmark: {}", opts.bench.name);
                // Tracing a 4-scheme sweep into one file would interleave
                // unrelated runs, and four schemes would fight over one
                // snapshot image; both are `run` concerns.
                opts.snapshot_out = None;
                for scheme in Scheme::ALL {
                    run_one(&opts, scheme, Obs::disabled())?;
                }
                Ok(())
            }),
        other => Err(format!("unknown command '{other}' (try `nim help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let opts = parse_options(&[]).unwrap();
        assert_eq!(opts.scheme, Scheme::CmpDnuca3d);
        assert_eq!(opts.bench.name, "swim");
        assert_eq!(opts.layers, None);
        assert_eq!(opts.pillars, None);
        assert_eq!(opts.effective_config().network.layers, 2);
        assert_eq!(opts.fabric, FabricKind::Sim);
        assert_eq!(opts.sample, 20_000);
    }

    #[test]
    fn topology_presets_parse_and_flags_override() {
        let opts = parse_options(&args(&["--topology", "8-layer"])).unwrap();
        assert_eq!(opts.topology.layers, Some(8));
        assert_eq!(opts.effective_config().network.layers, 8);
        let opts = parse_options(&args(&["--topology", "8-layer", "--layers", "4"])).unwrap();
        assert_eq!(
            opts.effective_config().network.layers,
            4,
            "explicit --layers wins"
        );
        let opts = parse_options(&args(&[
            "--topology",
            "layers=4,pillars=4,placement=corners",
        ]))
        .unwrap();
        assert_eq!(opts.topology.layers, Some(4));
        assert_eq!(opts.topology.pillars, Some(4));
        assert!(parse_options(&args(&["--topology", "moebius"]))
            .unwrap_err()
            .contains("--topology"));
    }

    #[test]
    fn fabric_flag_parses() {
        let opts = parse_options(&args(&["--fabric", "latency-table"])).unwrap();
        assert_eq!(opts.fabric, FabricKind::LatencyTable);
        assert!(parse_options(&args(&["--fabric", "warp-drive"]))
            .unwrap_err()
            .contains("warp-drive"));
    }

    #[test]
    fn shards_must_divide_the_selected_layer_count() {
        // 3 shards cannot split the default 2-layer stack's 4 cluster rows.
        let err = parse_options(&args(&["--shards", "3"])).unwrap_err();
        assert!(err.contains("does not divide"), "{err}");
        assert!(err.contains("1, 2"), "lists the valid divisors: {err}");
        assert!(err.contains("auto"), "points at --shards auto: {err}");
        // Cluster-row cuts go finer than layers: 4 shards split the
        // 2-layer stack (each layer's cluster grid is 2 rows tall).
        assert!(parse_options(&args(&["--shards", "4"])).is_ok());
        // An unbuildable topology defers its error to build().
        assert!(parse_options(&args(&["--shards", "3", "--layers", "3"])).is_ok());
        assert!(
            parse_options(&args(&["--shards", "4", "--topology", "8-layer"])).is_ok(),
            "validation sees the --topology layer count"
        );
        assert!(
            parse_options(&args(&[
                "--shards",
                "8",
                "--topology",
                "8-layer",
                "--layers",
                "2"
            ]))
            .is_err(),
            "explicit --layers overrides the preset for validation too"
        );
    }

    #[test]
    fn scale_options_parse_comma_grids() {
        let opts = parse_scale_options(&args(&[
            "--layers",
            "2,4",
            "--cpus",
            "4,8",
            "--placements",
            "spread,corners",
            "--fabric",
            "sim,ideal",
            "--shards",
            "1,2",
            "--sample",
            "500",
        ]))
        .unwrap();
        assert_eq!(opts.layers, vec![2, 4]);
        assert_eq!(opts.cpus, vec![4, 8]);
        assert_eq!(opts.placements.len(), 2);
        assert_eq!(opts.fabrics, vec![FabricKind::Sim, FabricKind::Ideal]);
        assert_eq!(opts.shards, vec![1, 2]);
        assert_eq!(opts.sample, 500);
        let grid = scale_grid(&opts);
        assert_eq!(grid.len(), 2 * 2 * 2 * 2 * 2);
        assert!(parse_scale_options(&args(&["--placements", "everywhere"]))
            .unwrap_err()
            .contains("everywhere"));
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse_options(&args(&[
            "--scheme",
            "snuca3d",
            "--bench",
            "mgrid",
            "--layers",
            "4",
            "--pillars",
            "4",
            "--l2-scale",
            "2",
            "--warmup",
            "10",
            "--sample",
            "100",
            "--seed",
            "7",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.scheme, Scheme::CmpSnuca3d);
        assert_eq!(opts.bench.name, "mgrid");
        assert_eq!(opts.layers, Some(4));
        assert_eq!(opts.pillars, Some(4));
        assert_eq!(opts.l2_scale, 2);
        assert_eq!(opts.warmup, 10);
        assert_eq!(opts.sample, 100);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.shards, Some(ShardArg::Count(2)));
    }

    #[test]
    fn shards_defaults_to_builder_choice() {
        assert_eq!(parse_options(&[]).unwrap().shards, None);
        assert!(parse_options(&args(&["--shards", "zero?"]))
            .unwrap_err()
            .contains("--shards"));
    }

    #[test]
    fn shards_auto_parses_on_any_topology() {
        let opts = parse_options(&args(&["--shards", "AUTO"])).unwrap();
        assert_eq!(opts.shards, Some(ShardArg::Auto));
        // 'auto' never fails validation — the builder clamps it.
        assert!(parse_options(&args(&["--shards", "auto", "--layers", "8"])).is_ok());
    }

    #[test]
    fn observability_flags_parse() {
        let opts = parse_options(&args(&[
            "--trace-out",
            "t.json",
            "--trace-filter",
            "packet,pillar",
            "--metrics-out",
            "m.json",
            "--sample-every",
            "1000",
        ]))
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.sample_every, 1_000);
        assert!(opts.obs().is_enabled());
        assert!(parse_options(&args(&["--trace-filter", "bogus"]))
            .unwrap_err()
            .contains("--trace-filter"));
    }

    #[test]
    fn obs_defaults_to_disabled() {
        assert!(!parse_options(&[]).unwrap().obs().is_enabled());
    }

    #[test]
    fn txn_sampling_implies_tracing() {
        let opts = parse_options(&args(&["--trace-txn-sample", "100"])).unwrap();
        assert_eq!(opts.txn_sample, 100);
        let obs = opts.obs();
        assert!(obs.is_enabled(), "span sampling enables observability");
        assert!(obs.txn_span_due(0), "txn 0 is on the stride");
        assert!(!obs.txn_span_due(1), "txn 1 is off the stride");
        assert!(parse_options(&args(&["--trace-txn-sample", "x"]))
            .unwrap_err()
            .contains("--trace-txn-sample"));
    }

    #[test]
    fn snapshot_flags_parse() {
        let opts = parse_options(&args(&[
            "--snapshot-out",
            "ckpt.nim",
            "--snapshot-every",
            "5000",
        ]))
        .unwrap();
        assert_eq!(opts.snapshot_out.as_deref(), Some("ckpt.nim"));
        assert_eq!(opts.snapshot_every, 5_000);
        assert!(parse_options(&args(&["--snapshot-every", "100"]))
            .unwrap_err()
            .contains("--snapshot-out"));
        let opts = parse_options(&args(&["--resume", "ckpt.nim", "--shards", "2"])).unwrap();
        assert_eq!(opts.resume.as_deref(), Some("ckpt.nim"));
        // A resumed network is re-cut from the image's topology, so the
        // flag-derived shard validation does not apply...
        assert!(parse_options(&args(&["--resume", "ckpt.nim", "--shards", "3"])).is_ok());
        // ...but 'auto' needs a builder and is rejected up front.
        assert!(
            parse_options(&args(&["--resume", "ckpt.nim", "--shards", "auto"]))
                .unwrap_err()
                .contains("auto")
        );
    }

    #[test]
    fn scheme_aliases_resolve() {
        assert_eq!(parse_scheme("dnuca").unwrap(), Scheme::CmpDnuca);
        assert_eq!(parse_scheme("CMP-DNUCA-2D").unwrap(), Scheme::CmpDnuca2d);
        assert_eq!(parse_scheme("3d").unwrap(), Scheme::CmpDnuca3d);
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_options(&args(&["--bench", "doom"]))
            .unwrap_err()
            .contains("doom"));
        assert!(parse_options(&args(&["--layers"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_options(&args(&["--bogus"]))
            .unwrap_err()
            .contains("bogus"));
        assert!(parse_options(&args(&["--layers", "xyz"]))
            .unwrap_err()
            .contains("--layers"));
    }
}
