//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros — as a minimal
//! wall-clock harness: each routine is warmed up once, then timed over a
//! fixed number of batches, reporting min/mean per-iteration times.
//! There is no statistical analysis, plotting, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each routine runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each routine; call [`Bencher::iter`] with the code to time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibration pass: also serves as warm-up.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let cal_start = Instant::now();
    f(&mut b);
    let cal = cal_start.elapsed();
    // Aim for ~20 ms per sample so fast routines are resolvable.
    let per_iter = cal.as_nanos().max(1);
    let iters = (20_000_000 / per_iter).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let per: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    let min = per.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = per.iter().sum::<f64>() / per.len().max(1) as f64;
    println!(
        "  {name:<40} min {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        per.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if !secs.is_finite() {
        "n/a".to_string()
    } else if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
