//! Network-wide statistics.

use core::fmt;

use crate::packet::{Delivered, TrafficClass};

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `i` counts packets with latency in `[2^i, 2^(i+1))` cycles
/// (bucket 0 covers 0–1). Sixteen buckets cover everything up to 65 535
/// cycles; longer latencies land in the last bucket.
///
/// ```
/// use nim_noc::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for lat in [12, 14, 90] {
///     h.record(lat);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.quantile_upper_bound(0.6), 16, "two of three are under 16");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 16],
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(15);
        self.buckets[bucket] += 1;
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The smallest latency bound `b` such that at least `quantile` of
    /// samples are `< 2b` (an upper estimate using bucket upper edges).
    pub fn quantile_upper_bound(&self, quantile: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (quantile.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        1 << 16
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.count().max(1);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            writeln!(
                f,
                "[{:>5}, {:>5}) {:>8}  {:>5.1}%",
                1u64 << i,
                1u64 << (i + 1),
                n,
                *n as f64 / total as f64 * 100.0
            )?;
        }
        Ok(())
    }
}

/// Counters accumulated by the network across a run.
///
/// Per-class breakdowns are indexed by [`TrafficClass::index`]; the energy
/// model in `nim-power` consumes the flit-hop and bus-transfer counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets handed to [`Network::send`].
    ///
    /// [`Network::send`]: crate::Network::send
    pub packets_sent: u64,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: u64,
    /// Sum of end-to-end packet latencies (cycles).
    pub total_latency: u64,
    /// Largest single packet latency seen.
    pub max_latency: u64,
    /// Sum of head-flit hop counts over delivered packets.
    pub total_hops: u64,
    /// Individual flit router-to-router traversals (energy proxy).
    pub flit_hops: u64,
    /// Flit traversals by traffic class.
    pub flit_hops_by_class: [u64; 4],
    /// Packets delivered by traffic class.
    pub delivered_by_class: [u64; 4],
    /// Latency sum by traffic class.
    pub latency_by_class: [u64; 4],
    /// Flits carried across all dTDMA buses.
    pub bus_transfers: u64,
    /// Switch-allocation losses (a flit wanted an output but another flit
    /// won it, or downstream had no space/VC).
    pub switch_contention: u64,
    /// End-to-end packet latency distribution.
    pub latency_histogram: LatencyHistogram,
}

impl NetworkStats {
    /// Mean end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Mean latency for one traffic class.
    pub fn avg_latency_for(&self, class: TrafficClass) -> f64 {
        let n = self.delivered_by_class[class.index()];
        if n == 0 {
            0.0
        } else {
            self.latency_by_class[class.index()] as f64 / n as f64
        }
    }

    /// Mean hop count of delivered packets.
    pub fn avg_hops(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.packets_delivered as f64
        }
    }

    pub(crate) fn record_delivery(&mut self, d: &Delivered) {
        self.packets_delivered += 1;
        let lat = d.latency();
        self.latency_histogram.record(lat);
        self.total_latency += lat;
        self.max_latency = self.max_latency.max(lat);
        self.total_hops += u64::from(d.hops);
        self.delivered_by_class[d.class.index()] += 1;
        self.latency_by_class[d.class.index()] += lat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::{Coord, Cycle, PacketId};

    #[test]
    fn averages_handle_empty_stats() {
        let s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.avg_latency_for(TrafficClass::Data), 0.0);
    }

    #[test]
    fn record_delivery_accumulates() {
        let mut s = NetworkStats::default();
        let d = Delivered {
            packet: PacketId(1),
            src: Coord::new(0, 0, 0),
            dst: Coord::new(3, 0, 0),
            class: TrafficClass::Data,
            token: 0,
            injected: Cycle(0),
            delivered: Cycle(10),
            hops: 3,
        };
        s.record_delivery(&d);
        let d2 = Delivered {
            delivered: Cycle(30),
            hops: 5,
            class: TrafficClass::Control,
            ..d
        };
        s.record_delivery(&d2);
        assert_eq!(s.packets_delivered, 2);
        assert_eq!(s.avg_latency(), 20.0);
        assert_eq!(s.avg_hops(), 4.0);
        assert_eq!(s.max_latency, 30);
        assert_eq!(s.avg_latency_for(TrafficClass::Data), 10.0);
        assert_eq!(s.avg_latency_for(TrafficClass::Control), 30.0);
        assert_eq!(s.latency_histogram.count(), 2);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LatencyHistogram::default();
        for lat in [0u64, 1, 2, 3, 4, 7, 8, 1024, 1_000_000] {
            h.record(lat);
        }
        let b = h.buckets();
        assert_eq!(b[0], 2, "0 and 1");
        assert_eq!(b[1], 2, "2 and 3");
        assert_eq!(b[2], 2, "4 and 7");
        assert_eq!(b[3], 1, "8");
        assert_eq!(b[10], 1, "1024");
        assert_eq!(b[15], 1, "overflow bucket");
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(10); // bucket 3: [8, 16)
        }
        for _ in 0..10 {
            h.record(100); // bucket 6: [64, 128)
        }
        assert_eq!(h.quantile_upper_bound(0.5), 16);
        assert_eq!(h.quantile_upper_bound(0.99), 128);
        assert_eq!(LatencyHistogram::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn histogram_display_lists_nonempty_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(5);
        let text = h.to_string();
        assert!(text.contains("[    4,     8)"));
        assert!(text.contains("100.0%"));
    }
}
