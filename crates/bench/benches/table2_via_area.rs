//! Table 2 — inter-wafer wiring area of a 170-wire pillar at the four
//! via pitches the paper considers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_power::{table2_row, TABLE2_PITCHES_UM};

fn regenerate() -> [f64; 4] {
    let mut rows = [0.0; 4];
    for (i, pitch) in TABLE2_PITCHES_UM.iter().enumerate() {
        rows[i] = table2_row(*pitch);
    }
    // Verbatim Table 2 values (the 0.2 um row up to f64 rounding).
    let expect = [62_500.0, 15_625.0, 625.0, 25.0];
    for (got, want) in rows.iter().zip(expect) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
    rows
}

fn bench(c: &mut Criterion) {
    c.bench_function("table2/regenerate", |b| b.iter(|| black_box(regenerate())));
    let rows = regenerate();
    eprintln!(
        "table2: pillar area um2 at 10/5/1/0.2 um pitch = {:.0} / {:.0} / {:.0} / {:.0}",
        rows[0], rows[1], rows[2], rows[3]
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
