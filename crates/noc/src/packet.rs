//! Packets, flits, and the send/receive interface records.
//!
//! Messages are packetised and broken into *flits* — the unit of transfer
//! whose width equals the link width (paper §2.2). With the default
//! configuration a 64 B cache line travels as one 4-flit packet of 128-bit
//! flits (§3.2); control messages (requests, tag probes, acks) are single
//! head-tail flits.

use nim_types::codec::{ByteReader, ByteWriter, CodecError};
use nim_types::{Coord, Cycle, PacketId, PillarId};

/// Position of a flit within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; carries routing information and allocates VCs.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases VCs and port holds as it drains.
    Tail,
    /// Single-flit packet: head and tail at once.
    HeadTail,
}

impl FlitKind {
    /// Whether this flit performs head duties (VC allocation).
    #[inline]
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit performs tail duties (resource release).
    #[inline]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// The kind of flit number `seq` in a packet of `len` flits.
    pub const fn for_position(seq: u32, len: u32) -> FlitKind {
        if len == 1 {
            FlitKind::HeadTail
        } else if seq == 0 {
            FlitKind::Head
        } else if seq + 1 == len {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }
}

/// Coarse message class, used for statistics and energy accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Requests, tag probes, acknowledgements (single-flit).
    Control,
    /// Cache-line data transfers.
    Data,
    /// Cache-line movements caused by the migration policy.
    Migration,
    /// L1 coherence traffic (invalidations, directory updates).
    Coherence,
}

impl TrafficClass {
    /// All classes, for dense indexing.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Control,
        TrafficClass::Data,
        TrafficClass::Migration,
        TrafficClass::Coherence,
    ];

    /// Dense index matching [`TrafficClass::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Control => 0,
            TrafficClass::Data => 1,
            TrafficClass::Migration => 2,
            TrafficClass::Coherence => 3,
        }
    }

    /// Stable lowercase name, used as a trace-event label.
    #[inline]
    pub const fn name(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Data => "data",
            TrafficClass::Migration => "migration",
            TrafficClass::Coherence => "coherence",
        }
    }
}

/// One flit in flight.
///
/// Every flit carries the full routing record so routers stay stateless
/// about packets (look-ahead routing computes the output port from the
/// destination on the fly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub pkt: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Injecting node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Pillar to ride for inter-layer traversal (the transaction owner's
    /// dedicated pillar); `None` lets routers pick the nearest.
    pub via: Option<PillarId>,
    /// Message class for statistics.
    pub class: TrafficClass,
    /// Opaque sender cookie, returned on delivery.
    pub token: u64,
    /// Cycle the packet was handed to [`Network::send`].
    ///
    /// [`Network::send`]: crate::Network::send
    pub injected: Cycle,
    /// Cycle this flit last moved (prevents multi-hop teleports within a
    /// single simulated cycle).
    pub arrived: Cycle,
    /// Router traversals so far (head flit only is meaningful).
    pub hops: u16,
    /// Cycles spent waiting for dTDMA pillar slots so far (head flit
    /// only is meaningful) — the vertical-arbitration share of latency.
    pub bus_wait: u32,
}

impl Flit {
    /// Filler for arena slots no live flit occupies.
    pub(crate) const VACANT: Flit = Flit {
        pkt: PacketId(u64::MAX),
        kind: FlitKind::HeadTail,
        src: Coord::new(0, 0, 0),
        dst: Coord::new(0, 0, 0),
        via: None,
        class: TrafficClass::Control,
        token: 0,
        injected: Cycle::ZERO,
        arrived: Cycle::ZERO,
        hops: 0,
        bus_wait: 0,
    };
}

/// Pooled backing store for every flit FIFO in the network.
///
/// Router VCs and pillar transceiver queues each own a fixed-size window
/// of one contiguous slab, so the per-cycle hot path reads cache-adjacent
/// slots instead of chasing one heap allocation per queue, and bursts
/// never reallocate.
#[derive(Clone, Debug, Default)]
pub(crate) struct FlitArena {
    slots: Vec<Flit>,
}

impl FlitArena {
    /// Reserves `cap` contiguous slots and returns their base index.
    fn alloc(&mut self, cap: usize) -> u32 {
        let base = self.slots.len();
        self.slots.resize(base + cap, Flit::VACANT);
        u32::try_from(base).expect("flit arena exceeds u32 slots")
    }
}

/// A bounded flit FIFO: a ring over a fixed [`FlitArena`] window.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlitFifo {
    base: u32,
    cap: u16,
    head: u16,
    len: u16,
}

impl FlitFifo {
    /// Creates a FIFO of `cap` flits backed by freshly reserved arena
    /// slots.
    pub(crate) fn new(arena: &mut FlitArena, cap: usize) -> Self {
        assert!((1..=1 << 14).contains(&cap), "unreasonable FIFO depth");
        Self {
            base: arena.alloc(cap),
            cap: cap as u16,
            head: 0,
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        usize::from(self.len)
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        usize::from(self.cap)
    }

    /// Iterates the queued flits oldest-first (snapshot save).
    pub(crate) fn iter<'a>(&'a self, arena: &'a FlitArena) -> impl Iterator<Item = &'a Flit> + 'a {
        (0..self.len).map(move |i| &arena.slots[self.slot(i)])
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub(crate) fn is_full(&self) -> bool {
        self.len == self.cap
    }

    #[inline]
    fn slot(&self, i: u16) -> usize {
        self.base as usize + usize::from((self.head + i) % self.cap)
    }

    /// Appends a flit.
    ///
    /// # Panics
    ///
    /// Panics (debug) when full — callers check
    /// [`is_full`](Self::is_full) first.
    pub(crate) fn push_back(&mut self, arena: &mut FlitArena, flit: Flit) {
        debug_assert!(!self.is_full(), "push into full flit FIFO");
        let s = self.slot(self.len);
        arena.slots[s] = flit;
        self.len += 1;
    }

    /// The oldest queued flit, if any.
    #[inline]
    pub(crate) fn front<'a>(&self, arena: &'a FlitArena) -> Option<&'a Flit> {
        if self.len == 0 {
            None
        } else {
            Some(&arena.slots[self.slot(0)])
        }
    }

    /// Removes and returns the oldest queued flit.
    pub(crate) fn pop_front(&mut self, arena: &FlitArena) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let f = arena.slots[self.slot(0)];
        self.head = (self.head + 1) % self.cap;
        self.len -= 1;
        Some(f)
    }
}

/// A request to inject one packet into the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendRequest {
    /// Injecting node (must host the sender's network interface).
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Pillar to ride for any inter-layer traversal.
    pub via: Option<PillarId>,
    /// Message class.
    pub class: TrafficClass,
    /// Packet length in flits (≥ 1).
    pub flits: u32,
    /// Opaque cookie returned on delivery.
    pub token: u64,
}

/// A packet that reached its destination's local port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivered {
    /// Packet id assigned by [`Network::send`].
    ///
    /// [`Network::send`]: crate::Network::send
    pub packet: PacketId,
    /// Injecting node.
    pub src: Coord,
    /// Destination node (where it was delivered).
    pub dst: Coord,
    /// Message class.
    pub class: TrafficClass,
    /// Sender cookie.
    pub token: u64,
    /// Cycle the packet was handed to the network.
    pub injected: Cycle,
    /// Cycle the tail flit left the destination router.
    pub delivered: Cycle,
    /// Router/bus traversals of the head flit.
    pub hops: u16,
    /// Cycles the head flit spent waiting for dTDMA pillar slots —
    /// receivers split [`Delivered::latency`] into horizontal hop time
    /// and vertical arbitration wait.
    pub bus_wait: u32,
}

impl Delivered {
    /// End-to-end packet latency in cycles (injection to tail ejection).
    #[inline]
    pub fn latency(&self) -> u64 {
        self.delivered - self.injected
    }

    /// Serializes this record for a snapshot (mirror of
    /// [`Delivered::restore`]).
    pub fn save(&self, w: &mut ByteWriter) {
        w.u64(self.packet.0);
        for c in [self.src, self.dst] {
            w.u8(c.x);
            w.u8(c.y);
            w.u8(c.layer);
        }
        w.u8(self.class.index() as u8);
        w.u64(self.token);
        w.u64(self.injected.0);
        w.u64(self.delivered.0);
        w.u16(self.hops);
        w.u32(self.bus_wait);
    }

    /// Reads a record written by [`Delivered::save`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated bytes or an unknown
    /// traffic-class tag.
    pub fn restore(r: &mut ByteReader<'_>) -> Result<Delivered, CodecError> {
        let packet = PacketId(r.u64()?);
        let src = Coord::new(r.u8()?, r.u8()?, r.u8()?);
        let dst = Coord::new(r.u8()?, r.u8()?, r.u8()?);
        let class = TrafficClass::ALL
            .get(usize::from(r.u8()?))
            .copied()
            .ok_or(CodecError::Corrupt("bad traffic class tag"))?;
        Ok(Delivered {
            packet,
            src,
            dst,
            class,
            token: r.u64()?,
            injected: Cycle(r.u64()?),
            delivered: Cycle(r.u64()?),
            hops: r.u16()?,
            bus_wait: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kind_positions() {
        assert_eq!(FlitKind::for_position(0, 1), FlitKind::HeadTail);
        assert_eq!(FlitKind::for_position(0, 4), FlitKind::Head);
        assert_eq!(FlitKind::for_position(1, 4), FlitKind::Body);
        assert_eq!(FlitKind::for_position(2, 4), FlitKind::Body);
        assert_eq!(FlitKind::for_position(3, 4), FlitKind::Tail);
    }

    #[test]
    fn head_and_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
    }

    #[test]
    fn traffic_class_indices_are_dense() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn flit_fifo_wraps_and_respects_capacity() {
        let mut arena = FlitArena::default();
        let mut q = FlitFifo::new(&mut arena, 2);
        let mut f = Flit::VACANT;
        assert!(q.is_empty() && !q.is_full());
        assert_eq!(q.capacity(), 2);
        for round in 0..5u64 {
            f.token = round;
            q.push_back(&mut arena, f);
            f.token = round + 100;
            q.push_back(&mut arena, f);
            assert!(q.is_full());
            assert_eq!(q.len(), 2);
            assert_eq!(q.front(&arena).unwrap().token, round);
            assert_eq!(q.pop_front(&arena).unwrap().token, round);
            assert_eq!(q.pop_front(&arena).unwrap().token, round + 100);
            assert_eq!(q.pop_front(&arena), None);
        }
    }

    #[test]
    fn arena_windows_are_disjoint() {
        let mut arena = FlitArena::default();
        let mut a = FlitFifo::new(&mut arena, 4);
        let mut b = FlitFifo::new(&mut arena, 4);
        let mut f = Flit::VACANT;
        f.token = 1;
        a.push_back(&mut arena, f);
        f.token = 2;
        b.push_back(&mut arena, f);
        assert_eq!(a.front(&arena).unwrap().token, 1);
        assert_eq!(b.front(&arena).unwrap().token, 2);
    }

    #[test]
    fn delivered_latency() {
        let d = Delivered {
            packet: PacketId(1),
            src: Coord::new(0, 0, 0),
            dst: Coord::new(1, 0, 0),
            class: TrafficClass::Control,
            token: 0,
            injected: Cycle(10),
            delivered: Cycle(25),
            hops: 2,
            bus_wait: 3,
        };
        assert_eq!(d.latency(), 15);
    }
}
