//! Thermal calibration constants.
//!
//! The resistances below are first-principles estimates for 1.5 mm
//! silicon tiles (paper §3: a 64 KB bank spans ~1500 µm at 70 nm) with a
//! conventional heat sink under layer 0, nudged once so that the 2D
//! reference configuration (8 × 8 W cores among 256 clock-gated banks)
//! lands near the paper's Table 3 anchor row (peak ≈ 111 °C, average
//! ≈ 54 °C). Every other Table 3 row is then a *prediction* of the
//! model, not a fit — the orderings (stacked ≫ offset, 4 layers ≫ 2
//! layers) must emerge on their own.
//!
//! Power assumptions follow the paper: 8 W per core (Sun UltraSPARC T1's
//! 79 W over 8 cores, §3.3) and clock-gated cache banks drawing a small
//! residual (0.05 W — leakage plus occasional activity; the total chip
//! power then matches the T1's envelope).

/// Ambient / heat-sink reference temperature (°C).
pub const AMBIENT_C: f64 = 45.0;

/// Lateral tile-to-tile thermal resistance (K/W).
///
/// A 1.5 mm path through a 1.5 mm-wide silicon cross-section at
/// k ≈ 150 W/(m·K) gives ~20-60 K/W depending on the effective thickness
/// that conducts laterally; 34 K/W (≈ 0.13 mm effective thickness)
/// reproduces the Table 3 anchor row's peak-over-average spread.
pub const R_LATERAL: f64 = 34.0;

/// Vertical tile-to-tile resistance between adjacent device layers (K/W).
///
/// The 10 µm inter-wafer gap (paper §3.1) is filled by bonding adhesive
/// and the inter-layer dielectric stack (k_eff well below bulk silicon);
/// with interface effects this is ~10 K/W over a 1.5 mm × 1.5 mm tile.
pub const R_VERTICAL: f64 = 12.0;

/// Per-tile resistance from layer 0 into the heat sink (K/W).
///
/// Junction-to-ambient resistance of ~0.12 K/W for the full 288 mm² die
/// footprint, apportioned over 256 tiles ≈ 30 K/W per tile. This is the
/// one constant tuned against the Table 3 anchor row.
pub const R_SINK: f64 = 30.0;

/// Power of one CPU core tile (W), following the paper's T1 argument.
pub const CPU_W: f64 = 8.0;

/// Residual power of one clock-gated 64 KB cache-bank tile (W).
pub const BANK_W: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_power_matches_the_t1_envelope() {
        // 8 cores + 248 banks ≈ 76 W, close to the T1's 79 W (§3.3).
        let total = 8.0 * CPU_W + 248.0 * BANK_W;
        assert!((70.0..85.0).contains(&total), "total {total} W");
    }

    #[test]
    fn vertical_paths_are_better_than_lateral() {
        // The defining property of 3D stacks: layers are thermally more
        // tightly coupled than neighbouring tiles, which is exactly why
        // stacking CPUs is dangerous.
        #[allow(clippy::assertions_on_constants)] // documents the physical invariant
        {
            assert!(R_VERTICAL < R_LATERAL / 2.0);
        }
    }
}
