//! Cross-crate integration tests of the substrates the system composes:
//! topology ↔ network, cache ↔ topology, thermal ↔ placement, and the
//! power models' paper-anchored outputs.

use network_in_memory::cache::{NucaL2, SearchPlan};
use network_in_memory::noc::{Network, SendRequest, TrafficClass, VerticalMode};
use network_in_memory::power::{pillar_wires, table2_row, GENERIC_ROUTER};
use network_in_memory::thermal::{ThermalConfig, ThermalModel};
use network_in_memory::topology::{ChipLayout, Floorplan, PlacementPolicy};
use network_in_memory::types::{ClusterId, Coord, LineAddr, SystemConfig};

#[test]
fn a_cache_line_fits_exactly_in_one_data_packet() {
    let cfg = SystemConfig::default();
    assert_eq!(
        cfg.network.data_packet_bits(),
        cfg.l2.line_bytes * 8,
        "4 flits x 128 bits = 64 B (paper §3.2)"
    );
}

#[test]
fn network_serves_every_cluster_center_from_every_seat() {
    // Every (CPU seat → cluster center) probe path used by the search
    // policy must be routable and drain.
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let seats = PlacementPolicy::MaximalOffset
        .place(&layout, cfg.num_cpus)
        .unwrap();
    let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    let mut sent = 0u64;
    for seat in &seats {
        for cl in 0..layout.num_clusters() {
            let dst = layout.cluster_center(ClusterId(cl));
            net.send(SendRequest {
                src: seat.coord,
                dst,
                via: seat.pillar,
                class: TrafficClass::Control,
                flits: 1,
                token: sent,
            });
            sent += 1;
        }
    }
    net.run_until_idle(100_000).expect("probe mesh drains");
    assert_eq!(net.stats().packets_delivered, sent);
}

#[test]
fn search_plans_cover_the_l2_and_the_l2_respects_them() {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut l2 = NucaL2::new(&cfg.l2);
    // Insert a line per cluster; every plan must classify each location
    // as step 1 or step 2.
    let plan = SearchPlan::new(&layout, ClusterId(0));
    for cl in 0..cfg.l2.clusters {
        let line = LineAddr(u64::from(cl) << 10);
        let placed = l2.insert(line);
        assert_eq!(placed.cluster, ClusterId(cl as u16));
        assert!(plan.step_of(placed.cluster).is_some());
    }
    assert_eq!(l2.occupancy(), cfg.l2.clusters as usize);
}

#[test]
fn thermal_model_runs_on_every_placement_the_schemes_use() {
    for (layers, pillars, policy) in [
        (1, 8, PlacementPolicy::Edges),
        (1, 8, PlacementPolicy::Interior2d),
        (2, 8, PlacementPolicy::MaximalOffset),
        (2, 8, PlacementPolicy::Stacked),
        (2, 4, PlacementPolicy::Algorithm1 { k: 1 }),
        (4, 8, PlacementPolicy::MaximalOffset),
    ] {
        let cfg = SystemConfig::default()
            .with_layers(layers)
            .with_pillars(pillars);
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = policy.place(&layout, cfg.num_cpus).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig::default();
        let profile = ThermalModel::new(&plan, &tcfg).solve(&tcfg);
        assert!(profile.peak() > tcfg.ambient_c, "{policy:?}");
        assert!(profile.min() >= tcfg.ambient_c, "{policy:?}");
    }
}

#[test]
fn via_area_justifies_the_pillar_budget() {
    // The paper's §3.1 argument chain: a pillar at 5 µm pitch costs ~4%
    // of a router; at the state-of-the-art 0.2 µm it is negligible; and
    // the whole default chip uses 8 pillars of 170 wires.
    assert_eq!(pillar_wires(128, 4), 170);
    let router_um2 = GENERIC_ROUTER.area_mm2 * 1e6;
    assert!(table2_row(5.0) / router_um2 < 0.05);
    assert!(table2_row(0.2) / router_um2 < 1e-3);
}

#[test]
fn mesh3d_and_pillar_networks_are_interchangeable_at_the_api() {
    // The §3.1 ablation needs both vertical fabrics behind one API.
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).unwrap();
    for mode in [VerticalMode::Pillars, VerticalMode::Mesh3d] {
        let mut net = Network::new(&layout, &cfg.network, mode);
        net.send(SendRequest {
            src: Coord::new(0, 0, 0),
            dst: Coord::new(5, 5, 1),
            via: layout.nearest_pillar(Coord::new(0, 0, 0)),
            class: TrafficClass::Data,
            flits: 4,
            token: 1,
        });
        net.run_until_idle(10_000).expect("drains");
        assert_eq!(net.stats().packets_delivered, 1, "{mode:?}");
    }
}
