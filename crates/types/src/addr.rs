//! Physical addresses and NUCA address decomposition.
//!
//! The L2 in the paper is a NUCA: a line's *initial* placement is derived
//! from its address — the low-order bits of the cache tag pick the cluster,
//! the low-order bits of the index pick the bank within the cluster, and
//! the remaining index bits pick the set within the bank (paper §4.2.2).
//! Once lines migrate, the cluster can no longer be derived from the
//! address, so cluster tag arrays track locations explicitly; only the
//! *intra-bank* mapping (bank-relative set) stays address-derived.
//!
//! [`L2Map`] encapsulates this decomposition for a given L2 geometry.

use core::fmt;

use crate::id::{BankId, ClusterId};

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// The cache-line address containing this byte, for `line_bytes`-byte
    /// lines (`line_bytes` must be a power of two).
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// All cache and coherence bookkeeping works at line granularity; using a
/// distinct type from [`Address`] prevents shifted and unshifted addresses
/// from being mixed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line, for `line_bytes`-byte lines.
    #[inline]
    pub fn byte_address(self, line_bytes: u64) -> Address {
        Address(self.0 * line_bytes)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ln:0x{:x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for LineAddr {
    fn from(value: u64) -> Self {
        LineAddr(value)
    }
}

/// Address decomposition for a NUCA L2 of `clusters × banks_per_cluster ×
/// sets_per_bank × ways` lines.
///
/// Bit layout of a [`LineAddr`], low to high:
///
/// ```text
/// | bank-in-cluster | set-in-bank | home cluster | tag ... |
/// ```
///
/// The "home cluster" field is the low-order bits of the cache tag in the
/// paper's terminology (everything above the index is tag; the cluster
/// field is its bottom slice).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L2Map {
    clusters: u32,
    banks_per_cluster: u32,
    sets_per_bank: u32,
    bank_bits: u32,
    set_bits: u32,
    cluster_bits: u32,
}

impl L2Map {
    /// Creates a decomposition for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any of the three arguments is zero or not a power of two
    /// (the decomposition is a bit-field split).
    pub fn new(clusters: u32, banks_per_cluster: u32, sets_per_bank: u32) -> Self {
        for (what, v) in [
            ("clusters", clusters),
            ("banks_per_cluster", banks_per_cluster),
            ("sets_per_bank", sets_per_bank),
        ] {
            assert!(
                v > 0 && v.is_power_of_two(),
                "{what} must be a nonzero power of two, got {v}"
            );
        }
        Self {
            clusters,
            banks_per_cluster,
            sets_per_bank,
            bank_bits: banks_per_cluster.trailing_zeros(),
            set_bits: sets_per_bank.trailing_zeros(),
            cluster_bits: clusters.trailing_zeros(),
        }
    }

    /// Number of clusters in the decomposition.
    #[inline]
    pub const fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Number of banks per cluster.
    #[inline]
    pub const fn banks_per_cluster(&self) -> u32 {
        self.banks_per_cluster
    }

    /// Number of sets per bank.
    #[inline]
    pub const fn sets_per_bank(&self) -> u32 {
        self.sets_per_bank
    }

    /// The cluster a line is *initially* placed in (low-order tag bits).
    #[inline]
    pub fn home_cluster(&self, line: LineAddr) -> ClusterId {
        let shifted = line.0 >> (self.bank_bits + self.set_bits);
        ClusterId((shifted as u32 & (self.clusters - 1)) as u16)
    }

    /// The bank within *any* cluster that the line maps to (low-order index
    /// bits). Migration moves lines between clusters but a line always
    /// occupies the same bank slot and set within whichever cluster holds
    /// it, so the tag array only needs to record the cluster.
    #[inline]
    pub fn bank_in_cluster(&self, line: LineAddr) -> u32 {
        (line.0 & u64::from(self.banks_per_cluster - 1)) as u32
    }

    /// The set within the bank (middle index bits).
    #[inline]
    pub fn set_in_bank(&self, line: LineAddr) -> u32 {
        ((line.0 >> self.bank_bits) & u64::from(self.sets_per_bank - 1)) as u32
    }

    /// The tag that must be stored to disambiguate lines sharing a set
    /// (everything above bank+set bits; includes the home-cluster bits,
    /// since after migration a set may hold lines of any home cluster).
    #[inline]
    pub fn tag(&self, line: LineAddr) -> u64 {
        line.0 >> (self.bank_bits + self.set_bits)
    }

    /// Reconstructs the line address from its decomposition. Inverse of
    /// ([`tag`](Self::tag), [`set_in_bank`](Self::set_in_bank),
    /// [`bank_in_cluster`](Self::bank_in_cluster)).
    #[inline]
    pub fn compose(&self, tag: u64, set: u32, bank: u32) -> LineAddr {
        debug_assert!(set < self.sets_per_bank);
        debug_assert!(bank < self.banks_per_cluster);
        LineAddr(
            (tag << (self.bank_bits + self.set_bits))
                | u64::from(set) << self.bank_bits
                | u64::from(bank),
        )
    }

    /// Global bank id for (`cluster`, bank-in-cluster) pairs.
    #[inline]
    pub fn global_bank(&self, cluster: ClusterId, bank_in_cluster: u32) -> BankId {
        debug_assert!(bank_in_cluster < self.banks_per_cluster);
        BankId(cluster.0 as u32 * self.banks_per_cluster + bank_in_cluster)
    }

    /// Splits a global bank id back into (cluster, bank-in-cluster).
    #[inline]
    pub fn split_bank(&self, bank: BankId) -> (ClusterId, u32) {
        (
            ClusterId((bank.0 / self.banks_per_cluster) as u16),
            bank.0 % self.banks_per_cluster,
        )
    }

    /// Total number of banks.
    #[inline]
    pub const fn total_banks(&self) -> u32 {
        self.clusters * self.banks_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_map() -> L2Map {
        // Paper default: 16 clusters × 16 banks × 64 sets (16-way, 64 KB banks).
        L2Map::new(16, 16, 64)
    }

    #[test]
    fn address_to_line_divides_by_line_size() {
        assert_eq!(Address(0x1000).line(64), LineAddr(0x40));
        assert_eq!(Address(0x103f).line(64), LineAddr(0x40));
        assert_eq!(Address(0x1040).line(64), LineAddr(0x41));
    }

    #[test]
    fn line_to_byte_address_round_trips() {
        let line = Address(0xdead_b000).line(64);
        assert_eq!(line.byte_address(64).0, 0xdead_b000 & !63);
    }

    #[test]
    fn decomposition_fields_do_not_overlap() {
        let m = default_map();
        // bank uses bits [0,4), set bits [4,10), cluster bits [10,14).
        #[allow(clippy::unusual_byte_groupings)] // grouped by bank/set/cluster fields
        let line = LineAddr(0b11_0101_110011_1010);
        assert_eq!(m.bank_in_cluster(line), 0b1010);
        assert_eq!(m.set_in_bank(line), 0b110011);
        assert_eq!(m.home_cluster(line), ClusterId(0b0101));
        assert_eq!(m.tag(line), 0b11_0101);
    }

    #[test]
    fn compose_inverts_decomposition() {
        let m = default_map();
        for raw in [0u64, 1, 0x3fff, 0xdead_beef, u64::MAX >> 8] {
            let line = LineAddr(raw);
            let back = m.compose(m.tag(line), m.set_in_bank(line), m.bank_in_cluster(line));
            assert_eq!(back, line);
        }
    }

    #[test]
    fn home_cluster_covers_all_clusters() {
        let m = default_map();
        let mut seen = [false; 16];
        for i in 0..16u64 {
            let line = LineAddr(i << 10); // cluster field starts at bit 10
            seen[m.home_cluster(line).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn global_bank_round_trips() {
        let m = default_map();
        for c in 0..16u16 {
            for b in 0..16u32 {
                let g = m.global_bank(ClusterId(c), b);
                assert_eq!(m.split_bank(g), (ClusterId(c), b));
            }
        }
        assert_eq!(m.total_banks(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_geometry_rejected() {
        let _ = L2Map::new(12, 16, 64);
    }

    #[test]
    fn bigger_caches_shift_cluster_field() {
        // 32 MB: 16 clusters × 32 banks × 64 sets.
        let m = L2Map::new(16, 32, 64);
        assert_eq!(m.total_banks(), 512);
        let line = LineAddr(1 << 11); // cluster bit 0 for this geometry
        assert_eq!(m.home_cluster(line), ClusterId(1));
    }
}
