//! The injection phase: each node's network interface streams at most
//! one flit of its oldest pending packet into a local-input VC.
//!
//! Like the router phase, the body lives on [`Lane`] so the sequential
//! tick and the window executor share one implementation. Injection
//! touches only shard-local state (the node's local port and its own
//! injection queue) and emits no trace events.

use nim_types::{Cycle, Dir};

use crate::packet::{Flit, FlitKind};

use super::lane::Lane;
use super::Network;

impl Network {
    pub(super) fn injection_phase(&mut self, now: Cycle) {
        if self.shards.iter().all(|st| st.inj_active.is_empty()) {
            return;
        }
        let (mut lane, _sink) = self.live_parts();
        lane.injection_phase(now);
    }
}

impl Lane<'_> {
    pub(super) fn injection_phase(&mut self, now: Cycle) {
        for si in 0..self.shards.len() {
            self.injection_phase_shard(si, now);
        }
    }

    /// Injection for one shard's active nodes. Injection never leaves
    /// the node, so shards are fully independent here.
    fn injection_phase_shard(&mut self, si: usize, now: Cycle) {
        if self.shards[si].inj_active.is_empty() {
            return;
        }
        let mut active = std::mem::replace(
            &mut self.shards[si].inj_active,
            std::mem::take(&mut self.shards[si].inj_scratch),
        );
        active.sort_unstable();
        for &n in &active {
            self.in_inj[n as usize - self.base] = false;
        }
        for &n in &active {
            let n = n as usize;
            let local = n - self.base;
            let li = Dir::Local.index();
            if let Some(p) = self.injectors[local].queue.front().copied() {
                let kind = FlitKind::for_position(p.seq, p.req.flits);
                let port = self.routers[local].inputs[li].as_mut().expect("local port");
                let vc_sel = if kind.is_head() {
                    port.free_vc()
                } else {
                    self.injectors[local]
                        .vc
                        .filter(|&v| port.vc(v).accepts_continuation(p.id))
                };
                if let Some(v) = vc_sel {
                    let flit = Flit {
                        pkt: p.id,
                        kind,
                        src: p.req.src,
                        dst: p.req.dst,
                        via: p.req.via,
                        class: p.req.class,
                        token: p.req.token,
                        injected: p.injected,
                        arrived: now,
                        hops: 0,
                        bus_wait: 0,
                    };
                    self.routers[local].inputs[li]
                        .as_mut()
                        .expect("local port")
                        .vc_mut(v)
                        .push(&mut self.shards[si].arena, flit);
                    self.routers[local].occupancy += 1;
                    self.mark_dirty(n);
                    let inj = &mut self.injectors[local];
                    let front = inj.queue.front_mut().expect("checked above");
                    front.seq += 1;
                    if front.seq == front.req.flits {
                        inj.queue.pop_front();
                        inj.vc = None;
                    } else {
                        inj.vc = Some(v);
                    }
                }
            }
            if !self.injectors[local].queue.is_empty() {
                self.mark_inj(n);
            }
        }
        active.clear();
        self.shards[si].inj_scratch = active;
    }
}
