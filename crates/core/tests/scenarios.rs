//! Deterministic micro-scenarios: hand-crafted reference streams drive
//! the full system and the transaction outcomes are checked exactly.
//! Small CPU counts keep every L2 transaction attributable.

use nim_core::{RunError, Scheme, SystemBuilder};
use nim_types::{AccessKind, Address, CpuId, SystemConfig, TraceOp};
use nim_workload::ReplayTrace;

fn op(kind: AccessKind, addr: u64) -> TraceOp {
    TraceOp {
        gap: 1,
        kind,
        addr: Address(addr),
    }
}

fn trace_for(cpu: u16, ops: &[TraceOp]) -> ReplayTrace {
    let mut trace = ReplayTrace::default();
    for o in ops {
        trace.push(CpuId(cpu), *o);
    }
    trace
}

fn builder(sample: u64, cpus: u32) -> SystemBuilder {
    let cfg = SystemConfig {
        num_cpus: cpus,
        ..SystemConfig::default()
    };
    SystemBuilder::new(Scheme::CmpDnuca3d)
        .config(cfg)
        .prewarm(false)
        .warmup_transactions(0)
        .sampled_transactions(sample)
}

#[test]
fn a_cold_read_misses_and_pays_the_memory_latency() {
    let mut system = builder(1, 1).build().unwrap();
    let mut trace = trace_for(0, &[op(AccessKind::Read, 0x1234_0000)]);
    let report = system.run_with_source("scenario", &mut trace).unwrap();
    assert_eq!(report.counters.l2_transactions, 1);
    assert_eq!(report.counters.l2_misses, 1);
    assert_eq!(report.counters.l2_hits, 0);
    let latency = report.counters.miss_latency_sum;
    assert!(
        latency > 260,
        "a miss must cost more than the 260-cycle memory latency, got {latency}"
    );
    assert!(latency < 800, "but not absurdly more, got {latency}");
}

#[test]
fn a_same_line_reread_is_absorbed_by_the_l1() {
    // Two reads of the same 64 B line: the second hits the L1, so only
    // ONE L2 transaction ever completes and the run stalls short of its
    // 2-transaction target.
    let mut system = builder(2, 1).build().unwrap();
    let mut trace = trace_for(
        0,
        &[
            op(AccessKind::Read, 0x1234_0000),
            op(AccessKind::Read, 0x1234_0008),
        ],
    );
    let err = system.run_with_source("scenario", &mut trace).unwrap_err();
    assert!(
        matches!(err, RunError::Stalled { completed: 1, .. }),
        "got {err:?}"
    );
}

#[test]
fn a_store_to_a_fetched_line_hits_the_l2() {
    // Read-miss then write-through store to the same line: the store
    // finds the line in the L2 (an L2 hit) and is far cheaper than the
    // memory fetch.
    let mut system = builder(2, 1).build().unwrap();
    let addr = 0x1234_0000;
    let mut trace = trace_for(
        0,
        &[op(AccessKind::Read, addr), op(AccessKind::Write, addr)],
    );
    let report = system.run_with_source("scenario", &mut trace).unwrap();
    assert_eq!(report.counters.l2_misses, 1, "the cold read");
    assert_eq!(report.counters.l2_hits, 1, "the write-through store");
    assert!(
        report.counters.hit_latency_sum < report.counters.miss_latency_sum / 2,
        "hit {} must be far cheaper than miss {}",
        report.counters.hit_latency_sum,
        report.counters.miss_latency_sum
    );
    assert_eq!(report.counters.step1_hits + report.counters.step2_hits, 1);
}

#[test]
fn a_write_by_another_cpu_invalidates_the_readers_l1() {
    // CPU 0 reads a line (L1 + directory install); CPU 1 writes it later;
    // the directory must send exactly one invalidation to CPU 0.
    let line = 0x7700_0000;
    let mut trace = ReplayTrace::default();
    trace.push(CpuId(0), op(AccessKind::Read, line));
    trace.push(
        CpuId(1),
        TraceOp {
            gap: 2_000, // let CPU 0's read finish first
            kind: AccessKind::Write,
            addr: Address(line),
        },
    );
    let mut system = builder(2, 2).build().unwrap();
    let report = system.run_with_source("scenario", &mut trace).unwrap();
    assert_eq!(report.counters.l2_transactions, 2);
    assert_eq!(
        report.counters.invalidations, 1,
        "the store invalidates exactly the one sharer"
    );
}

#[test]
fn an_ifetch_miss_is_a_first_class_l2_transaction() {
    let mut system = builder(1, 1).build().unwrap();
    let mut trace = trace_for(0, &[op(AccessKind::IFetch, 0x0BAD_C0DE & !63)]);
    let report = system.run_with_source("scenario", &mut trace).unwrap();
    assert_eq!(report.counters.l2_transactions, 1);
    assert_eq!(report.counters.l2_misses, 1);
}

#[test]
fn dried_up_traces_report_a_stall_not_a_hang() {
    let mut system = builder(10, 1).build().unwrap();
    let mut trace = trace_for(0, &[op(AccessKind::Read, 0xABC0)]);
    let start = std::time::Instant::now();
    let err = system.run_with_source("scenario", &mut trace).unwrap_err();
    assert!(
        matches!(err, RunError::Stalled { completed: 1, .. }),
        "{err}"
    );
    assert!(
        start.elapsed().as_secs() < 10,
        "stall detection must be immediate, not a watchdog timeout"
    );
}

#[test]
fn repeated_reads_by_one_cpu_pull_the_line_home() {
    // §4.2.3: data accessed repeatedly by a single processor migrates all
    // the way to that processor's local cluster. The L1 would absorb
    // plain rereads, so each round also touches two lines that conflict
    // in the target's 2-way L1 set, forcing every round back to the L2.
    let target = 0x5A05_0000u64; // home cluster 5 (byte-address bits [16,20))
    let conflict_a = target + 512 * 64; // same L1 set, same home cluster
    let conflict_b = conflict_a + 512 * 64;
    let mut ops = Vec::new();
    for _ in 0..20 {
        ops.push(op(AccessKind::Read, target));
        ops.push(op(AccessKind::Read, conflict_a));
        ops.push(op(AccessKind::Read, conflict_b));
    }
    let mut system = builder(60, 1).build().unwrap();
    let mut trace = trace_for(0, &ops);
    let report = system.run_with_source("scenario", &mut trace).unwrap();
    assert!(
        report.counters.migrations > 0,
        "repeated single-CPU access must migrate the line"
    );
    assert_eq!(report.counters.l2_misses, 3, "only the cold reads miss");
    assert!(
        report.counters.l2_hits >= 55,
        "every later round hits the L2"
    );
}
