//! The conservative shard-window executor.
//!
//! Between two coupling events, every shard (contiguous cluster-row
//! band, see [`nim_topology::ShardPlan`]) evolves independently:
//! router-phase moves stay inside the band, vertical moves only fill
//! the sender's own transceiver interface, and injection is node-local.
//! [`Network::advance_window`] exploits this to run all shards
//! *concurrently* over a window of cycles, with a barrier at each
//! window end where the sequential phases resume.
//!
//! # Soundness
//!
//! A window `[now+1, end]` is safe iff no *coupling event* can occur in
//! it: a bus grant (a cross-shard mutation, and the only place bus
//! statistics or contention are recorded), a local delivery (the only
//! network event the engine observes), or — new with cluster-granular
//! cuts — a mesh hop across a shard boundary. [`Network::window_horizon`]
//! lower-bounds the earliest possible coupling event from first
//! principles:
//!
//! * every router traversal costs at least `router_latency` dwell (a
//!   moved flit is restamped `arrived = now`), so a flit needing at
//!   least `h` traversals before an event can trigger it no earlier
//!   than `movable + (h - 1) × router_latency`;
//! * a flit whose dimension-order route leaves its shard's y-band
//!   (same-layer target below/above the band, or a pillar outside it)
//!   must make at least `dist-to-cut + 1` y-traversals first — the
//!   mesh-boundary lookahead, read off the per-shard band tables the
//!   [`ShardPlan`](nim_topology::ShardPlan) precomputes. A flit whose
//!   target y lies *inside* the band never crosses: x-first routing
//!   keeps y constant, then y moves monotonically toward the in-band
//!   target. Unpinned cross-layer flits re-pick their pillar
//!   adaptively, but each hop moves toward *some* pillar — if every
//!   pillar is in-band the flit stays in-band, and any out-of-band
//!   pillar contributes its crossing bound to the min;
//! * a bus grant requires the flit queued at a transceiver interface
//!   one full cycle, after the bus's serialisation window
//!   (`bus_ready_at`) expires — the multi-cycle grant latency of the
//!   dTDMA pillar is lookahead that keeps windows non-empty;
//! * a VC only ever holds flits of one packet (the owner protocol in
//!   `vc.rs`), and at most one flit per input port moves per cycle, so
//!   scanning only VC *front* flits bounds every queued flit: the k-th
//!   flit behind a front cannot beat the front's bound by construction.
//!
//! Cycles inside the window are then run per shard by
//! [`Lane::run_window`] — the same phase code as the sequential tick —
//! and are bit-identical to ticking: within a cycle, shard-order
//! processing equals global node-order processing because node indexing
//! is layer-major and shards are node-contiguous.
//!
//! # Determinism and engine overlap
//!
//! Worker threads claim whole shards from an atomic cursor; no two
//! threads ever touch the same shard, and shards share no mutable
//! state, so the interleaving cannot influence results. The calling
//! (engine) thread does not idle at the barrier — it joins the claim
//! loop as the last worker, so a window with `w` workers spawns only
//! `w - 1` threads. Trace (`FlitHop`) events are deferred into
//! per-shard buffers and replayed at the barrier in (cycle, shard)
//! order — exactly the order the sequential engine would have emitted
//! them.
//!
//! # Spawn-threshold calibration
//!
//! Spawning scoped workers costs more than it saves on a short window.
//! Instead of a hard-coded threshold, the first
//! [`CALIBRATION_WINDOWS`] windows run inline and are timed; the tuner
//! then probes the cost of standing up the worker pool once and sets
//! the threshold to the break-even window length
//! `spawn_cost / (ns_per_cycle × (1 − 1/workers))`. Calibration only
//! ever chooses *whether* to thread, never what to compute, so it is
//! invisible in results; [`Network::set_window_tuning`] disables it for
//! tests that force threading.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nim_obs::{Category, EventData};
use nim_types::{Coord, Cycle, PillarId};

use super::lane::{Lane, WindowSink};
use super::Network;

/// Windows shorter than this run inline on the calling thread until the
/// runtime calibration replaces it with a measured break-even length.
/// Results are bit-identical either way.
pub(super) const DEFAULT_SPAWN_MIN: u64 = 16;

/// Inline windows timed before the spawn threshold is calibrated.
const CALIBRATION_WINDOWS: u32 = 8;

/// Clamp range for the calibrated spawn threshold: never thread
/// single-digit windows, never refuse to thread a very long one.
const SPAWN_MIN_RANGE: (u64, u64) = (2, 65_536);

/// Window-executor activity counters: how often windows advance, how
/// long they are, and whether they ran threaded or inline. Exported via
/// the observability metrics (`net/window/*`) so parallel-efficiency
/// regressions are diagnosable; deliberately *not* part of
/// [`NetworkStats`](crate::stats::NetworkStats), which must stay
/// bit-identical across shard counts and threading.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Windows that advanced at least one cycle.
    pub windows: u64,
    /// Total cycles covered by those windows.
    pub cycles: u64,
    /// Windows run on spawned worker threads.
    pub spawned: u64,
    /// Windows run inline on the calling thread.
    pub inline: u64,
}

/// Runtime spawn-threshold calibration state (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct SpawnTuner {
    /// Tuning was pinned via `set_window_tuning`; never calibrate.
    forced: bool,
    calibrated: bool,
    sample_ns: u64,
    sample_cycles: u64,
    samples: u32,
}

impl SpawnTuner {
    pub(super) fn force(&mut self) {
        self.forced = true;
    }
}

impl Network {
    /// Advances every shard concurrently to `min(max_end, horizon - 1)`,
    /// where the horizon is the earliest cycle a coupling event (bus
    /// grant, delivery, or cross-shard boundary hop) could possibly
    /// occur. Returns the number of cycles advanced (0 when sharding is
    /// off, `max_end` is not ahead, or a coupling event is imminent).
    ///
    /// The caller must ensure nothing *outside* the network is due in
    /// the window (core wakeups, engine events, observability sample
    /// boundaries) — the network itself is advanced bit-identically to
    /// ticking `max_end - now` times.
    pub fn advance_window(&mut self, max_end: u64) -> u64 {
        if self.shards.len() <= 1 {
            return 0;
        }
        let start = self.now.0;
        if max_end <= start {
            return 0;
        }
        let end = max_end.min(self.window_horizon().saturating_sub(1));
        if end <= start {
            return 0;
        }
        debug_assert!(
            !self.has_deliveries(),
            "undrained deliveries at window start"
        );
        let len = end - start;
        let record = self.obs.wants(Category::Hop);
        let calibrating = self.window_workers > 1 && !self.tuner.forced && !self.tuner.calibrated;
        let threaded = self.window_workers > 1 && !calibrating && len >= self.window_spawn_min;
        if calibrating {
            let t0 = Instant::now();
            self.run_lanes(start + 1, end, record, false);
            self.note_inline_sample(t0.elapsed(), len);
        } else {
            self.run_lanes(start + 1, end, record, threaded);
        }
        self.win_stats.windows += 1;
        self.win_stats.cycles += len;
        if threaded {
            self.win_stats.spawned += 1;
        } else {
            self.win_stats.inline += 1;
        }
        self.settle_touched();
        self.now = Cycle(end);
        self.replay_hops();
        self.obs.set_now(end);
        len
    }

    /// Feeds one timed inline window into the tuner; once enough
    /// samples accumulate, probes the worker-pool cost and fixes the
    /// spawn threshold at the measured break-even window length.
    fn note_inline_sample(&mut self, dt: Duration, cycles: u64) {
        let t = &mut self.tuner;
        t.sample_ns += u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
        t.sample_cycles += cycles;
        t.samples += 1;
        if t.samples < CALIBRATION_WINDOWS {
            return;
        }
        let workers = self.window_workers as u64;
        let mut spawn_ns = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for _ in 1..workers {
                    scope.spawn(|| {});
                }
            });
            spawn_ns = spawn_ns.min(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let ns_per_cycle = (t.sample_ns / t.sample_cycles.max(1)).max(1);
        // Threading a window of W cycles saves about
        // W × ns_per_cycle × (1 − 1/workers) and costs spawn_ns;
        // break even where they meet.
        let gain_per_cycle = (ns_per_cycle * (workers - 1) / workers).max(1);
        self.window_spawn_min =
            (spawn_ns / gain_per_cycle).clamp(SPAWN_MIN_RANGE.0, SPAWN_MIN_RANGE.1);
        t.calibrated = true;
    }

    /// Lower-bounds the earliest future cycle at which a coupling event
    /// — a dTDMA bus grant, a local delivery, or a mesh hop across a
    /// shard boundary — could occur, scanning every queue a flit can
    /// sit in. `u64::MAX` when nothing is in flight.
    fn window_horizon(&self) -> u64 {
        let next = self.now.0 + 1;
        let mut horizon = u64::MAX;
        for (s, st) in self.shards.iter().enumerate() {
            // Buffered flits: VC fronts bound everything behind them.
            for &n in &st.dirty {
                let r = &self.routers[n as usize];
                if r.occupancy == 0 {
                    continue;
                }
                for port in r.inputs.iter().flatten() {
                    for vc in 0..self.vcs {
                        let Some(f) = port.vc(vc).front(&st.arena) else {
                            continue;
                        };
                        let movable = (f.arrived.0 + self.router_latency).max(next);
                        horizon = horizon.min(self.flit_bound(s, r.coord, f.dst, f.via, movable));
                    }
                }
            }
            // Pending injections: every queued packet can start flowing
            // inside a long window, so bound each one. Packet k's first
            // remaining flit enters a local VC no earlier than one cycle
            // per flit still ahead of it in the queue, then dwells
            // before moving.
            for &n in &st.inj_active {
                let mut flits_ahead = 0u64;
                for p in &self.injectors[n as usize].queue {
                    let movable = next + flits_ahead + self.router_latency;
                    horizon =
                        horizon.min(self.flit_bound(s, p.req.src, p.req.dst, p.req.via, movable));
                    flits_ahead += u64::from(p.req.flits - p.seq);
                }
            }
        }
        // Flits already queued at transceiver interfaces: a grant needs
        // one full cycle at the interface and a free bus.
        for &b in &self.bus_active {
            let b = b as usize;
            let mut front = u64::MAX;
            for layer in 0..self.layout.layers() {
                let (s, i) = self.iface_pos(b, layer);
                if let Some(f) = self.shards[s].ifaces[i].q.front(&self.shards[s].arena) {
                    front = front.min(f.arrived.0 + 1);
                }
            }
            if front != u64::MAX {
                horizon = horizon.min(front.max(self.bus_ready_at[b]).max(next));
            }
        }
        horizon
    }

    /// The earliest cycle a flit of shard `s` at `at`, first movable at
    /// `movable`, could trigger a coupling event en route to `dst`.
    fn flit_bound(
        &self,
        s: usize,
        at: Coord,
        dst: Coord,
        via: Option<PillarId>,
        movable: u64,
    ) -> u64 {
        let lat = self.router_latency;
        let (y0, y1) = self
            .plan
            .band(s, at.layer)
            .expect("flit inside its shard's band");
        debug_assert!((y0..=y1).contains(&at.y));
        // Crossing the band's north/south cut: the flit's route needs at
        // least `dist-to-cut + 1` y-traversals to enter the neighbouring
        // shard, the (h)-th traversal happening no earlier than
        // `movable + (h - 1) × lat`.
        let cross_north = movable + u64::from(at.y - y0) * lat;
        let cross_south = movable + u64::from(y1 - at.y) * lat;
        if at.layer == dst.layer {
            // Dimension-order routing moves x first (y unchanged, stays
            // in band), then y monotonically toward `dst.y`: an in-band
            // target never crosses the cut, an out-of-band one must.
            if dst.y < y0 {
                return cross_north;
            }
            if dst.y > y1 {
                return cross_south;
            }
            // Delivery: at least one traversal per remaining mesh hop,
            // each costing a fresh `router_latency` dwell, then the
            // final local pop (`d == 0` means the pop itself is next).
            let d = u64::from(at.x.abs_diff(dst.x)) + u64::from(at.y.abs_diff(dst.y));
            movable + d * lat
        } else {
            // Cross-layer: the flit heads for a pillar. An out-of-band
            // pillar puts the boundary crossing first; an in-band one
            // means a bus grant — reach the pillar, dwell one cycle at
            // its interface, and wait out the bus's serialisation
            // window.
            let via_pillar = |p: PillarId| {
                let (px, py) = self.layout.pillar_xy(p);
                if py < y0 {
                    return cross_north;
                }
                if py > y1 {
                    return cross_south;
                }
                let d = u64::from(at.x.abs_diff(px)) + u64::from(at.y.abs_diff(py));
                (movable + d * lat + 1).max(self.bus_ready_at[p.0 as usize])
            };
            match via {
                Some(p) => via_pillar(p),
                // Adaptive routing re-picks the nearest pillar per hop;
                // every hop moves toward *some* pillar, so the flit
                // either stays in-band until an (in-band) grant or
                // crosses toward an out-of-band pillar — both covered
                // by the min.
                None => (0..self.layout.num_pillars())
                    .map(|p| via_pillar(PillarId(p)))
                    .min()
                    .unwrap_or(movable),
            }
        }
    }

    /// Builds one single-shard [`Lane`] + [`WindowSink`] per shard and
    /// runs them all over `[from, to]` — inline on the calling thread,
    /// or with the calling thread joining `workers - 1` spawned workers
    /// in claiming shards from an atomic cursor (the engine thread
    /// works instead of idling at the barrier).
    fn run_lanes(&mut self, from: u64, to: u64, record: bool, threaded: bool) {
        let nodes = self.nodes_per_shard;
        let workers = self.window_workers;
        let (mut fh, mut byc, mut sc) = (0u64, [0u64; 4], 0u64);
        {
            let Network {
                shards,
                routers,
                injectors,
                in_dirty,
                in_inj,
                traversals,
                layout,
                routes,
                mode,
                vcs,
                router_latency,
                bus_of_node,
                iface_slots,
                hop_bufs,
                ..
            } = self;
            let cells_iter = shards
                .chunks_mut(1)
                .zip(hop_bufs.iter_mut())
                .zip(routers.chunks_mut(nodes))
                .zip(injectors.chunks_mut(nodes))
                .zip(in_dirty.chunks_mut(nodes))
                .zip(in_inj.chunks_mut(nodes))
                .zip(traversals.chunks_mut(nodes))
                .enumerate();
            let mut cells: Vec<(Lane<'_>, WindowSink, &mut Vec<_>)> = cells_iter
                .map(
                    |(s, ((((((st, hop_buf), routers), injectors), in_dirty), in_inj), trav))| {
                        let lane = Lane {
                            base: s * nodes,
                            first_shard: s,
                            nodes_per_shard: nodes,
                            shards: st,
                            routers,
                            injectors,
                            in_dirty,
                            in_inj,
                            traversals: trav,
                            layout,
                            routes,
                            mode: *mode,
                            vcs: *vcs,
                            router_latency: *router_latency,
                            bus_of_node,
                            iface_slots,
                            flit_hops: 0,
                            flit_hops_by_class: [0; 4],
                            switch_contention: 0,
                        };
                        let sink = WindowSink {
                            hops: std::mem::take(hop_buf),
                            record,
                        };
                        (lane, sink, hop_buf)
                    },
                )
                .collect();
            if threaded {
                let cursor = AtomicUsize::new(0);
                let slots: Vec<Mutex<&mut (Lane<'_>, WindowSink, &mut Vec<_>)>> =
                    cells.iter_mut().map(Mutex::new).collect();
                let work = || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else { break };
                    let mut cell = slot.lock().expect("window lane poisoned");
                    let (lane, sink, _) = &mut **cell;
                    lane.run_window(from, to, sink);
                };
                std::thread::scope(|scope| {
                    for _ in 1..workers.min(slots.len()) {
                        scope.spawn(work);
                    }
                    // The engine thread claims shards too instead of
                    // blocking on the barrier.
                    work();
                });
            } else {
                for (lane, sink, _) in &mut cells {
                    lane.run_window(from, to, sink);
                }
            }
            for (lane, sink, hop_buf) in cells {
                fh += lane.flit_hops;
                for (total, add) in byc.iter_mut().zip(lane.flit_hops_by_class) {
                    *total += add;
                }
                sc += lane.switch_contention;
                *hop_buf = sink.hops;
            }
        }
        self.fold_lane(fh, byc, sc);
    }

    /// Replays deferred `FlitHop` events in (cycle, shard) order —
    /// within a cycle the sequential engine processes routers in node
    /// order, i.e. shard order, and each shard's buffer is already in
    /// its own emission order, so a stable sort by cycle reconstructs
    /// the exact sequential event stream.
    fn replay_hops(&mut self) {
        if self.hop_bufs.iter().all(Vec::is_empty) {
            return;
        }
        let mut merged = std::mem::take(&mut self.hop_scratch);
        debug_assert!(merged.is_empty());
        for buf in &mut self.hop_bufs {
            merged.append(buf);
        }
        merged.sort_by_key(|&(cycle, _, _)| cycle);
        let mut current = u64::MAX;
        for (cycle, at, class) in merged.drain(..) {
            if cycle != current {
                self.obs.set_now(cycle);
                current = cycle;
            }
            self.obs
                .emit(Category::Hop, || EventData::FlitHop { at, class });
        }
        self.hop_scratch = merged;
    }
}
