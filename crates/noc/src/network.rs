//! The cycle-accurate network engine.
//!
//! [`Network`] owns every router, pillar bus, injection queue, and delivery
//! queue of the chip and advances them one clock cycle per [`Network::tick`].
//! Each cycle runs three phases:
//!
//! 1. **Bus phase** — every dTDMA pillar transfers at most one flit from a
//!    transceiver interface to the destination layer's pillar router
//!    (round-robin over active interfaces = dynamic slot allocation).
//! 2. **Router phase** — every active router performs switch allocation:
//!    per output port, the winning flit traverses to the next router's
//!    input VC (single-stage router: one hop per cycle on a win).
//! 3. **Injection phase** — each node's network interface streams at most
//!    one flit of its oldest pending packet into a local-input VC.
//!
//! A flit stamped `arrived == now` cannot move again in the same cycle, so
//! ordering of phases never lets a flit traverse two hops per cycle.
//! Routers with no buffered flits are skipped entirely via a dirty list,
//! buses with nothing queued via an active-pillar list, which keeps big
//! idle meshes cheap to tick.
//!
//! Beyond per-cycle ticking, [`Network::next_event_at`] reports the
//! earliest future cycle at which any phase could change state, and
//! [`Network::advance_to`] batch-advances the clock across the provably
//! dead span before it — the hook `System::run` uses to skip serialisation
//! stalls and event waits even with traffic in flight. All flit storage
//! lives in one pooled [`FlitArena`](crate::packet::FlitArena), so queue
//! operations never reallocate and the hot path stays cache-local.

use std::collections::VecDeque;

use nim_obs::{Category, EventData, Obs};
use nim_topology::ChipLayout;
use nim_types::{Coord, Cycle, Dir, NetworkConfig, PacketId};

use crate::dtdma::{BusStats, DtdmaBus};
use crate::packet::{Delivered, Flit, FlitArena, FlitKind, SendRequest};
use crate::router::{Hold, Router};
use crate::routing::{route, VerticalMode};
use crate::stats::NetworkStats;

/// One pending packet at a node's network interface.
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: PacketId,
    req: SendRequest,
    seq: u32,
    injected: Cycle,
}

/// Per-node injection state.
#[derive(Clone, Debug, Default)]
struct Injector {
    queue: VecDeque<Pending>,
    /// VC the current packet is streaming into.
    vc: Option<usize>,
}

/// One movable head flit found during a router's single input scan,
/// with its route already computed (look-ahead routing runs once per
/// flit instead of once per output port probed).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    /// `in_dir * vcs + vc`, the round-robin arbitration slot.
    slot: u16,
    /// Output port the flit requests.
    out: Dir,
    flit: Flit,
}

/// The on-chip network: stacked wormhole meshes joined by dTDMA pillars
/// (or by a full 3D mesh in the ablation mode).
#[derive(Clone, Debug)]
pub struct Network {
    layout: ChipLayout,
    mode: VerticalMode,
    vcs: usize,
    /// Cycles a flit dwells in a router before it may leave (Table 4:
    /// 1-cycle single-stage router; the 7-port ablation uses 2).
    router_latency: u64,
    /// Bus cycles per flit on the pillars (1 for a flit-wide bus; more
    /// when the via budget only affords a narrower vertical bus).
    bus_cycles_per_flit: u64,
    /// Per-bus earliest next grant time (serialisation of narrow buses).
    bus_ready_at: Vec<u64>,
    routers: Vec<Router>,
    buses: Vec<DtdmaBus>,
    /// Bus index at each node position, if the node is a pillar node.
    bus_of_node: Vec<Option<u16>>,
    injectors: Vec<Injector>,
    outbox: Vec<VecDeque<Delivered>>,
    delivered_nodes: Vec<u32>,
    in_delivered: Vec<bool>,
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    inj_active: Vec<u32>,
    in_inj: Vec<bool>,
    /// Buses with at least one queued flit (the pillar analogue of the
    /// router dirty list).
    bus_active: Vec<u16>,
    in_bus_active: Vec<bool>,
    /// Pooled backing store for every VC and transceiver FIFO.
    arena: FlitArena,
    /// Retired work lists, kept to reuse their capacity each tick.
    dirty_scratch: Vec<u32>,
    inj_scratch: Vec<u32>,
    bus_scratch: Vec<u16>,
    cand_scratch: Vec<Candidate>,
    now: Cycle,
    next_pkt: u64,
    flits_in_flight: u64,
    stats: NetworkStats,
    /// Flit traversals through each router (node-indexed), for
    /// utilisation maps and hotspot analysis.
    traversals: Vec<u64>,
    /// Observability sink; disabled by default (one branch per event).
    obs: Obs,
}

/// A [`Coord`] as the `[x, y, layer]` triple trace events carry.
#[inline]
fn c3(c: Coord) -> [u16; 3] {
    [u16::from(c.x), u16::from(c.y), u16::from(c.layer)]
}

impl Network {
    /// Builds the network for a chip layout.
    ///
    /// `mode` selects the vertical interconnect: [`VerticalMode::Pillars`]
    /// is the paper's hybrid NoC/bus design; [`VerticalMode::Mesh3d`] is
    /// the rejected 7-port router kept for the design-search ablation.
    pub fn new(layout: &ChipLayout, cfg: &NetworkConfig, mode: VerticalMode) -> Self {
        let vcs = cfg.vcs_per_port as usize;
        let depth = cfg.vc_depth_flits as usize;
        let n = layout.num_nodes();
        let mut arena = FlitArena::default();
        let mut routers = Vec::with_capacity(n);
        let mut bus_of_node = vec![None; n];
        for i in 0..n {
            let c = layout.coord_of_index(i);
            let mut dirs = vec![Dir::Local];
            for d in Dir::MESH {
                if d.step(c.x, c.y, layout.width(), layout.height()).is_some() {
                    dirs.push(d);
                }
            }
            match mode {
                VerticalMode::Pillars => {
                    if layout.layers() > 1 && layout.is_pillar_node(c) {
                        dirs.push(Dir::Vertical);
                    }
                }
                VerticalMode::Mesh3d => {
                    if c.layer + 1 < layout.layers() {
                        dirs.push(Dir::Up);
                    }
                    if c.layer > 0 {
                        dirs.push(Dir::Down);
                    }
                }
            }
            routers.push(Router::new(&mut arena, c, &dirs, &dirs, vcs, depth));
        }
        let mut buses = Vec::new();
        if mode == VerticalMode::Pillars && layout.layers() > 1 {
            for p in 0..layout.num_pillars() {
                let pillar = nim_types::PillarId(p);
                let xy = layout.pillar_xy(pillar);
                for layer in 0..layout.layers() {
                    let idx = layout.node_index(Coord::new(xy.0, xy.1, layer));
                    bus_of_node[idx] = Some(p);
                }
                buses.push(DtdmaBus::new(
                    &mut arena,
                    pillar,
                    xy,
                    layout.layers(),
                    depth,
                ));
            }
        }
        Self {
            layout: layout.clone(),
            mode,
            vcs,
            router_latency: u64::from(cfg.router_latency).max(1),
            bus_cycles_per_flit: u64::from(cfg.bus_cycles_per_flit()).max(1),
            bus_ready_at: vec![
                0;
                if mode == VerticalMode::Pillars && layout.layers() > 1 {
                    layout.num_pillars() as usize
                } else {
                    0
                }
            ],
            in_bus_active: vec![false; buses.len()],
            routers,
            buses,
            bus_of_node,
            injectors: vec![Injector::default(); n],
            outbox: vec![VecDeque::new(); n],
            delivered_nodes: Vec::new(),
            in_delivered: vec![false; n],
            dirty: Vec::new(),
            in_dirty: vec![false; n],
            inj_active: Vec::new(),
            in_inj: vec![false; n],
            bus_active: Vec::new(),
            arena,
            dirty_scratch: Vec::new(),
            inj_scratch: Vec::new(),
            bus_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            now: Cycle::ZERO,
            next_pkt: 0,
            flits_in_flight: 0,
            stats: NetworkStats::default(),
            traversals: vec![0; n],
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; events and per-tick cycle
    /// stamps flow into it from now on. The network drives
    /// [`Obs::set_now`], so the same handle shared by other components
    /// sees a consistent clock.
    pub fn set_obs(&mut self, obs: Obs) {
        obs.set_now(self.now.0);
        self.obs = obs;
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether no flits are buffered, queued, or awaiting injection.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.flits_in_flight == 0
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-bus statistics, indexed by pillar.
    pub fn bus_stats(&self) -> Vec<BusStats> {
        let mut out = Vec::new();
        self.bus_stats_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with per-bus statistics, indexed by
    /// pillar — the allocation-free variant callers on a sampling path
    /// use with a reused buffer (mirrors
    /// [`Network::drain_delivered_into`]).
    pub fn bus_stats_into(&self, buf: &mut Vec<BusStats>) {
        buf.clear();
        buf.extend(self.buses.iter().map(|b| b.stats));
    }

    /// Flits currently queued at each pillar bus's transceiver
    /// interfaces, indexed by pillar — the instantaneous occupancy the
    /// epoch sampler snapshots.
    pub fn bus_occupancies(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.bus_occupancies_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with the per-pillar queued-flit counts;
    /// see [`Network::bus_stats_into`].
    pub fn bus_occupancies_into(&self, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend(self.buses.iter().map(|b| b.queued()));
    }

    /// Flit traversals through each router, indexed like
    /// [`ChipLayout::node_index`](nim_topology::ChipLayout::node_index) —
    /// the utilisation map behind congestion analysis.
    pub fn traversals(&self) -> &[u64] {
        &self.traversals
    }

    /// Queues a packet for injection at `req.src`. Returns its id.
    ///
    /// The packet's latency clock starts now; injection itself contends
    /// for the node's single flit-wide link into its router.
    ///
    /// # Panics
    ///
    /// Panics if `req.flits == 0` or an endpoint is outside the mesh.
    pub fn send(&mut self, req: SendRequest) -> PacketId {
        assert!(req.flits >= 1, "packet must have at least one flit");
        assert!(
            self.layout.contains(req.src),
            "src {} outside mesh",
            req.src
        );
        assert!(
            self.layout.contains(req.dst),
            "dst {} outside mesh",
            req.dst
        );
        let id = PacketId(self.next_pkt);
        self.next_pkt += 1;
        let node = self.layout.node_index(req.src);
        self.injectors[node].queue.push_back(Pending {
            id,
            req,
            seq: 0,
            injected: self.now,
        });
        self.mark_inj(node);
        self.flits_in_flight += u64::from(req.flits);
        self.stats.packets_sent += 1;
        self.obs.emit(Category::Packet, || EventData::PacketInject {
            packet: id.0,
            src: c3(req.src),
            dst: c3(req.dst),
            class: req.class.name(),
            flits: req.flits,
        });
        id
    }

    /// Pops the oldest packet delivered at node `c`, if any.
    pub fn pop_delivered(&mut self, c: Coord) -> Option<Delivered> {
        let idx = self.layout.node_index(c);
        self.outbox[idx].pop_front()
    }

    /// Drains every delivered packet, in (node, arrival) order.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        let mut out = Vec::new();
        self.drain_delivered_into(&mut out);
        out
    }

    /// Whether any delivered packets await pickup.
    #[inline]
    pub fn has_deliveries(&self) -> bool {
        !self.delivered_nodes.is_empty()
    }

    /// Drains all delivered packets into `buf` (in node order, then
    /// arrival order per node), touching only the nodes that actually
    /// received something.
    pub fn drain_delivered_into(&mut self, buf: &mut Vec<Delivered>) {
        // Single receiver — the common case when draining every cycle —
        // needs no sort.
        if let [n] = self.delivered_nodes[..] {
            self.delivered_nodes.clear();
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
            return;
        }
        let mut nodes = std::mem::take(&mut self.delivered_nodes);
        nodes.sort_unstable();
        for &n in &nodes {
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
        }
        nodes.clear();
        self.delivered_nodes = nodes;
    }

    /// Advances the clock over a known-quiet span without ticking.
    ///
    /// # Panics
    ///
    /// Panics if any flit is in flight — skipping would change behaviour.
    pub fn advance_idle(&mut self, cycles: u64) {
        assert!(self.is_idle(), "advance_idle with traffic in flight");
        self.advance_to(Cycle(self.now.0 + cycles));
    }

    /// Batch-advances the clock to `to` without running per-cycle phases,
    /// even with traffic in flight.
    ///
    /// Callers must only jump across provably-dead spans: `to` must lie
    /// strictly before [`Network::next_event_at`], so that every skipped
    /// cycle would have been a no-op tick.
    pub fn advance_to(&mut self, to: Cycle) {
        debug_assert!(to.0 >= self.now.0, "advance_to moving backwards");
        debug_assert!(
            self.next_event_at().is_none_or(|t| to.0 < t.0),
            "advance_to({}) skips a cycle where a phase fires",
            to.0
        );
        self.now = to;
        self.obs.set_now(self.now.0);
    }

    /// The earliest future cycle at which any phase could change state —
    /// the next-event horizon — or `None` when the network is idle.
    ///
    /// The bound is exact-or-early, never late: the returned cycle may
    /// turn out to be a no-op (a speculative bus grant or switch
    /// allocation can still fail on VC backpressure, which mutates
    /// nothing), but every cycle strictly before it is provably dead, so
    /// [`Network::advance_to`] may jump to `horizon - 1` unconditionally.
    pub fn next_event_at(&self) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let next = self.now.0 + 1;
        let mut earliest = u64::MAX;
        // Injection streams one flit per cycle while packets are pending.
        if !self.inj_active.is_empty() {
            earliest = next;
        }
        // A bus grants once it is free of any serialisation window and a
        // queued flit has dwelt one cycle at its transceiver interface.
        for &b in &self.bus_active {
            let b = b as usize;
            let front = self.buses[b]
                .ifaces
                .iter()
                .filter_map(|i| i.q.front(&self.arena))
                .map(|f| f.arrived.0 + 1)
                .min();
            if let Some(t) = front {
                earliest = earliest.min(t.max(self.bus_ready_at[b]).max(next));
            }
        }
        // A router moves a front flit once it has dwelt `router_latency`.
        for &n in &self.dirty {
            let r = &self.routers[n as usize];
            if r.occupancy == 0 {
                continue;
            }
            for port in r.inputs.iter().flatten() {
                for vc in 0..self.vcs {
                    if let Some(f) = port.vc(vc).front(&self.arena) {
                        earliest = earliest.min((f.arrived.0 + self.router_latency).max(next));
                    }
                }
            }
        }
        // Flits in flight always sit in some queue the scans above cover;
        // fall back to the very next cycle rather than ever over-skipping.
        Some(Cycle(if earliest == u64::MAX { next } else { earliest }))
    }

    /// Advances the network by one clock cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.obs.set_now(self.now.0);
        self.bus_phase(self.now);
        self.router_phase(self.now);
        self.injection_phase(self.now);
    }

    /// Ticks until the network is idle, up to `max_cycles`. Returns the
    /// number of cycles consumed, or `None` if traffic is still in flight
    /// at the limit (useful to catch livelock in tests).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Option<u64> {
        let start = self.now;
        while !self.is_idle() {
            if self.now - start >= max_cycles {
                return None;
            }
            self.tick();
        }
        Some(self.now - start)
    }

    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.in_dirty[node] {
            self.in_dirty[node] = true;
            self.dirty.push(node as u32);
        }
    }

    #[inline]
    fn mark_inj(&mut self, node: usize) {
        if !self.in_inj[node] {
            self.in_inj[node] = true;
            self.inj_active.push(node as u32);
        }
    }

    #[inline]
    fn mark_bus(&mut self, bus: usize) {
        if !self.in_bus_active[bus] {
            self.in_bus_active[bus] = true;
            self.bus_active.push(bus as u16);
        }
    }

    fn bus_phase(&mut self, now: Cycle) {
        if self.bus_active.is_empty() {
            return;
        }
        let mut work =
            std::mem::replace(&mut self.bus_active, std::mem::take(&mut self.bus_scratch));
        work.sort_unstable();
        for &b in &work {
            self.in_bus_active[b as usize] = false;
        }
        for &b in &work {
            let b = b as usize;
            self.process_bus(b, now);
            if self.buses[b].queued() > 0 {
                self.mark_bus(b);
            }
        }
        work.clear();
        self.bus_scratch = work;
    }

    /// One dTDMA arbitration round: at most one flit crosses the bus.
    fn process_bus(&mut self, b: usize, now: Cycle) {
        // A narrow bus is still serialising the previous flit.
        if self.bus_ready_at[b] > now.0 {
            return;
        }
        let layers = self.buses[b].ifaces.len();
        let eligible = self.buses[b]
            .ifaces
            .iter()
            .filter(|i| i.q.front(&self.arena).is_some_and(|f| f.arrived < now))
            .count();
        if eligible == 0 {
            return;
        }
        let rr = self.buses[b].rr;
        for off in 0..layers {
            let i = (rr + off) % layers;
            let Some(front) = self.buses[b].ifaces[i].q.front(&self.arena).copied() else {
                continue;
            };
            if front.arrived >= now {
                continue;
            }
            let (px, py) = self.buses[b].xy;
            let dest_idx = self.layout.node_index(Coord::new(px, py, front.dst.layer));
            let vi = Dir::Vertical.index();
            let port = self.routers[dest_idx].inputs[vi]
                .as_ref()
                .expect("pillar node lacks vertical port");
            let vc_sel = if front.kind.is_head() {
                port.free_vc()
            } else {
                self.buses[b].ifaces[i]
                    .bound_vc
                    .filter(|&v| port.vc(v).accepts_continuation(front.pkt))
            };
            let Some(vc) = vc_sel else {
                continue;
            };
            // Multiple transmitters competing for a grant that actually
            // happens is contention; a round where every candidate is
            // VC-blocked is backpressure and counts nowhere.
            if eligible >= 2 {
                self.buses[b].stats.contention_cycles += 1;
                self.obs
                    .emit(Category::Pillar, || EventData::BusContention {
                        pillar: b as u32,
                        waiting: eligible as u32,
                    });
            }
            let mut f = self.buses[b].ifaces[i]
                .q
                .pop_front(&self.arena)
                .expect("front checked");
            // `arrived` still holds the bus-enqueue stamp: the span up
            // to this grant is time spent waiting for a dTDMA slot.
            f.bus_wait += (now.0 - f.arrived.0) as u32;
            f.arrived = now;
            f.hops += 1;
            self.routers[dest_idx].inputs[vi]
                .as_mut()
                .expect("checked above")
                .vc_mut(vc)
                .push(&mut self.arena, f);
            self.routers[dest_idx].occupancy += 1;
            self.mark_dirty(dest_idx);
            let iface = &mut self.buses[b].ifaces[i];
            iface.bound_vc = if f.kind.is_tail() {
                None
            } else if f.kind.is_head() {
                Some(vc)
            } else {
                iface.bound_vc
            };
            self.buses[b].stats.transfers += 1;
            self.buses[b].stats.busy_cycles += self.bus_cycles_per_flit;
            self.stats.bus_transfers += 1;
            self.obs.emit(Category::Pillar, || EventData::BusGrant {
                pillar: b as u32,
                from_layer: i as u16,
                to_layer: u16::from(f.dst.layer),
            });
            self.buses[b].rr = (i + 1) % layers;
            self.bus_ready_at[b] = now.0 + self.bus_cycles_per_flit;
            break; // one flit per bus grant
        }
    }

    fn router_phase(&mut self, now: Cycle) {
        if self.dirty.is_empty() {
            return;
        }
        let mut work = std::mem::replace(&mut self.dirty, std::mem::take(&mut self.dirty_scratch));
        work.sort_unstable();
        for &n in &work {
            self.in_dirty[n as usize] = false;
        }
        for &n in &work {
            let n = n as usize;
            if self.routers[n].occupancy == 0 {
                continue;
            }
            self.process_router(n, now);
            if self.routers[n].occupancy > 0 {
                self.mark_dirty(n);
            }
        }
        work.clear();
        self.dirty_scratch = work;
    }

    /// Switch allocation for one router: a single scan over the input VCs
    /// collects every movable head flit (routing each once), then every
    /// output port arbitrates among its candidates in round-robin slot
    /// order. Moves performed while an output is served only ever change
    /// the fronts of inputs recorded in `used_input`, which later outputs
    /// skip, so the pre-collected candidates stay exact.
    fn process_router(&mut self, n: usize, now: Cycle) {
        let vcs = self.vcs;
        let at = self.routers[n].coord;
        let mut cands = std::mem::take(&mut self.cand_scratch);
        debug_assert!(cands.is_empty());
        for (in_dir, input) in self.routers[n].inputs.iter().enumerate() {
            let Some(port) = input else { continue };
            for vc in 0..vcs {
                let Some(front) = port.vc(vc).front(&self.arena) else {
                    continue;
                };
                if front.arrived.0 + self.router_latency > now.0 || !front.kind.is_head() {
                    continue;
                }
                cands.push(Candidate {
                    slot: (in_dir * vcs + vc) as u16,
                    out: route(&self.layout, self.mode, at, front.dst, front.via),
                    flit: *front,
                });
            }
        }
        let mut used_input = [false; Dir::COUNT];
        for out in Dir::ALL {
            if self.routers[n].has_output(out) {
                self.process_output(n, out, now, &mut used_input, &cands);
            }
        }
        cands.clear();
        self.cand_scratch = cands;
    }

    /// Switch allocation and traversal for one output port of one router.
    fn process_output(
        &mut self,
        n: usize,
        out: Dir,
        now: Cycle,
        used_input: &mut [bool; Dir::COUNT],
        cands: &[Candidate],
    ) {
        let oi = out.index();
        // An output already claimed by a packet serves only that packet.
        if let Some(hold) = self.routers[n].held[oi] {
            if used_input[hold.in_dir] {
                return;
            }
            let front = self.routers[n].inputs[hold.in_dir]
                .as_ref()
                .and_then(|p| p.vc(hold.vc).front(&self.arena))
                .copied();
            let Some(front) = front else { return };
            if front.pkt != hold.pkt || front.arrived.0 + self.router_latency > now.0 {
                return;
            }
            if self.try_move(n, hold.in_dir, hold.vc, out, &front, now) {
                used_input[hold.in_dir] = true;
                if front.kind.is_tail() {
                    self.routers[n].held[oi] = None;
                }
            } else {
                self.stats.switch_contention += 1;
            }
            return;
        }
        // Free output: round-robin over head flits requesting it.
        let vcs = self.vcs;
        let total = (Dir::COUNT * vcs) as u16;
        let rrp = self.routers[n].rr[oi];
        let mut winner: Option<Candidate> = None;
        let mut best_rank = u16::MAX;
        let mut eligible = 0u64;
        for c in cands {
            if c.out != out || used_input[usize::from(c.slot) / vcs] {
                continue;
            }
            eligible += 1;
            let rank = (c.slot + total - rrp) % total;
            if rank < best_rank {
                best_rank = rank;
                winner = Some(*c);
            }
        }
        if eligible > 1 {
            self.stats.switch_contention += eligible - 1;
        }
        let Some(c) = winner else {
            return;
        };
        let (in_dir, vc) = (usize::from(c.slot) / vcs, usize::from(c.slot) % vcs);
        if self.try_move(n, in_dir, vc, out, &c.flit, now) {
            used_input[in_dir] = true;
            if !c.flit.kind.is_tail() {
                self.routers[n].held[oi] = Some(Hold {
                    pkt: c.flit.pkt,
                    in_dir,
                    vc,
                });
            }
            self.routers[n].rr[oi] = (c.slot + 1) % total;
        } else {
            self.stats.switch_contention += 1;
        }
    }

    /// Attempts the actual flit traversal. Returns `false` when downstream
    /// has no space or no free VC (speculation failure — retry next cycle).
    fn try_move(
        &mut self,
        n: usize,
        in_dir: usize,
        vc: usize,
        out: Dir,
        front: &Flit,
        now: Cycle,
    ) -> bool {
        match out {
            Dir::Local => {
                let f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                self.routers[n].occupancy -= 1;
                self.flits_in_flight -= 1;
                if f.kind.is_tail() {
                    let d = Delivered {
                        packet: f.pkt,
                        src: f.src,
                        dst: f.dst,
                        class: f.class,
                        token: f.token,
                        injected: f.injected,
                        delivered: now,
                        hops: f.hops,
                        bus_wait: f.bus_wait,
                    };
                    self.stats.record_delivery(&d);
                    self.obs
                        .emit(Category::Packet, || EventData::PacketDeliver {
                            packet: d.packet.0,
                            dst: c3(d.dst),
                            latency: d.latency(),
                            hops: u32::from(d.hops),
                        });
                    self.outbox[n].push_back(d);
                    if !self.in_delivered[n] {
                        self.in_delivered[n] = true;
                        self.delivered_nodes.push(n as u32);
                    }
                }
                true
            }
            Dir::Vertical => {
                let bus_idx =
                    self.bus_of_node[n].expect("vertical output on non-pillar node") as usize;
                let layer = self.routers[n].coord.layer;
                if !self.buses[bus_idx].can_enqueue(layer) {
                    return false;
                }
                let mut f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                f.arrived = now;
                self.buses[bus_idx].enqueue(&mut self.arena, layer, f);
                self.mark_bus(bus_idx);
                self.routers[n].occupancy -= 1;
                self.stats.flit_hops += 1;
                self.stats.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[n] += 1;
                let at = self.routers[n].coord;
                self.obs.emit(Category::Hop, || EventData::FlitHop {
                    at: c3(at),
                    class: f.class.name(),
                });
                true
            }
            _ => {
                let c = self.routers[n].coord;
                let dest = match out {
                    Dir::Up => Coord::new(c.x, c.y, c.layer + 1),
                    Dir::Down => Coord::new(c.x, c.y, c.layer - 1),
                    d => {
                        let (x, y) = d
                            .step(c.x, c.y, self.layout.width(), self.layout.height())
                            .expect("routing stays on the mesh");
                        Coord::new(x, y, c.layer)
                    }
                };
                let dest_idx = self.layout.node_index(dest);
                debug_assert_ne!(dest_idx, n);
                let ii = out.opposite().index();
                let dvc = {
                    let port = self.routers[dest_idx].inputs[ii]
                        .as_ref()
                        .expect("link implies input port");
                    if front.kind.is_head() {
                        port.free_vc()
                    } else {
                        port.continuation_vc(front.pkt)
                    }
                };
                let Some(dvc) = dvc else {
                    return false;
                };
                let mut f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                f.arrived = now;
                f.hops += 1;
                self.routers[dest_idx].inputs[ii]
                    .as_mut()
                    .expect("checked above")
                    .vc_mut(dvc)
                    .push(&mut self.arena, f);
                self.routers[n].occupancy -= 1;
                self.routers[dest_idx].occupancy += 1;
                self.mark_dirty(dest_idx);
                self.stats.flit_hops += 1;
                self.stats.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[n] += 1;
                self.obs.emit(Category::Hop, || EventData::FlitHop {
                    at: c3(c),
                    class: f.class.name(),
                });
                true
            }
        }
    }

    fn injection_phase(&mut self, now: Cycle) {
        if self.inj_active.is_empty() {
            return;
        }
        let mut active =
            std::mem::replace(&mut self.inj_active, std::mem::take(&mut self.inj_scratch));
        active.sort_unstable();
        for &n in &active {
            self.in_inj[n as usize] = false;
        }
        for &n in &active {
            let n = n as usize;
            let li = Dir::Local.index();
            if let Some(p) = self.injectors[n].queue.front().copied() {
                let kind = FlitKind::for_position(p.seq, p.req.flits);
                let port = self.routers[n].inputs[li].as_mut().expect("local port");
                let vc_sel = if kind.is_head() {
                    port.free_vc()
                } else {
                    self.injectors[n]
                        .vc
                        .filter(|&v| port.vc(v).accepts_continuation(p.id))
                };
                if let Some(v) = vc_sel {
                    let flit = Flit {
                        pkt: p.id,
                        kind,
                        src: p.req.src,
                        dst: p.req.dst,
                        via: p.req.via,
                        class: p.req.class,
                        token: p.req.token,
                        injected: p.injected,
                        arrived: now,
                        hops: 0,
                        bus_wait: 0,
                    };
                    self.routers[n].inputs[li]
                        .as_mut()
                        .expect("local port")
                        .vc_mut(v)
                        .push(&mut self.arena, flit);
                    self.routers[n].occupancy += 1;
                    self.mark_dirty(n);
                    let inj = &mut self.injectors[n];
                    let front = inj.queue.front_mut().expect("checked above");
                    front.seq += 1;
                    if front.seq == front.req.flits {
                        inj.queue.pop_front();
                        inj.vc = None;
                    } else {
                        inj.vc = Some(v);
                    }
                }
            }
            if !self.injectors[n].queue.is_empty() {
                self.mark_inj(n);
            }
        }
        active.clear();
        self.inj_scratch = active;
    }
}

#[cfg(test)]
#[path = "network_tests.rs"]
mod tests;
