//! L2 memory-system energy accounting.
//!
//! The paper argues that the 3D topology reduces L2 power because it
//! migrates far fewer lines (§5.2, Fig. 14) — every migration is a data
//! packet worth of network traversals plus a bank read and a bank write.
//! This module turns the activity counters collected by the simulator
//! (flit hops, bus transfers, bank and tag accesses) into energy.
//!
//! Per-event energies are first-order models anchored on the paper's
//! synthesis and Cacti data:
//!
//! * Router traversal: the 119.55 mW 5-port router (Table 1) at the 1 GHz
//!   network clock spends ~120 pJ per fully-active cycle; one flit
//!   traversal exercises roughly one port's worth, ~24 pJ.
//! * dTDMA transfer: two transceivers (2 × 97.39 µW) plus the arbiter
//!   share (204.98 µW) plus the short (≤ 50 µm × layers) vertical wire —
//!   about 0.6 pJ per flit: the bus is essentially free next to routers,
//!   which is why vertical locality saves power.
//! * Bank access: Cacti-3.2-class 64 KB SRAM read/write ≈ 390 pJ.
//! * Tag-array probe: 24 KB array ≈ 120 pJ.

/// Per-event energy constants in joules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// One flit through one router (buffer write + crossbar + link).
    pub router_flit_j: f64,
    /// One flit across a dTDMA pillar.
    pub bus_flit_j: f64,
    /// One 64 KB data-bank access.
    pub bank_access_j: f64,
    /// One cluster tag-array probe.
    pub tag_access_j: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            router_flit_j: 24e-12,
            bus_flit_j: 0.6e-12,
            bank_access_j: 390e-12,
            tag_access_j: 120e-12,
        }
    }
}

/// Activity counters accumulated over a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Flit-router traversals.
    pub flit_hops: u64,
    /// Flit-bus transfers.
    pub bus_transfers: u64,
    /// Data-bank reads and writes.
    pub bank_accesses: u64,
    /// Tag-array probes.
    pub tag_accesses: u64,
}

/// Energy breakdown in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Network routers.
    pub router_j: f64,
    /// Vertical buses.
    pub bus_j: f64,
    /// Data banks.
    pub bank_j: f64,
    /// Tag arrays.
    pub tag_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.router_j + self.bus_j + self.bank_j + self.tag_j
    }
}

impl EnergyModel {
    /// Converts activity counts to an energy breakdown.
    pub fn estimate(&self, counts: &ActivityCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            router_j: counts.flit_hops as f64 * self.router_flit_j,
            bus_j: counts.bus_transfers as f64 * self.bus_flit_j,
            bank_j: counts.bank_accesses as f64 * self.bank_access_j,
            tag_j: counts.tag_accesses as f64 * self.tag_access_j,
        }
    }

    /// Average power over `cycles` cycles at `freq_hz`.
    pub fn avg_power_w(&self, counts: &ActivityCounts, cycles: u64, freq_hz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.estimate(counts).total_j() * freq_hz / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_linear_in_counts() {
        let m = EnergyModel::default();
        let one = m.estimate(&ActivityCounts {
            flit_hops: 1,
            bus_transfers: 1,
            bank_accesses: 1,
            tag_accesses: 1,
        });
        let ten = m.estimate(&ActivityCounts {
            flit_hops: 10,
            bus_transfers: 10,
            bank_accesses: 10,
            tag_accesses: 10,
        });
        assert!((ten.total_j() - 10.0 * one.total_j()).abs() < 1e-18);
    }

    #[test]
    fn bus_transfers_are_far_cheaper_than_router_hops() {
        // The architectural point: the vertical hop is nearly free.
        let m = EnergyModel::default();
        assert!(m.bus_flit_j < m.router_flit_j / 10.0);
    }

    #[test]
    fn fewer_migrations_mean_less_energy() {
        // A migration is a 4-flit data packet over h hops plus a bank
        // read and a bank write; compare 100 vs 1000 migrations.
        let m = EnergyModel::default();
        let per_migration = |n: u64| ActivityCounts {
            flit_hops: n * 4 * 6,
            bus_transfers: 0,
            bank_accesses: n * 2,
            tag_accesses: n,
        };
        let low = m.estimate(&per_migration(100)).total_j();
        let high = m.estimate(&per_migration(1000)).total_j();
        assert!(high > 9.0 * low);
    }

    #[test]
    fn average_power_is_energy_rate() {
        let m = EnergyModel::default();
        let counts = ActivityCounts {
            bank_accesses: 1000,
            ..Default::default()
        };
        let p = m.avg_power_w(&counts, 1_000_000, 1e9);
        // 1000 * 390 pJ over 1 ms = 0.39 mW.
        assert!((p - 0.39e-3).abs() < 1e-9);
        assert_eq!(m.avg_power_w(&counts, 0, 1e9), 0.0);
    }
}
