//! Quickstart: build one 3D network-in-memory system, run a benchmark,
//! and print the headline metrics next to the 2D organisations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = BenchmarkProfile::swim();
    println!("benchmark: {} (SPEC OMP profile)", bench.name);
    println!(
        "{:<14} {:>12} {:>8} {:>11} {:>10} {:>10}",
        "scheme", "avg L2 hit", "IPC", "migrations", "miss rate", "energy mJ"
    );
    for scheme in Scheme::ALL {
        let report = SystemBuilder::new(scheme)
            .seed(42)
            .warmup_transactions(2_000)
            .sampled_transactions(20_000)
            .build()?
            .run(&bench)?;
        println!(
            "{:<14} {:>12.2} {:>8.4} {:>11} {:>10.4} {:>10.4}  s1 {:>6.1}/{:<6} s2 {:>6.1}/{:<6} net {:>5.1} cont {}",
            scheme.label(),
            report.avg_l2_hit_latency(),
            report.ipc(),
            report.counters.migrations,
            report.l2_miss_rate(),
            report.energy().total_j() * 1e3,
            report.avg_step1_latency(),
            report.counters.step1_hits,
            report.avg_step2_latency(),
            report.counters.step2_hits,
            report.network.avg_latency(),
            report.network.switch_contention,
        );
    }
    Ok(())
}
