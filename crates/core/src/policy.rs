//! The per-scheme protocol policy seam.
//!
//! Scheme-specific choices are not `match scheme` branches inside the
//! engine's handlers: they live behind [`ProtocolPolicy`], bound once at
//! build time by [`policy_for`]. The engine asks the policy every
//! question whose answer differs between the paper's four L2
//! organisations (or between the builder's extension knobs): how lines
//! are located, when and where they migrate, whether read-shared lines
//! replicate, and how misses reach memory. Adding a new L2 organisation
//! means writing a new policy (and, if needed, a placement), not
//! editing the engine.

use nim_cache::migration_target;
use nim_topology::ChipLayout;
use nim_types::{ClusterId, PillarId};

use crate::scheme::Scheme;

/// How an L2 miss reaches DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MemoryRoute {
    /// The paper's flat memory model (Table 4): a fixed latency, no
    /// network traffic.
    Flat {
        /// Cycles from request to fill.
        latency: u64,
    },
    /// The extension: route misses over the network to edge memory
    /// controllers with per-channel bandwidth limits.
    EdgeControllers,
}

/// The scheme-specific half of the protocol, bound at build time.
///
/// The engine asks the policy every question whose answer differs
/// between the paper's four L2 organisations (or between the builder's
/// extension knobs): how lines are located, when and where they
/// migrate, whether read-shared lines replicate, and how misses reach
/// memory. Handlers contain no `Scheme` branches — swapping the policy
/// is the whole difference between CMP-DNUCA and CMP-SNUCA-3D.
pub(crate) trait ProtocolPolicy: std::fmt::Debug + Send + Sync {
    /// The baseline's perfect-search oracle: the requester knows each
    /// line's location without probing, and the tag check is charged at
    /// the serving bank instead.
    fn oracle_search(&self) -> bool;

    /// Whether cache lines migrate toward their accessors at all (the
    /// cheap gate in front of [`ProtocolPolicy::migration_step`]).
    fn migrates(&self) -> bool;

    /// One gradual migration step for a line at `cur` accessed from
    /// `acc` (paper §4.2.3), or `None` to stay put. `occupied` reports
    /// whether a candidate cluster hosts another CPU.
    fn migration_step(
        &self,
        layout: &ChipLayout,
        cur: ClusterId,
        acc: ClusterId,
        pillar: Option<PillarId>,
        occupied: &dyn Fn(ClusterId) -> bool,
    ) -> Option<ClusterId>;

    /// The paper's migration damping: lines already inside the
    /// accessor's step-1 vicinity stay put unless one processor keeps
    /// re-accessing them (§5.2, Fig. 14).
    fn vicinity_stop(&self) -> bool;

    /// Replicate read-shared lines into the reader's local cluster (the
    /// NuRapid / victim-replication alternative of §1–§2).
    fn replication(&self) -> bool;

    /// How L2 misses reach memory.
    fn memory_route(&self) -> MemoryRoute;
}

/// The builder knobs a policy carries (orthogonal to the scheme).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PolicyKnobs {
    /// See [`SystemBuilder::vicinity_stop`](crate::SystemBuilder::vicinity_stop).
    pub(crate) vicinity_stop: bool,
    /// See [`SystemBuilder::replication`](crate::SystemBuilder::replication).
    pub(crate) replication: bool,
    /// See
    /// [`SystemBuilder::edge_memory_controllers`](crate::SystemBuilder::edge_memory_controllers).
    pub(crate) edge_memory: bool,
    /// Flat-model memory latency (Table 4).
    pub(crate) memory_latency: u64,
}

impl PolicyKnobs {
    fn memory_route(&self) -> MemoryRoute {
        if self.edge_memory {
            MemoryRoute::EdgeControllers
        } else {
            MemoryRoute::Flat {
                latency: self.memory_latency,
            }
        }
    }
}

/// Beckmann & Wood's CMP-DNUCA baseline: perfect search, migration.
#[derive(Clone, Copy, Debug)]
struct OracleDnucaPolicy {
    knobs: PolicyKnobs,
}

/// The paper's two-step-search schemes with migration (CMP-DNUCA-2D and
/// CMP-DNUCA-3D — the topology difference lives in the layout, not the
/// protocol).
#[derive(Clone, Copy, Debug)]
struct TwoStepDnucaPolicy {
    knobs: PolicyKnobs,
}

/// The static-NUCA 3D scheme: two-step search, no migration.
#[derive(Clone, Copy, Debug)]
struct TwoStepSnucaPolicy {
    knobs: PolicyKnobs,
}

impl ProtocolPolicy for OracleDnucaPolicy {
    fn oracle_search(&self) -> bool {
        true
    }
    fn migrates(&self) -> bool {
        true
    }
    fn migration_step(
        &self,
        layout: &ChipLayout,
        cur: ClusterId,
        acc: ClusterId,
        pillar: Option<PillarId>,
        occupied: &dyn Fn(ClusterId) -> bool,
    ) -> Option<ClusterId> {
        migration_target(layout, cur, acc, pillar, occupied)
    }
    fn vicinity_stop(&self) -> bool {
        self.knobs.vicinity_stop
    }
    fn replication(&self) -> bool {
        self.knobs.replication
    }
    fn memory_route(&self) -> MemoryRoute {
        self.knobs.memory_route()
    }
}

impl ProtocolPolicy for TwoStepDnucaPolicy {
    fn oracle_search(&self) -> bool {
        false
    }
    fn migrates(&self) -> bool {
        true
    }
    fn migration_step(
        &self,
        layout: &ChipLayout,
        cur: ClusterId,
        acc: ClusterId,
        pillar: Option<PillarId>,
        occupied: &dyn Fn(ClusterId) -> bool,
    ) -> Option<ClusterId> {
        migration_target(layout, cur, acc, pillar, occupied)
    }
    fn vicinity_stop(&self) -> bool {
        self.knobs.vicinity_stop
    }
    fn replication(&self) -> bool {
        self.knobs.replication
    }
    fn memory_route(&self) -> MemoryRoute {
        self.knobs.memory_route()
    }
}

impl ProtocolPolicy for TwoStepSnucaPolicy {
    fn oracle_search(&self) -> bool {
        false
    }
    fn migrates(&self) -> bool {
        false
    }
    fn migration_step(
        &self,
        _layout: &ChipLayout,
        _cur: ClusterId,
        _acc: ClusterId,
        _pillar: Option<PillarId>,
        _occupied: &dyn Fn(ClusterId) -> bool,
    ) -> Option<ClusterId> {
        None
    }
    fn vicinity_stop(&self) -> bool {
        self.knobs.vicinity_stop
    }
    fn replication(&self) -> bool {
        self.knobs.replication
    }
    fn memory_route(&self) -> MemoryRoute {
        self.knobs.memory_route()
    }
}

/// Binds the scheme's protocol policy once, at build time.
pub(crate) fn policy_for(scheme: Scheme, knobs: PolicyKnobs) -> Box<dyn ProtocolPolicy> {
    match scheme {
        Scheme::CmpDnuca => Box::new(OracleDnucaPolicy { knobs }),
        Scheme::CmpDnuca2d | Scheme::CmpDnuca3d => Box::new(TwoStepDnucaPolicy { knobs }),
        Scheme::CmpSnuca3d => Box::new(TwoStepSnucaPolicy { knobs }),
    }
}
