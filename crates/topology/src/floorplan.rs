//! Physical floorplan for the thermal model.
//!
//! The thermal estimator needs physical dimensions and the kind of
//! component occupying each tile. The paper gives the one physical anchor
//! we need: the distance between two adjacent NoC routers is about
//! **1500 µm** for a 64 KB cache bank implemented in 70 nm technology
//! (§3), so each mesh tile is a 1.5 mm × 1.5 mm square. Inter-wafer
//! distance is 10 µm (§3.1).

use nim_types::Coord;

use crate::layout::ChipLayout;
use crate::placement::CpuSeat;

/// Distance between adjacent routers for a 64 KB bank at 70 nm (µm).
pub const TILE_PITCH_UM: f64 = 1500.0;

/// Inter-wafer (layer-to-layer) distance in µm (paper §3.1).
pub const INTER_WAFER_UM: f64 = 10.0;

/// What occupies one mesh tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileKind {
    /// An L2 cache bank (clock-gated when idle).
    Bank,
    /// A CPU core with its private L1 (shares the tile with the bank's
    /// router; power-wise the CPU dominates).
    Cpu,
}

/// Physical floorplan: tile grid dimensions plus the component kind at
/// every tile of every layer.
#[derive(Clone, Debug, PartialEq)]
pub struct Floorplan {
    width: u8,
    height: u8,
    layers: u8,
    tile_um: f64,
    kinds: Vec<TileKind>,
}

impl Floorplan {
    /// Builds the floorplan for a layout with CPUs at the given seats.
    pub fn new(layout: &ChipLayout, seats: &[CpuSeat]) -> Self {
        let mut kinds = vec![TileKind::Bank; layout.num_nodes()];
        for seat in seats {
            kinds[layout.node_index(seat.coord)] = TileKind::Cpu;
        }
        Self {
            width: layout.width(),
            height: layout.height(),
            layers: layout.layers(),
            tile_um: TILE_PITCH_UM,
            kinds,
        }
    }

    /// Mesh width in tiles.
    #[inline]
    pub const fn width(&self) -> u8 {
        self.width
    }

    /// Mesh height in tiles.
    #[inline]
    pub const fn height(&self) -> u8 {
        self.height
    }

    /// Device layers.
    #[inline]
    pub const fn layers(&self) -> u8 {
        self.layers
    }

    /// Edge length of one (square) tile in µm.
    #[inline]
    pub const fn tile_um(&self) -> f64 {
        self.tile_um
    }

    /// Die width in µm.
    #[inline]
    pub fn die_width_um(&self) -> f64 {
        f64::from(self.width) * self.tile_um
    }

    /// Die height in µm.
    #[inline]
    pub fn die_height_um(&self) -> f64 {
        f64::from(self.height) * self.tile_um
    }

    /// The component kind at a tile.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the floorplan.
    pub fn kind_at(&self, c: Coord) -> TileKind {
        self.kinds[self.index(c)]
    }

    /// Dense tile index (same ordering as [`ChipLayout::node_index`]).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the floorplan.
    pub fn index(&self, c: Coord) -> usize {
        assert!(
            c.x < self.width && c.y < self.height && c.layer < self.layers,
            "coordinate {c} outside floorplan"
        );
        (c.layer as usize * self.height as usize + c.y as usize) * self.width as usize
            + c.x as usize
    }

    /// Total tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.kinds.len()
    }

    /// Number of CPU tiles.
    pub fn num_cpu_tiles(&self) -> usize {
        self.kinds.iter().filter(|k| **k == TileKind::Cpu).count()
    }

    /// Iterates `(Coord, TileKind)` over every tile.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, TileKind)> + '_ {
        (0..self.kinds.len()).map(move |i| {
            let per_layer = self.width as usize * self.height as usize;
            let layer = (i / per_layer) as u8;
            let rem = i % per_layer;
            let c = Coord::new(
                (rem % self.width as usize) as u8,
                (rem / self.width as usize) as u8,
                layer,
            );
            (c, self.kinds[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use nim_types::SystemConfig;

    fn default_plan() -> Floorplan {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        Floorplan::new(&layout, &seats)
    }

    #[test]
    fn cpu_tiles_match_seats() {
        let plan = default_plan();
        assert_eq!(plan.num_cpu_tiles(), 8);
        assert_eq!(plan.num_tiles(), 256);
    }

    #[test]
    fn physical_dimensions_follow_the_tile_pitch() {
        let plan = default_plan();
        assert_eq!(plan.die_width_um(), 16.0 * 1500.0);
        assert_eq!(plan.die_height_um(), 8.0 * 1500.0);
        assert_eq!(plan.tile_um(), TILE_PITCH_UM);
    }

    #[test]
    fn iter_visits_every_tile_once_in_index_order() {
        let plan = default_plan();
        let mut count = 0usize;
        for (i, (c, kind)) in plan.iter().enumerate() {
            assert_eq!(plan.index(c), i);
            assert_eq!(plan.kind_at(c), kind);
            count += 1;
        }
        assert_eq!(count, plan.num_tiles());
    }

    #[test]
    #[should_panic(expected = "outside floorplan")]
    fn out_of_bounds_tile_panics() {
        let plan = default_plan();
        let _ = plan.kind_at(Coord::new(200, 0, 0));
    }
}
