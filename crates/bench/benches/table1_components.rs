//! Table 1 — area and power of the dTDMA bus components next to a
//! generic 5-port NoC router (90 nm synthesis constants).
//!
//! The benchmark regenerates the table's rows and the paper's derived
//! claim (the dTDMA additions are orders of magnitude below the router
//! budget) on every iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_power::{components::pillar_node_overhead_area_mm2, table1, GENERIC_ROUTER};

mod support {
    /// Row check shared with the harness binaries: Table 1 verbatim.
    pub fn regenerate() -> (f64, f64) {
        let rows = nim_power::table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].power_w, 119.55e-3);
        assert_eq!(rows[1].area_mm2, 0.00036207);
        assert_eq!(rows[2].power_w, 204.98e-6);
        let overhead_area = 2.0 * rows[1].area_mm2 + rows[2].area_mm2;
        let overhead_power = 2.0 * rows[1].power_w + rows[2].power_w;
        (overhead_area, overhead_power)
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("table1/regenerate", |b| {
        b.iter(|| black_box(support::regenerate()))
    });
    // Report the derived overhead ratios once.
    let (area, power) = support::regenerate();
    eprintln!(
        "table1: dTDMA overhead per pillar node = {:.6} mm2 ({:.3}% of a router), {:.2} uW ({:.4}% of a router)",
        area,
        area / GENERIC_ROUTER.area_mm2 * 100.0,
        power * 1e6,
        power / GENERIC_ROUTER.power_w * 100.0,
    );
    let _ = (table1(), pillar_node_overhead_area_mm2());
}

criterion_group!(benches, bench);
criterion_main!(benches);
