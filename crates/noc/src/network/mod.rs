//! The cycle-accurate network engine.
//!
//! [`Network`] owns every router, pillar bus, injection queue, and delivery
//! queue of the chip and advances them one clock cycle per [`Network::tick`].
//! Each cycle runs three phases:
//!
//! 1. **Bus phase** ([`bus_phase`]) — every dTDMA pillar transfers at most
//!    one flit from a transceiver interface to the destination layer's
//!    pillar router (round-robin over active interfaces = dynamic slot
//!    allocation).
//! 2. **Router phase** ([`router_phase`]) — every active router performs
//!    switch allocation: per output port, the winning flit traverses to
//!    the next router's input VC (single-stage router: one hop per cycle
//!    on a win).
//! 3. **Injection phase** ([`injection`]) — each node's network interface
//!    streams at most one flit of its oldest pending packet into a
//!    local-input VC.
//!
//! A flit stamped `arrived == now` cannot move again in the same cycle, so
//! ordering of phases never lets a flit traverse two hops per cycle.
//! Routers with no buffered flits are skipped entirely via a dirty list,
//! buses with nothing queued via an active-pillar list, which keeps big
//! idle meshes cheap to tick.
//!
//! Beyond per-cycle ticking, [`Network::next_event_at`] reports the
//! earliest future cycle at which any phase could change state, and
//! [`Network::advance_to`] batch-advances the clock across the provably
//! dead span before it — the hook `System::run` uses to skip serialisation
//! stalls and event waits even with traffic in flight. All flit storage
//! lives in one pooled [`FlitArena`](crate::packet::FlitArena), so queue
//! operations never reallocate and the hot path stays cache-local.

mod bus_phase;
mod injection;
mod router_phase;

use std::collections::VecDeque;

use nim_obs::{Category, EventData, Obs};
use nim_topology::ChipLayout;
use nim_types::{Coord, Cycle, Dir, NetworkConfig, PacketId};

use crate::dtdma::{BusStats, DtdmaBus};
use crate::packet::{Delivered, Flit, FlitArena, SendRequest};
use crate::router::Router;
use crate::routing::VerticalMode;
use crate::stats::NetworkStats;

/// One pending packet at a node's network interface.
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: PacketId,
    req: SendRequest,
    seq: u32,
    injected: Cycle,
}

/// Per-node injection state.
#[derive(Clone, Debug, Default)]
struct Injector {
    queue: VecDeque<Pending>,
    /// VC the current packet is streaming into.
    vc: Option<usize>,
}

/// One movable head flit found during a router's single input scan,
/// with its route already computed (look-ahead routing runs once per
/// flit instead of once per output port probed).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    /// `in_dir * vcs + vc`, the round-robin arbitration slot.
    slot: u16,
    /// Output port the flit requests.
    out: Dir,
    flit: Flit,
}

/// The on-chip network: stacked wormhole meshes joined by dTDMA pillars
/// (or by a full 3D mesh in the ablation mode).
#[derive(Clone, Debug)]
pub struct Network {
    layout: ChipLayout,
    mode: VerticalMode,
    vcs: usize,
    /// Cycles a flit dwells in a router before it may leave (Table 4:
    /// 1-cycle single-stage router; the 7-port ablation uses 2).
    router_latency: u64,
    /// Bus cycles per flit on the pillars (1 for a flit-wide bus; more
    /// when the via budget only affords a narrower vertical bus).
    bus_cycles_per_flit: u64,
    /// Per-bus earliest next grant time (serialisation of narrow buses).
    bus_ready_at: Vec<u64>,
    routers: Vec<Router>,
    buses: Vec<DtdmaBus>,
    /// Bus index at each node position, if the node is a pillar node.
    bus_of_node: Vec<Option<u16>>,
    injectors: Vec<Injector>,
    outbox: Vec<VecDeque<Delivered>>,
    delivered_nodes: Vec<u32>,
    in_delivered: Vec<bool>,
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    inj_active: Vec<u32>,
    in_inj: Vec<bool>,
    /// Buses with at least one queued flit (the pillar analogue of the
    /// router dirty list).
    bus_active: Vec<u16>,
    in_bus_active: Vec<bool>,
    /// Pooled backing store for every VC and transceiver FIFO.
    arena: FlitArena,
    /// Retired work lists, kept to reuse their capacity each tick.
    dirty_scratch: Vec<u32>,
    inj_scratch: Vec<u32>,
    bus_scratch: Vec<u16>,
    cand_scratch: Vec<Candidate>,
    now: Cycle,
    next_pkt: u64,
    flits_in_flight: u64,
    stats: NetworkStats,
    /// Flit traversals through each router (node-indexed), for
    /// utilisation maps and hotspot analysis.
    traversals: Vec<u64>,
    /// Observability sink; disabled by default (one branch per event).
    obs: Obs,
}

/// A [`Coord`] as the `[x, y, layer]` triple trace events carry.
#[inline]
fn c3(c: Coord) -> [u16; 3] {
    [u16::from(c.x), u16::from(c.y), u16::from(c.layer)]
}

impl Network {
    /// Builds the network for a chip layout.
    ///
    /// `mode` selects the vertical interconnect: [`VerticalMode::Pillars`]
    /// is the paper's hybrid NoC/bus design; [`VerticalMode::Mesh3d`] is
    /// the rejected 7-port router kept for the design-search ablation.
    pub fn new(layout: &ChipLayout, cfg: &NetworkConfig, mode: VerticalMode) -> Self {
        let vcs = cfg.vcs_per_port as usize;
        let depth = cfg.vc_depth_flits as usize;
        let n = layout.num_nodes();
        let mut arena = FlitArena::default();
        let mut routers = Vec::with_capacity(n);
        let mut bus_of_node = vec![None; n];
        for i in 0..n {
            let c = layout.coord_of_index(i);
            let mut dirs = vec![Dir::Local];
            for d in Dir::MESH {
                if d.step(c.x, c.y, layout.width(), layout.height()).is_some() {
                    dirs.push(d);
                }
            }
            match mode {
                VerticalMode::Pillars => {
                    if layout.layers() > 1 && layout.is_pillar_node(c) {
                        dirs.push(Dir::Vertical);
                    }
                }
                VerticalMode::Mesh3d => {
                    if c.layer + 1 < layout.layers() {
                        dirs.push(Dir::Up);
                    }
                    if c.layer > 0 {
                        dirs.push(Dir::Down);
                    }
                }
            }
            routers.push(Router::new(&mut arena, c, &dirs, &dirs, vcs, depth));
        }
        let mut buses = Vec::new();
        if mode == VerticalMode::Pillars && layout.layers() > 1 {
            for p in 0..layout.num_pillars() {
                let pillar = nim_types::PillarId(p);
                let xy = layout.pillar_xy(pillar);
                for layer in 0..layout.layers() {
                    let idx = layout.node_index(Coord::new(xy.0, xy.1, layer));
                    bus_of_node[idx] = Some(p);
                }
                buses.push(DtdmaBus::new(
                    &mut arena,
                    pillar,
                    xy,
                    layout.layers(),
                    depth,
                ));
            }
        }
        Self {
            layout: layout.clone(),
            mode,
            vcs,
            router_latency: u64::from(cfg.router_latency).max(1),
            bus_cycles_per_flit: u64::from(cfg.bus_cycles_per_flit()).max(1),
            bus_ready_at: vec![
                0;
                if mode == VerticalMode::Pillars && layout.layers() > 1 {
                    layout.num_pillars() as usize
                } else {
                    0
                }
            ],
            in_bus_active: vec![false; buses.len()],
            routers,
            buses,
            bus_of_node,
            injectors: vec![Injector::default(); n],
            outbox: vec![VecDeque::new(); n],
            delivered_nodes: Vec::new(),
            in_delivered: vec![false; n],
            dirty: Vec::new(),
            in_dirty: vec![false; n],
            inj_active: Vec::new(),
            in_inj: vec![false; n],
            bus_active: Vec::new(),
            arena,
            dirty_scratch: Vec::new(),
            inj_scratch: Vec::new(),
            bus_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            now: Cycle::ZERO,
            next_pkt: 0,
            flits_in_flight: 0,
            stats: NetworkStats::default(),
            traversals: vec![0; n],
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; events and per-tick cycle
    /// stamps flow into it from now on. The network drives
    /// [`Obs::set_now`], so the same handle shared by other components
    /// sees a consistent clock.
    pub fn set_obs(&mut self, obs: Obs) {
        obs.set_now(self.now.0);
        self.obs = obs;
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether no flits are buffered, queued, or awaiting injection.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.flits_in_flight == 0
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Per-bus statistics, indexed by pillar.
    pub fn bus_stats(&self) -> Vec<BusStats> {
        let mut out = Vec::new();
        self.bus_stats_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with per-bus statistics, indexed by
    /// pillar — the allocation-free variant callers on a sampling path
    /// use with a reused buffer (mirrors
    /// [`Network::drain_delivered_into`]).
    pub fn bus_stats_into(&self, buf: &mut Vec<BusStats>) {
        buf.clear();
        buf.extend(self.buses.iter().map(|b| b.stats));
    }

    /// Flits currently queued at each pillar bus's transceiver
    /// interfaces, indexed by pillar — the instantaneous occupancy the
    /// epoch sampler snapshots.
    pub fn bus_occupancies(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.bus_occupancies_into(&mut out);
        out
    }

    /// Clears `buf` and fills it with the per-pillar queued-flit counts;
    /// see [`Network::bus_stats_into`].
    pub fn bus_occupancies_into(&self, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend(self.buses.iter().map(|b| b.queued()));
    }

    /// Flit traversals through each router, indexed like
    /// [`ChipLayout::node_index`](nim_topology::ChipLayout::node_index) —
    /// the utilisation map behind congestion analysis.
    pub fn traversals(&self) -> &[u64] {
        &self.traversals
    }

    /// Queues a packet for injection at `req.src`. Returns its id.
    ///
    /// The packet's latency clock starts now; injection itself contends
    /// for the node's single flit-wide link into its router.
    ///
    /// # Panics
    ///
    /// Panics if `req.flits == 0` or an endpoint is outside the mesh.
    pub fn send(&mut self, req: SendRequest) -> PacketId {
        assert!(req.flits >= 1, "packet must have at least one flit");
        assert!(
            self.layout.contains(req.src),
            "src {} outside mesh",
            req.src
        );
        assert!(
            self.layout.contains(req.dst),
            "dst {} outside mesh",
            req.dst
        );
        let id = PacketId(self.next_pkt);
        self.next_pkt += 1;
        let node = self.layout.node_index(req.src);
        self.injectors[node].queue.push_back(Pending {
            id,
            req,
            seq: 0,
            injected: self.now,
        });
        self.mark_inj(node);
        self.flits_in_flight += u64::from(req.flits);
        self.stats.packets_sent += 1;
        self.obs.emit(Category::Packet, || EventData::PacketInject {
            packet: id.0,
            src: c3(req.src),
            dst: c3(req.dst),
            class: req.class.name(),
            flits: req.flits,
        });
        id
    }

    /// Pops the oldest packet delivered at node `c`, if any.
    pub fn pop_delivered(&mut self, c: Coord) -> Option<Delivered> {
        let idx = self.layout.node_index(c);
        self.outbox[idx].pop_front()
    }

    /// Drains every delivered packet, in (node, arrival) order.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        let mut out = Vec::new();
        self.drain_delivered_into(&mut out);
        out
    }

    /// Whether any delivered packets await pickup.
    #[inline]
    pub fn has_deliveries(&self) -> bool {
        !self.delivered_nodes.is_empty()
    }

    /// Drains all delivered packets into `buf` (in node order, then
    /// arrival order per node), touching only the nodes that actually
    /// received something.
    pub fn drain_delivered_into(&mut self, buf: &mut Vec<Delivered>) {
        // Single receiver — the common case when draining every cycle —
        // needs no sort.
        if let [n] = self.delivered_nodes[..] {
            self.delivered_nodes.clear();
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
            return;
        }
        let mut nodes = std::mem::take(&mut self.delivered_nodes);
        nodes.sort_unstable();
        for &n in &nodes {
            self.in_delivered[n as usize] = false;
            buf.extend(self.outbox[n as usize].drain(..));
        }
        nodes.clear();
        self.delivered_nodes = nodes;
    }

    /// Advances the clock over a known-quiet span without ticking.
    ///
    /// # Panics
    ///
    /// Panics if any flit is in flight — skipping would change behaviour.
    pub fn advance_idle(&mut self, cycles: u64) {
        assert!(self.is_idle(), "advance_idle with traffic in flight");
        self.advance_to(Cycle(self.now.0 + cycles));
    }

    /// Batch-advances the clock to `to` without running per-cycle phases,
    /// even with traffic in flight.
    ///
    /// Callers must only jump across provably-dead spans: `to` must lie
    /// strictly before [`Network::next_event_at`], so that every skipped
    /// cycle would have been a no-op tick.
    pub fn advance_to(&mut self, to: Cycle) {
        debug_assert!(to.0 >= self.now.0, "advance_to moving backwards");
        debug_assert!(
            self.next_event_at().is_none_or(|t| to.0 < t.0),
            "advance_to({}) skips a cycle where a phase fires",
            to.0
        );
        self.now = to;
        self.obs.set_now(self.now.0);
    }

    /// The earliest future cycle at which any phase could change state —
    /// the next-event horizon — or `None` when the network is idle.
    ///
    /// The bound is exact-or-early, never late: the returned cycle may
    /// turn out to be a no-op (a speculative bus grant or switch
    /// allocation can still fail on VC backpressure, which mutates
    /// nothing), but every cycle strictly before it is provably dead, so
    /// [`Network::advance_to`] may jump to `horizon - 1` unconditionally.
    pub fn next_event_at(&self) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let next = self.now.0 + 1;
        let mut earliest = u64::MAX;
        // Injection streams one flit per cycle while packets are pending.
        if !self.inj_active.is_empty() {
            earliest = next;
        }
        // A bus grants once it is free of any serialisation window and a
        // queued flit has dwelt one cycle at its transceiver interface.
        for &b in &self.bus_active {
            let b = b as usize;
            let front = self.buses[b]
                .ifaces
                .iter()
                .filter_map(|i| i.q.front(&self.arena))
                .map(|f| f.arrived.0 + 1)
                .min();
            if let Some(t) = front {
                earliest = earliest.min(t.max(self.bus_ready_at[b]).max(next));
            }
        }
        // A router moves a front flit once it has dwelt `router_latency`.
        for &n in &self.dirty {
            let r = &self.routers[n as usize];
            if r.occupancy == 0 {
                continue;
            }
            for port in r.inputs.iter().flatten() {
                for vc in 0..self.vcs {
                    if let Some(f) = port.vc(vc).front(&self.arena) {
                        earliest = earliest.min((f.arrived.0 + self.router_latency).max(next));
                    }
                }
            }
        }
        // Flits in flight always sit in some queue the scans above cover;
        // fall back to the very next cycle rather than ever over-skipping.
        Some(Cycle(if earliest == u64::MAX { next } else { earliest }))
    }

    /// Advances the network by one clock cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.obs.set_now(self.now.0);
        self.bus_phase(self.now);
        self.router_phase(self.now);
        self.injection_phase(self.now);
    }

    /// Ticks until the network is idle, up to `max_cycles`. Returns the
    /// number of cycles consumed, or `None` if traffic is still in flight
    /// at the limit (useful to catch livelock in tests).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Option<u64> {
        let start = self.now;
        while !self.is_idle() {
            if self.now - start >= max_cycles {
                return None;
            }
            self.tick();
        }
        Some(self.now - start)
    }

    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.in_dirty[node] {
            self.in_dirty[node] = true;
            self.dirty.push(node as u32);
        }
    }

    #[inline]
    fn mark_inj(&mut self, node: usize) {
        if !self.in_inj[node] {
            self.in_inj[node] = true;
            self.inj_active.push(node as u32);
        }
    }

    #[inline]
    fn mark_bus(&mut self, bus: usize) {
        if !self.in_bus_active[bus] {
            self.in_bus_active[bus] = true;
            self.bus_active.push(bus as u16);
        }
    }
}

#[cfg(test)]
#[path = "../network_tests.rs"]
mod tests;
