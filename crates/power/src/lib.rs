//! Area, power, and energy models for the network-in-memory chip.
//!
//! Three pieces:
//!
//! * [`components`] — the paper's Table 1: synthesised 90 nm power/area of
//!   the 5-port router and the dTDMA transceiver/arbiter, plus the
//!   `3n + log2(n)` control-wire arithmetic.
//! * [`vias`] — Table 2: device area a pillar's through-silicon wiring
//!   wastes at each via pitch.
//! * [`energy`] — activity-based L2 energy: routers, buses, banks, tag
//!   arrays; this is what quantifies the paper's "fewer migrations →
//!   lower power" argument.
//!
//! # Examples
//!
//! ```
//! use nim_power::energy::{ActivityCounts, EnergyModel};
//!
//! let model = EnergyModel::default();
//! let counts = ActivityCounts { flit_hops: 1_000, ..Default::default() };
//! assert!(model.estimate(&counts).total_j() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod energy;
pub mod leakage;
pub mod vias;

pub use components::{
    control_wires_per_layer, pillar_wires, table1, ComponentSpec, DTDMA_ARBITER, DTDMA_TRANSCEIVER,
    GENERIC_ROUTER,
};
pub use energy::{ActivityCounts, EnergyBreakdown, EnergyModel};
pub use leakage::{leakage_at, settle_tile, thermal_runaway_margin, LEAKAGE_DOUBLING_C};
pub use vias::{pillar_area_um2, pillar_area_vs_router, table2_row, TABLE2_PITCHES_UM};
