//! Network-in-Memory: a 3D chip-multiprocessor NUCA L2 simulator.
//!
//! This crate is the facade of the workspace reproducing *"Design and
//! Management of 3D Chip Multiprocessors Using Network-in-Memory"*
//! (Li et al., ISCA 2006). It re-exports every sub-crate under a stable
//! module name so downstream users can depend on a single crate:
//!
//! * [`types`] — identifiers, geometry, addresses, [`types::SystemConfig`].
//! * [`topology`] — the 3D mesh layout, clusters, pillars, CPU placement.
//! * [`obs`] — cycle-stamped event tracing, metrics, epoch sampling.
//! * [`noc`] — the cycle-accurate wormhole NoC with dTDMA pillar buses.
//! * [`cache`] — the NUCA L2: banks, tag arrays, search and migration.
//! * [`coherence`] — directory-based MSI for the private L1s.
//! * [`cpu`] — in-order cores and their split write-through L1s.
//! * [`workload`] — SPEC OMP-like synthetic reference streams.
//! * [`thermal`] — the steady-state 3D thermal estimator.
//! * [`power`] — router/dTDMA/bank power, area, and via-pitch models.
//! * [`core`] — system assembly, the four schemes, experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use network_in_memory::core::{Scheme, SystemBuilder};
//! use network_in_memory::workload::BenchmarkProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = SystemBuilder::new(Scheme::CmpDnuca3d)
//!     .sampled_transactions(2_000)
//!     .build()?
//!     .run(&BenchmarkProfile::swim())?;
//! assert!(report.avg_l2_hit_latency() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use nim_cache as cache;
pub use nim_coherence as coherence;
pub use nim_core as core;
pub use nim_cpu as cpu;
pub use nim_noc as noc;
pub use nim_obs as obs;
pub use nim_power as power;
pub use nim_thermal as thermal;
pub use nim_topology as topology;
pub use nim_types as types;
pub use nim_workload as workload;
