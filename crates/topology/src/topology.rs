//! [`Topology`]: routes and per-hop latencies behind a trait.
//!
//! [`ChipLayout`] answers geometry questions with small linear scans;
//! that is fine for construction-time work but not for the per-flit
//! routing fast path or for the latency-table fabric, which wants route
//! costs as table lookups. This module puts both behind one trait:
//!
//! * [`Topology`] — node/route enumeration, per-hop latency, pillar
//!   placement. Implemented directly by [`ChipLayout`] (linear scans)
//!   and by [`MeshTopology`] (precomputed [`RouteMap`], O(1) lookups).
//! * [`RouteMap`] — per-position nearest-pillar table replicating
//!   [`ChipLayout::nearest_pillar`]'s tie-break exactly, so swapping the
//!   table in changes no routing decision.
//! * [`TopoSpec`] — the CLI grammar behind `nim --topology`: presets
//!   (`default`, `4-layer`, `8-layer`) or a comma list of
//!   `layers=`/`pillars=`/`placement=` overrides applied to a
//!   [`SystemConfig`].
//!
//! The route-cost metric is min-over-pillars: within a layer the XY
//! Manhattan distance, across layers `min_p(d(a,p) + 1 + d(p,b))` where
//! the `1` is the vertical bus hop. This is the shortest-path metric of
//! the chip graph, so it is symmetric and obeys the triangle inequality
//! for every placement — properties pinned by `tests/properties.rs`.

use core::fmt;

use nim_types::{Coord, PillarId, PillarPlacement, SystemConfig};

use crate::layout::ChipLayout;

/// Node/route enumeration and per-hop latencies of a stacked chip.
///
/// Everything the network and the latency-table fabric need to cost a
/// route, independent of how the answers are computed.
pub trait Topology {
    /// Number of device layers.
    fn layers(&self) -> u8;

    /// Mesh width (nodes) of one layer.
    fn width(&self) -> u8;

    /// Mesh height (nodes) of one layer.
    fn height(&self) -> u8;

    /// Total mesh nodes across all layers.
    fn num_nodes(&self) -> usize;

    /// Number of vertical pillars (zero on a single-layer chip).
    fn num_pillars(&self) -> u16;

    /// The `(x, y)` position of a pillar (valid on every layer).
    fn pillar_xy(&self, p: PillarId) -> (u8, u8);

    /// The pillar whose position is nearest to `c` (2D Manhattan,
    /// lowest id on ties); `None` on a single-layer chip.
    fn nearest_pillar(&self, c: Coord) -> Option<PillarId>;

    /// Cycles a flit dwells in one router.
    fn hop_latency(&self) -> u32;

    /// Hop count of the cheapest route from `a` to `b`: XY Manhattan
    /// within a layer, `min_p(d(a,p) + 1 + d(p,b))` across layers.
    ///
    /// # Panics
    ///
    /// Panics on a cross-layer query when the chip has no pillars.
    fn route_cost(&self, a: Coord, b: Coord) -> u32 {
        if a.same_layer(b) {
            return a.manhattan_2d(b);
        }
        assert!(
            self.num_pillars() > 0,
            "cross-layer route on a chip without pillars"
        );
        (0..self.num_pillars())
            .map(|p| {
                let (x, y) = self.pillar_xy(PillarId(p));
                let on_src = Coord::new(x, y, a.layer);
                let on_dst = Coord::new(x, y, b.layer);
                a.manhattan_2d(on_src) + 1 + on_dst.manhattan_2d(b)
            })
            .min()
            .expect("at least one pillar")
    }
}

impl Topology for ChipLayout {
    fn layers(&self) -> u8 {
        ChipLayout::layers(self)
    }

    fn width(&self) -> u8 {
        ChipLayout::width(self)
    }

    fn height(&self) -> u8 {
        ChipLayout::height(self)
    }

    fn num_nodes(&self) -> usize {
        ChipLayout::num_nodes(self)
    }

    fn num_pillars(&self) -> u16 {
        ChipLayout::num_pillars(self)
    }

    fn pillar_xy(&self, p: PillarId) -> (u8, u8) {
        ChipLayout::pillar_xy(self, p)
    }

    fn nearest_pillar(&self, c: Coord) -> Option<PillarId> {
        ChipLayout::nearest_pillar(self, c)
    }

    /// A bare layout carries no timing parameters; it reports the unit
    /// per-hop latency (use [`MeshTopology`] for configured latencies).
    fn hop_latency(&self) -> u32 {
        1
    }
}

/// Precomputed nearest-pillar table for one layer's `(x, y)` grid.
///
/// Replaces the linear pillar scan on the routing fast path with a
/// single indexed load. The table is built with the exact tie-break of
/// [`ChipLayout::nearest_pillar`] (first pillar id among the minima), so
/// routing through the map is decision-identical to routing through the
/// layout — the fingerprint-compatibility argument of DESIGN.md §6i.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMap {
    width: u8,
    /// `nearest[y * width + x]`; empty when the chip has no pillars.
    nearest: Vec<PillarId>,
}

impl RouteMap {
    /// Builds the table for a layout.
    pub fn new(layout: &ChipLayout) -> Self {
        let (w, h) = (layout.width(), layout.height());
        let mut nearest = Vec::new();
        if layout.num_pillars() > 0 {
            nearest.reserve(w as usize * h as usize);
            for y in 0..h {
                for x in 0..w {
                    let c = Coord::new(x, y, 0);
                    nearest.push(
                        ChipLayout::nearest_pillar(layout, c).expect("pillars are non-empty"),
                    );
                }
            }
        }
        Self { width: w, nearest }
    }

    /// The nearest pillar to `c` (lowest id on ties); `None` when the
    /// chip has no pillars.
    #[inline]
    pub fn nearest_pillar(&self, c: Coord) -> Option<PillarId> {
        if self.nearest.is_empty() {
            return None;
        }
        Some(self.nearest[c.y as usize * self.width as usize + c.x as usize])
    }
}

/// A [`ChipLayout`] paired with its [`RouteMap`] and per-hop latency:
/// the O(1) [`Topology`] implementation the network and the modeled
/// fabrics route through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshTopology {
    layout: ChipLayout,
    routes: RouteMap,
    router_latency: u32,
}

impl MeshTopology {
    /// Builds the topology from an existing layout.
    pub fn new(layout: ChipLayout, router_latency: u32) -> Self {
        let routes = RouteMap::new(&layout);
        Self {
            layout,
            routes,
            router_latency,
        }
    }

    /// Builds the topology straight from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`](crate::TopologyError) when the layout
    /// cannot be built.
    pub fn from_config(cfg: &SystemConfig) -> Result<Self, crate::TopologyError> {
        let layout = ChipLayout::new(cfg)?;
        Ok(Self::new(layout, cfg.network.router_latency))
    }

    /// The underlying geometry.
    #[inline]
    pub fn layout(&self) -> &ChipLayout {
        &self.layout
    }

    /// The nearest-pillar table.
    #[inline]
    pub fn routes(&self) -> &RouteMap {
        &self.routes
    }
}

impl Topology for MeshTopology {
    fn layers(&self) -> u8 {
        self.layout.layers()
    }

    fn width(&self) -> u8 {
        self.layout.width()
    }

    fn height(&self) -> u8 {
        self.layout.height()
    }

    fn num_nodes(&self) -> usize {
        self.layout.num_nodes()
    }

    fn num_pillars(&self) -> u16 {
        self.layout.num_pillars()
    }

    fn pillar_xy(&self, p: PillarId) -> (u8, u8) {
        self.layout.pillar_xy(p)
    }

    fn nearest_pillar(&self, c: Coord) -> Option<PillarId> {
        self.routes.nearest_pillar(c)
    }

    fn hop_latency(&self) -> u32 {
        self.router_latency
    }
}

/// Error parsing a [`TopoSpec`] from its CLI string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoSpecError(String);

impl fmt::Display for TopoSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; expected 'default', '4-layer', '8-layer', or a comma list of \
             layers=N, pillars=N, placement={{spread|corners|diagonal}}",
            self.0
        )
    }
}

impl core::error::Error for TopoSpecError {}

/// The `nim --topology` grammar: a set of overrides applied on top of a
/// [`SystemConfig`].
///
/// Presets name the common stacks (`default` changes nothing, `4-layer`
/// and `8-layer` restack the same silicon); the explicit comma grammar
/// (`layers=4,pillars=4,placement=corners`) reaches everything else.
/// Unset fields keep whatever the base configuration had, so a spec
/// composes with the other CLI flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopoSpec {
    /// Device layers, if overridden.
    pub layers: Option<u8>,
    /// Pillar count, if overridden.
    pub pillars: Option<u16>,
    /// Pillar placement strategy, if overridden.
    pub placement: Option<PillarPlacement>,
}

impl TopoSpec {
    /// Parses the CLI value.
    ///
    /// # Errors
    ///
    /// Returns a [`TopoSpecError`] naming the offending token.
    pub fn parse(s: &str) -> Result<Self, TopoSpecError> {
        match s {
            "default" => return Ok(Self::default()),
            "4-layer" => {
                return Ok(Self {
                    layers: Some(4),
                    ..Self::default()
                });
            }
            "8-layer" => {
                return Ok(Self {
                    layers: Some(8),
                    ..Self::default()
                });
            }
            _ => {}
        }
        let mut spec = Self::default();
        for part in s.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                return Err(TopoSpecError(format!("unknown topology '{part}'")));
            };
            match key {
                "layers" => {
                    spec.layers = Some(
                        value
                            .parse()
                            .map_err(|_| TopoSpecError(format!("bad layer count '{value}'")))?,
                    );
                }
                "pillars" => {
                    spec.pillars = Some(
                        value
                            .parse()
                            .map_err(|_| TopoSpecError(format!("bad pillar count '{value}'")))?,
                    );
                }
                "placement" => {
                    spec.placement = Some(
                        PillarPlacement::parse(value)
                            .map_err(|v| TopoSpecError(format!("unknown placement '{v}'")))?,
                    );
                }
                other => return Err(TopoSpecError(format!("unknown topology key '{other}'"))),
            }
        }
        Ok(spec)
    }

    /// Applies the overrides to a configuration.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(layers) = self.layers {
            cfg.network.layers = layers;
        }
        if let Some(pillars) = self.pillars {
            cfg.network.pillars = pillars;
        }
        if let Some(placement) = self.placement {
            cfg.network.pillar_placement = placement;
        }
    }

    /// Stable label for sweep tables and CI fingerprint columns.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(l) = self.layers {
            parts.push(format!("layers={l}"));
        }
        if let Some(p) = self.pillars {
            parts.push(format!("pillars={p}"));
        }
        if let Some(pl) = self.placement {
            parts.push(format!("placement={}", pl.name()));
        }
        if parts.is_empty() {
            "default".to_owned()
        } else {
            parts.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(cfg: &SystemConfig) -> MeshTopology {
        MeshTopology::from_config(cfg).expect("topology")
    }

    #[test]
    fn route_map_matches_linear_scan_everywhere() {
        for cfg in [
            SystemConfig::default(),
            SystemConfig::default().with_layers(4),
            SystemConfig::default().with_pillars(3),
            SystemConfig::default().with_pillar_placement(PillarPlacement::Corners),
            SystemConfig::default().flattened(),
        ] {
            let t = mesh(&cfg);
            for i in 0..t.num_nodes() {
                let c = t.layout().coord_of_index(i);
                assert_eq!(
                    t.nearest_pillar(c),
                    ChipLayout::nearest_pillar(t.layout(), c),
                    "cfg layers={} at {c}",
                    cfg.network.layers
                );
            }
        }
    }

    #[test]
    fn route_cost_agrees_between_impls() {
        let t = mesh(&SystemConfig::default().with_layers(4));
        let l = t.layout().clone();
        for a in 0..t.num_nodes() {
            let ca = l.coord_of_index(a);
            for b in (0..t.num_nodes()).step_by(7) {
                let cb = l.coord_of_index(b);
                assert_eq!(t.route_cost(ca, cb), Topology::route_cost(&l, ca, cb));
            }
        }
    }

    #[test]
    fn hop_latency_comes_from_config() {
        let mut cfg = SystemConfig::default();
        cfg.network.router_latency = 3;
        assert_eq!(mesh(&cfg).hop_latency(), 3);
        assert_eq!(Topology::hop_latency(&ChipLayout::new(&cfg).unwrap()), 1);
    }

    #[test]
    fn spec_presets_parse() {
        assert_eq!(TopoSpec::parse("default").unwrap(), TopoSpec::default());
        assert_eq!(TopoSpec::parse("4-layer").unwrap().layers, Some(4));
        assert_eq!(TopoSpec::parse("8-layer").unwrap().layers, Some(8));
    }

    #[test]
    fn spec_comma_grammar_parses_and_applies() {
        let spec = TopoSpec::parse("layers=4,pillars=4,placement=corners").unwrap();
        assert_eq!(spec.layers, Some(4));
        assert_eq!(spec.pillars, Some(4));
        assert_eq!(spec.placement, Some(PillarPlacement::Corners));
        let mut cfg = SystemConfig::default();
        spec.apply(&mut cfg);
        assert_eq!(cfg.network.layers, 4);
        assert_eq!(cfg.network.pillars, 4);
        assert_eq!(cfg.network.pillar_placement, PillarPlacement::Corners);
        assert_eq!(spec.label(), "layers=4,pillars=4,placement=corners");
        assert_eq!(TopoSpec::default().label(), "default");
    }

    #[test]
    fn spec_rejects_junk() {
        assert!(TopoSpec::parse("ring").is_err());
        assert!(TopoSpec::parse("layers=x").is_err());
        assert!(TopoSpec::parse("placement=ring").is_err());
        assert!(TopoSpec::parse("torus=1").is_err());
        let msg = TopoSpec::parse("ring").unwrap_err().to_string();
        assert!(msg.contains("ring") && msg.contains("8-layer"), "{msg}");
    }

    #[test]
    fn default_spec_leaves_config_untouched() {
        let mut cfg = SystemConfig::default();
        TopoSpec::default().apply(&mut cfg);
        assert_eq!(cfg, SystemConfig::default());
    }
}
