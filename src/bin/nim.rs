//! `nim` — command-line front end for the network-in-memory simulator.
//!
//! ```sh
//! nim run --scheme dnuca3d --bench swim --sample 20000
//! nim compare --bench mgrid
//! nim thermal
//! nim list
//! ```
//!
//! Argument parsing is deliberately dependency-free (the workspace only
//! uses the pre-approved crates); see `nim help` for the full grammar.

use std::error::Error;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use network_in_memory::core::experiments::{latency_breakdown, table3_thermal, ExperimentScale};
use network_in_memory::core::{Phase, Scheme, SystemBuilder};
use network_in_memory::obs::{CategoryMask, Obs, ObsConfig};
use network_in_memory::workload::BenchmarkProfile;

const HELP: &str = "\
nim — 3D chip-multiprocessor network-in-memory simulator (ISCA'06)

USAGE:
    nim <COMMAND> [OPTIONS]

COMMANDS:
    run        simulate one scheme on one benchmark
    compare    simulate all four schemes on one benchmark
    breakdown  per-phase latency decomposition, all four schemes
    thermal    print the Table 3 thermal profiles
    list       list benchmarks and schemes
    help       show this message

OPTIONS (run / compare):
    --scheme <dnuca|dnuca2d|snuca3d|dnuca3d>   scheme (run only; default dnuca3d)
    --bench <name>                             benchmark profile (default swim)
    --layers <n>                               device layers (default 2)
    --pillars <n>                              vertical pillars (default 8)
    --l2-scale <1|2|4>                         L2 capacity factor (default 1)
    --warmup <n>                               warm-up transactions (default 2000)
    --sample <n>                               sampled transactions (default 20000)
    --seed <n>                                 workload seed (default 42)
    --shards <n>                               advance the network as n
                                               layer-group shards on worker
                                               threads (bit-identical;
                                               default: NIM_SHARDS, else 1)

OBSERVABILITY (run only; all off by default):
    --trace-out <path>        write a Chrome trace_event JSON file
                              (load it at https://ui.perfetto.dev)
    --trace-filter <cats>     categories to trace: 'all', 'none', or a
                              comma list of packet,hop,pillar,search,
                              migration,coherence,bank,memory,meta;
                              prefix '-' subtracts from all (default:
                              all except the per-flit 'hop' firehose)
    --metrics-out <path>      write final metrics + epoch samples JSON
    --sample-every <cycles>   snapshot metrics every N cycles (0 = off)
    --trace-txn-sample <n>    emit begin/end spans with the per-phase
                              latency breakdown for every n-th
                              transaction (0 = off; implies tracing)
";

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    match s.to_ascii_lowercase().as_str() {
        "dnuca" | "cmp-dnuca" => Ok(Scheme::CmpDnuca),
        "dnuca2d" | "cmp-dnuca-2d" | "2d" => Ok(Scheme::CmpDnuca2d),
        "snuca3d" | "cmp-snuca-3d" | "snuca" => Ok(Scheme::CmpSnuca3d),
        "dnuca3d" | "cmp-dnuca-3d" | "3d" => Ok(Scheme::CmpDnuca3d),
        other => Err(format!("unknown scheme '{other}'")),
    }
}

#[derive(Debug)]
struct Options {
    scheme: Scheme,
    bench: BenchmarkProfile,
    layers: u8,
    pillars: u16,
    l2_scale: u32,
    warmup: u64,
    sample: u64,
    seed: u64,
    /// `None` keeps the builder default (`NIM_SHARDS`, else 1).
    shards: Option<usize>,
    trace_out: Option<String>,
    trace_filter: CategoryMask,
    metrics_out: Option<String>,
    sample_every: u64,
    txn_sample: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scheme: Scheme::CmpDnuca3d,
            bench: BenchmarkProfile::swim(),
            layers: 2,
            pillars: 8,
            l2_scale: 1,
            warmup: 2_000,
            sample: 20_000,
            seed: 42,
            shards: None,
            trace_out: None,
            trace_filter: CategoryMask::default_trace(),
            metrics_out: None,
            sample_every: 0,
            txn_sample: 0,
        }
    }
}

impl Options {
    /// Builds the observability handle the flags ask for — a disabled
    /// handle (one branch per instrumentation point) when no flag is set.
    fn obs(&self) -> Obs {
        if self.trace_out.is_none()
            && self.metrics_out.is_none()
            && self.sample_every == 0
            && self.txn_sample == 0
        {
            return Obs::disabled();
        }
        Obs::new(ObsConfig {
            // Transaction spans live in the trace ring, so sampling them
            // implies tracing even without --trace-out (the run summary
            // still reports the event count).
            trace: self.trace_out.is_some() || self.txn_sample > 0,
            mask: self.trace_filter,
            sample_every: self.sample_every,
            txn_sample: self.txn_sample,
            ..ObsConfig::default()
        })
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => opts.scheme = parse_scheme(&value()?)?,
            "--bench" => {
                let name = value()?;
                opts.bench = BenchmarkProfile::by_name(&name)
                    .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
            }
            "--layers" => opts.layers = value()?.parse().map_err(|e| format!("--layers: {e}"))?,
            "--pillars" => {
                opts.pillars = value()?.parse().map_err(|e| format!("--pillars: {e}"))?
            }
            "--l2-scale" => {
                opts.l2_scale = value()?.parse().map_err(|e| format!("--l2-scale: {e}"))?
            }
            "--warmup" => opts.warmup = value()?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--sample" => opts.sample = value()?.parse().map_err(|e| format!("--sample: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--shards" => {
                opts.shards = Some(value()?.parse().map_err(|e| format!("--shards: {e}"))?)
            }
            "--trace-out" => opts.trace_out = Some(value()?),
            "--trace-filter" => {
                opts.trace_filter =
                    CategoryMask::parse(&value()?).map_err(|e| format!("--trace-filter: {e}"))?
            }
            "--metrics-out" => opts.metrics_out = Some(value()?),
            "--sample-every" => {
                opts.sample_every = value()?
                    .parse()
                    .map_err(|e| format!("--sample-every: {e}"))?
            }
            "--trace-txn-sample" => {
                opts.txn_sample = value()?
                    .parse()
                    .map_err(|e| format!("--trace-txn-sample: {e}"))?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn run_one(opts: &Options, scheme: Scheme, obs: Obs) -> Result<(), Box<dyn Error>> {
    let mut builder = SystemBuilder::new(scheme)
        .layers(opts.layers)
        .pillars(opts.pillars)
        .l2_scale(opts.l2_scale)
        .warmup_transactions(opts.warmup)
        .sampled_transactions(opts.sample)
        .seed(opts.seed)
        .observability(obs.clone());
    if let Some(n) = opts.shards {
        builder = builder.shards(n);
    }
    let report = builder.build()?.run(&opts.bench)?;
    println!(
        "{:<14} avg L2 hit {:>7.2} cy | IPC {:>6.4} | migrations {:>7} | miss {:>6.4} | L2 energy {:>8.4} mJ",
        scheme.label(),
        report.avg_l2_hit_latency(),
        report.ipc(),
        report.counters.migrations,
        report.l2_miss_rate(),
        report.energy().total_j() * 1e3,
    );
    if let Some(path) = &opts.trace_out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
        obs.export_trace(&mut w)?;
        eprintln!(
            "trace: {} events ({} dropped) -> {path}",
            obs.event_count(),
            obs.dropped_events()
        );
    }
    if let Some(path) = &opts.metrics_out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
        obs.export_metrics(&mut w)?;
        eprintln!("metrics -> {path}");
    }
    if obs.is_enabled() && obs.sample_every() > 0 {
        eprintln!("simulated {:.0} cycles/sec", obs.cycles_per_sec());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let result: Result<(), Box<dyn Error>> = match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "list" => {
            println!("benchmarks (SPEC OMP, Table 5):");
            for b in BenchmarkProfile::all() {
                println!(
                    "  {:<8} paper L2 transactions: {:>12}",
                    b.name, b.paper_l2_transactions
                );
            }
            println!("schemes:");
            for s in Scheme::ALL {
                println!("  {}", s.label());
            }
            Ok(())
        }
        "thermal" => (|| -> Result<(), Box<dyn Error>> {
            println!(
                "{:<26} {:>10} {:>10} {:>10}",
                "configuration", "peak C", "avg C", "min C"
            );
            for row in table3_thermal()? {
                println!(
                    "{:<26} {:>10.2} {:>10.2} {:>10.2}",
                    row.config, row.peak_c, row.avg_c, row.min_c
                );
            }
            Ok(())
        })(),
        "run" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| {
                println!("benchmark: {}", opts.bench.name);
                run_one(&opts, opts.scheme, opts.obs())
            }),
        "breakdown" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| {
                println!("benchmark: {}", opts.bench.name);
                let scale = ExperimentScale {
                    seed: opts.seed,
                    warmup: opts.warmup,
                    sample: opts.sample,
                };
                let rows = latency_breakdown(std::slice::from_ref(&opts.bench), scale)?;
                print!("{:<14}", "scheme");
                for phase in Phase::ALL {
                    print!(" {:>14}", phase.name());
                }
                println!(" {:>14}", "total");
                for row in rows {
                    print!("{:<14}", row.scheme.label());
                    for mean in row.phases {
                        print!(" {:>14.2}", mean);
                    }
                    println!(" {:>14.2}", row.total());
                }
                Ok(())
            }),
        "compare" => parse_options(&args[1..])
            .map_err(Into::into)
            .and_then(|opts| {
                println!("benchmark: {}", opts.bench.name);
                // Tracing a 4-scheme sweep into one file would interleave
                // unrelated runs; observability is a `run` concern.
                for scheme in Scheme::ALL {
                    run_one(&opts, scheme, Obs::disabled())?;
                }
                Ok(())
            }),
        other => Err(format!("unknown command '{other}' (try `nim help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let opts = parse_options(&[]).unwrap();
        assert_eq!(opts.scheme, Scheme::CmpDnuca3d);
        assert_eq!(opts.bench.name, "swim");
        assert_eq!(opts.layers, 2);
        assert_eq!(opts.pillars, 8);
        assert_eq!(opts.sample, 20_000);
    }

    #[test]
    fn flags_override_defaults() {
        let opts = parse_options(&args(&[
            "--scheme",
            "snuca3d",
            "--bench",
            "mgrid",
            "--layers",
            "4",
            "--pillars",
            "4",
            "--l2-scale",
            "2",
            "--warmup",
            "10",
            "--sample",
            "100",
            "--seed",
            "7",
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.scheme, Scheme::CmpSnuca3d);
        assert_eq!(opts.bench.name, "mgrid");
        assert_eq!(opts.layers, 4);
        assert_eq!(opts.pillars, 4);
        assert_eq!(opts.l2_scale, 2);
        assert_eq!(opts.warmup, 10);
        assert_eq!(opts.sample, 100);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.shards, Some(2));
    }

    #[test]
    fn shards_defaults_to_builder_choice() {
        assert_eq!(parse_options(&[]).unwrap().shards, None);
        assert!(parse_options(&args(&["--shards", "zero?"]))
            .unwrap_err()
            .contains("--shards"));
    }

    #[test]
    fn observability_flags_parse() {
        let opts = parse_options(&args(&[
            "--trace-out",
            "t.json",
            "--trace-filter",
            "packet,pillar",
            "--metrics-out",
            "m.json",
            "--sample-every",
            "1000",
        ]))
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.sample_every, 1_000);
        assert!(opts.obs().is_enabled());
        assert!(parse_options(&args(&["--trace-filter", "bogus"]))
            .unwrap_err()
            .contains("--trace-filter"));
    }

    #[test]
    fn obs_defaults_to_disabled() {
        assert!(!parse_options(&[]).unwrap().obs().is_enabled());
    }

    #[test]
    fn txn_sampling_implies_tracing() {
        let opts = parse_options(&args(&["--trace-txn-sample", "100"])).unwrap();
        assert_eq!(opts.txn_sample, 100);
        let obs = opts.obs();
        assert!(obs.is_enabled(), "span sampling enables observability");
        assert!(obs.txn_span_due(0), "txn 0 is on the stride");
        assert!(!obs.txn_span_due(1), "txn 1 is off the stride");
        assert!(parse_options(&args(&["--trace-txn-sample", "x"]))
            .unwrap_err()
            .contains("--trace-txn-sample"));
    }

    #[test]
    fn scheme_aliases_resolve() {
        assert_eq!(parse_scheme("dnuca").unwrap(), Scheme::CmpDnuca);
        assert_eq!(parse_scheme("CMP-DNUCA-2D").unwrap(), Scheme::CmpDnuca2d);
        assert_eq!(parse_scheme("3d").unwrap(), Scheme::CmpDnuca3d);
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_options(&args(&["--bench", "doom"]))
            .unwrap_err()
            .contains("doom"));
        assert!(parse_options(&args(&["--layers"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_options(&args(&["--bogus"]))
            .unwrap_err()
            .contains("bogus"));
        assert!(parse_options(&args(&["--layers", "xyz"]))
            .unwrap_err()
            .contains("--layers"));
    }
}
