//! Temperature-dependent leakage power.
//!
//! Sub-threshold leakage grows roughly exponentially with junction
//! temperature — in the 90 nm generation it doubles about every 25 °C.
//! This couples the thermal and power analyses in both directions: the
//! hotter upper layers of a 3D stack leak more, which heats them further.
//! [`leakage_at`] models the scaling, and [`thermal_runaway_margin`]
//! checks the loop's stability — the quantitative backing for the
//! paper's insistence on avoiding hotspots (Table 3).

/// Temperature increase that doubles leakage power (°C), 90 nm-era.
pub const LEAKAGE_DOUBLING_C: f64 = 25.0;

/// Reference temperature at which component leakage is specified (°C).
pub const LEAKAGE_REF_C: f64 = 45.0;

/// Leakage power at `temp_c`, given its value at [`LEAKAGE_REF_C`].
pub fn leakage_at(base_w: f64, temp_c: f64) -> f64 {
    base_w * ((temp_c - LEAKAGE_REF_C) / LEAKAGE_DOUBLING_C).exp2()
}

/// One fixed-point iteration of the leakage/temperature loop for a
/// single tile: given a thermal resistance to ambient and a dynamic
/// power, returns the self-consistent total power and temperature.
///
/// Returns `None` if the loop diverges (thermal runaway): each degree of
/// heating adds more leakage than the sink can remove.
pub fn settle_tile(
    dynamic_w: f64,
    base_leak_w: f64,
    r_to_ambient: f64,
    ambient_c: f64,
) -> Option<(f64, f64)> {
    let mut temp = ambient_c;
    for _ in 0..1_000 {
        let power = dynamic_w + leakage_at(base_leak_w, temp);
        let next = ambient_c + power * r_to_ambient;
        if !next.is_finite() || next > 400.0 {
            return None; // silicon will not survive to tell the tale
        }
        if (next - temp).abs() < 1e-6 {
            return Some((power, next));
        }
        temp = next;
    }
    None
}

/// Stability margin of the leakage feedback loop at temperature `temp_c`:
/// the loop gain `d(leak)/dT × R`. Below 1.0 the loop settles; at or
/// above 1.0 the tile runs away.
pub fn thermal_runaway_margin(base_leak_w: f64, r_to_ambient: f64, temp_c: f64) -> f64 {
    let dleak_dt = leakage_at(base_leak_w, temp_c) * core::f64::consts::LN_2 / LEAKAGE_DOUBLING_C;
    dleak_dt * r_to_ambient
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_doubles_every_25_degrees() {
        let base = 0.05;
        assert!((leakage_at(base, LEAKAGE_REF_C) - base).abs() < 1e-12);
        assert!((leakage_at(base, LEAKAGE_REF_C + 25.0) - 2.0 * base).abs() < 1e-12);
        assert!((leakage_at(base, LEAKAGE_REF_C + 50.0) - 4.0 * base).abs() < 1e-12);
        assert!((leakage_at(base, LEAKAGE_REF_C - 25.0) - 0.5 * base).abs() < 1e-12);
    }

    #[test]
    fn mild_tiles_settle_to_a_fixed_point() {
        // A cache bank: tiny leakage, generous sink.
        let (power, temp) = settle_tile(0.05, 0.01, 30.0, 45.0).expect("settles");
        assert!(temp > 45.0 && temp < 60.0, "temp {temp}");
        assert!(power > 0.05, "leakage adds on top of dynamic power");
        // Self-consistency: T = ambient + P * R.
        assert!((temp - (45.0 + power * 30.0)).abs() < 1e-3);
    }

    #[test]
    fn runaway_is_detected() {
        // Pathological: big leakage source behind a terrible sink.
        assert!(settle_tile(5.0, 2.0, 60.0, 45.0).is_none());
    }

    #[test]
    fn margin_predicts_the_settle_outcome() {
        // Stable case: margin well below 1 at the settled temperature.
        let (_, temp) = settle_tile(0.05, 0.01, 30.0, 45.0).unwrap();
        assert!(thermal_runaway_margin(0.01, 30.0, temp) < 1.0);
        // The pathological case crosses 1 before any plausible settling.
        assert!(thermal_runaway_margin(2.0, 60.0, 100.0) > 1.0);
    }

    #[test]
    fn hotter_stacks_leak_more() {
        // The 3D argument: the same bank leaks ~70% more at the 4-layer
        // average temperature (87 C) than at the 2D one (54 C).
        let at_2d = leakage_at(0.05, 54.0);
        let at_4l = leakage_at(0.05, 87.0);
        assert!(at_4l / at_2d > 1.6 && at_4l / at_2d < 3.0);
    }
}
