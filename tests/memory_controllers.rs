//! Integration tests of the edge-memory-controller extension: misses
//! travel the network to bandwidth-limited DRAM channels.

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::types::{AccessKind, Address, CpuId, SystemConfig, TraceOp};
use network_in_memory::workload::{BenchmarkProfile, ReplayTrace};

#[test]
fn edge_memory_misses_cost_more_than_the_flat_model() {
    // One cold read; with controllers the miss additionally pays the
    // round trip to the chip edge.
    let run = |edge: bool| {
        let cfg = SystemConfig {
            num_cpus: 1,
            ..SystemConfig::default()
        };
        let mut trace = ReplayTrace::default();
        trace.push(
            CpuId(0),
            TraceOp {
                gap: 1,
                kind: AccessKind::Read,
                addr: Address(0x1234_0000),
            },
        );
        SystemBuilder::new(Scheme::CmpDnuca3d)
            .config(cfg)
            .prewarm(false)
            .warmup_transactions(0)
            .sampled_transactions(1)
            .edge_memory_controllers(edge)
            .build()
            .unwrap()
            .run_with_source("mc", &mut trace)
            .unwrap()
    };
    let flat = run(false);
    let edge = run(true);
    assert_eq!(flat.counters.l2_misses, 1);
    assert_eq!(edge.counters.l2_misses, 1);
    assert!(
        edge.counters.miss_latency_sum > flat.counters.miss_latency_sum,
        "edge {} must exceed flat {}",
        edge.counters.miss_latency_sum,
        flat.counters.miss_latency_sum
    );
    assert!(
        edge.counters.miss_latency_sum < flat.counters.miss_latency_sum + 120,
        "the detour is a couple of mesh round trips, not more"
    );
}

#[test]
fn channel_bandwidth_serialises_back_to_back_misses() {
    // A burst of cold misses all landing on the same controller must
    // drain one per `memory_interval`, so the LAST miss waits longer
    // than the first.
    let cfg = SystemConfig {
        num_cpus: 1,
        memory_controllers: 1,
        memory_interval: 64,
        ..SystemConfig::default()
    };
    let n = 8u64;
    let mut trace = ReplayTrace::default();
    for i in 0..n {
        trace.push(
            CpuId(0),
            TraceOp {
                gap: 1,
                kind: AccessKind::Write, // stores do not block the core
                addr: Address(0x2000_0000 + i * 0x1_0000),
            },
        );
    }
    let mut system = SystemBuilder::new(Scheme::CmpDnuca3d)
        .config(cfg)
        .prewarm(false)
        .warmup_transactions(0)
        .sampled_transactions(n)
        .edge_memory_controllers(true)
        .build()
        .unwrap();
    let report = system.run_with_source("mc", &mut trace).unwrap();
    assert_eq!(report.counters.l2_misses, n);
    let avg_miss = report.counters.miss_latency_sum as f64 / n as f64;
    // With perfect parallelism every miss would cost ~the first one's
    // latency; serialisation at 64 cycles/request must push the average
    // well beyond that.
    assert!(
        avg_miss > 300.0 + 64.0,
        "queueing must show up in the average: {avg_miss:.0}"
    );
}

#[test]
fn full_runs_work_with_edge_memory_enabled() {
    let report = SystemBuilder::new(Scheme::CmpSnuca3d)
        .seed(9)
        .warmup_transactions(200)
        .sampled_transactions(1_500)
        .edge_memory_controllers(true)
        .build()
        .unwrap()
        .run(&BenchmarkProfile::art())
        .unwrap();
    assert!(report.avg_l2_hit_latency() > 0.0);
    assert!(report.ipc() > 0.0);
}
