//! NUCA L2 cache: banks, cluster tag arrays, placement, search plans, and
//! the 3D-aware migration policy.
//!
//! This crate models the *contents* and *policies* of the paper's shared
//! L2 (§4): which line lives in which cluster/bank/set, pseudo-LRU
//! replacement, the two-step search schedule, and gradual, lazy,
//! layer-preserving migration. Timing (network traversal, tag/bank access
//! latencies) is driven by `nim-core`, which walks these structures while
//! ticking the NoC.
//!
//! # Examples
//!
//! ```
//! use nim_cache::NucaL2;
//! use nim_types::{L2Config, LineAddr};
//!
//! let mut l2 = NucaL2::new(&L2Config::default());
//! let line = LineAddr(0x40);
//! let placed = l2.insert(line);
//! assert_eq!(l2.locate(line), Some(placed.cluster));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cluster;
pub mod migration;
pub mod nuca;
pub mod plru;
pub mod search;

pub use bank::{Bank, Inserted};
pub use cluster::Cluster;
pub use migration::migration_target;
pub use nuca::{L2Stats, MigrationError, MigrationOutcome, NucaL2, Placement};
pub use plru::TreePlru;
pub use search::SearchPlan;
