//! CPU placement policies (paper §3.3 and Algorithm 1).
//!
//! CPUs sit on or near vertical pillars to get single-hop access to every
//! layer, but must not stack in the same vertical plane or temperatures
//! spike (Table 3) and the shared pillar congests. The policies here
//! reproduce every configuration the paper studies:
//!
//! * [`PlacementPolicy::MaximalOffset`] — one CPU per pillar, offsetting in
//!   all three dimensions (Figure 9). The default for 8 pillars / 8 CPUs.
//! * [`PlacementPolicy::Algorithm1`] — the paper's Algorithm 1 for shared
//!   pillars (`c` CPUs per pillar per layer at offset `k`).
//! * [`PlacementPolicy::Stacked`] — CPUs stacked in the same vertical
//!   plane; the thermally-bad ablation of Table 3.
//! * [`PlacementPolicy::Edges`] — processors on the chip perimeter, as in
//!   the CMP-DNUCA baseline of Beckmann & Wood.
//! * [`PlacementPolicy::Interior2d`] — our interior placement on a
//!   single-layer chip (the paper's 2D scheme surrounds CPUs with banks).

use core::error::Error;
use core::fmt;

use nim_types::{Coord, CpuId, PillarId};

use crate::layout::ChipLayout;

/// Where one CPU ended up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuSeat {
    /// The CPU seated here.
    pub cpu: CpuId,
    /// Mesh node the CPU (and its L1) attaches to.
    pub coord: Coord,
    /// The pillar this CPU uses for all its inter-layer traffic
    /// (`None` on a single-layer chip).
    pub pillar: Option<PillarId>,
}

/// Error produced by [`PlacementPolicy::place`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// `MaximalOffset` needs at least one pillar per CPU.
    NotEnoughPillars {
        /// CPUs requested.
        cpus: u32,
        /// Pillars available.
        pillars: u16,
    },
    /// Algorithm 1 supports only 1, 2, or 4 CPUs per pillar per layer, and
    /// the CPU count must divide evenly over pillars × layers.
    UnsupportedSharing {
        /// CPUs requested.
        cpus: u32,
        /// Pillars available.
        pillars: u16,
        /// Device layers.
        layers: u8,
    },
    /// Two CPUs would land on the same mesh node.
    SeatCollision(Coord),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NotEnoughPillars { cpus, pillars } => {
                write!(f, "maximal offset needs one pillar per CPU: {cpus} CPUs, {pillars} pillars")
            }
            PlacementError::UnsupportedSharing { cpus, pillars, layers } => write!(
                f,
                "{cpus} CPUs cannot be split as 1, 2, or 4 per pillar per layer over {pillars} pillars x {layers} layers"
            ),
            PlacementError::SeatCollision(c) => {
                write!(f, "two CPUs placed on the same node {c}")
            }
        }
    }
}

impl Error for PlacementError {}

/// A CPU placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// One CPU per pillar, alternating layers so CPUs are offset in all
    /// three dimensions (Figure 9). Falls back to [`Self::Interior2d`] on a
    /// single-layer chip (the paper's 2D scheme is the 1-layer special
    /// case of the 3D scheme).
    MaximalOffset,
    /// The paper's Algorithm 1: `c = cpus / (pillars × layers)` CPUs seated
    /// around each pillar on each layer at hop offset `k`, with the offset
    /// pattern rotating over a 4-layer period. `c` must be 1, 2, or 4
    /// (`c = 1` rotates a single offset seat E/N/W/S by layer — the
    /// degenerate case the paper's figure implies but the listing omits).
    Algorithm1 {
        /// Offset distance from the pillar in network hops (paper uses 1;
        /// larger k trades performance for lower peak temperature).
        k: u8,
    },
    /// CPUs stacked directly on pillars through all layers — the
    /// hotspot-creating ablation of Table 3. Falls back to
    /// [`Self::Interior2d`] on a single-layer chip.
    Stacked,
    /// CPUs evenly spaced on the perimeter of layer 0, as in the
    /// CMP-DNUCA baseline.
    Edges,
    /// CPUs spread over the interior of layer 0, surrounded by banks —
    /// the paper's 2D placement.
    Interior2d,
}

impl PlacementPolicy {
    /// Seats `num_cpus` CPUs on the chip.
    ///
    /// Seats are returned in CPU order. Every seat on a multi-layer chip
    /// carries the pillar the CPU is assigned to.
    ///
    /// # Errors
    ///
    /// See [`PlacementError`].
    pub fn place(self, layout: &ChipLayout, num_cpus: u32) -> Result<Vec<CpuSeat>, PlacementError> {
        let seats = match self {
            _ if layout.layers() == 1 && self.needs_layers() => interior_2d(layout, num_cpus),
            PlacementPolicy::MaximalOffset => maximal_offset(layout, num_cpus)?,
            PlacementPolicy::Algorithm1 { k } => algorithm1(layout, num_cpus, k)?,
            PlacementPolicy::Stacked => stacked(layout, num_cpus),
            PlacementPolicy::Edges => edges(layout, num_cpus),
            PlacementPolicy::Interior2d => interior_2d(layout, num_cpus),
        };
        let mut positions = std::collections::HashSet::new();
        for seat in &seats {
            if !positions.insert(seat.coord) {
                return Err(PlacementError::SeatCollision(seat.coord));
            }
        }
        Ok(seats)
    }

    fn needs_layers(self) -> bool {
        matches!(
            self,
            PlacementPolicy::MaximalOffset
                | PlacementPolicy::Algorithm1 { .. }
                | PlacementPolicy::Stacked
        )
    }
}

fn clamp_coord(layout: &ChipLayout, x: i32, y: i32, layer: u8) -> Coord {
    Coord::new(
        x.clamp(0, i32::from(layout.width()) - 1) as u8,
        y.clamp(0, i32::from(layout.height()) - 1) as u8,
        layer,
    )
}

/// One CPU per pillar, layer chosen round-robin so consecutive CPUs are on
/// different layers; distinct pillar positions give distinct (x, y).
fn maximal_offset(layout: &ChipLayout, num_cpus: u32) -> Result<Vec<CpuSeat>, PlacementError> {
    if num_cpus > u32::from(layout.num_pillars()) {
        return Err(PlacementError::NotEnoughPillars {
            cpus: num_cpus,
            pillars: layout.num_pillars(),
        });
    }
    Ok((0..num_cpus)
        .map(|i| {
            let pillar = PillarId::from_index(i as usize);
            let layer = (i % u32::from(layout.layers())) as u8;
            CpuSeat {
                cpu: CpuId::from_index(i as usize),
                coord: layout.pillar_coord(pillar, layer),
                pillar: Some(pillar),
            }
        })
        .collect())
}

/// Paper Algorithm 1. `c` CPUs per pillar per layer, offsets rotating with
/// `layer mod 4`.
fn algorithm1(layout: &ChipLayout, num_cpus: u32, k: u8) -> Result<Vec<CpuSeat>, PlacementError> {
    let pillars = layout.num_pillars();
    let layers = layout.layers();
    let slots = u32::from(pillars) * u32::from(layers);
    let unsupported = PlacementError::UnsupportedSharing {
        cpus: num_cpus,
        pillars,
        layers,
    };
    if slots == 0 || !num_cpus.is_multiple_of(slots) {
        return Err(unsupported);
    }
    let c = num_cpus / slots;
    if ![1, 2, 4].contains(&c) {
        return Err(unsupported);
    }
    let k = i32::from(k);
    let mut seats = Vec::with_capacity(num_cpus as usize);
    let mut cpu = 0usize;
    for p in 0..pillars {
        let pillar = PillarId(p);
        let (px, py) = layout.pillar_xy(pillar);
        let (px, py) = (i32::from(px), i32::from(py));
        for l in 0..layers {
            let offsets: Vec<(i32, i32)> = match (l % 4, c) {
                (0, 1) => vec![(k, 0)],
                (1, 1) => vec![(0, k)],
                (2, 1) => vec![(-k, 0)],
                (3, 1) => vec![(0, -k)],
                (0, 2) => vec![(k, 0), (-k, 0)],
                (1, 2) => vec![(0, k), (0, -k)],
                (2, 2) => vec![(2 * k, 0), (-2 * k, 0)],
                (3, 2) => vec![(0, 2 * k), (0, -2 * k)],
                (0, 4) => vec![(2 * k, 0), (-2 * k, 0), (0, 2 * k), (0, -2 * k)],
                (1, 4) => vec![(k, k), (k, -k), (-k, k), (-k, -k)],
                (2, 4) => vec![(k, 0), (-k, 0), (0, k), (0, -k)],
                (3, 4) => vec![
                    (2 * k, 2 * k),
                    (2 * k, -2 * k),
                    (-2 * k, 2 * k),
                    (-2 * k, -2 * k),
                ],
                _ => unreachable!("c validated above"),
            };
            for (dx, dy) in offsets {
                seats.push(CpuSeat {
                    cpu: CpuId::from_index(cpu),
                    coord: clamp_coord(layout, px + dx, py + dy, l),
                    pillar: Some(pillar),
                });
                cpu += 1;
            }
        }
    }
    Ok(seats)
}

/// CPUs stacked in the same vertical plane: CPU `i` sits directly on pillar
/// `i / layers` at layer `i % layers`.
fn stacked(layout: &ChipLayout, num_cpus: u32) -> Vec<CpuSeat> {
    let layers = u32::from(layout.layers());
    (0..num_cpus)
        .map(|i| {
            let pillar =
                PillarId::from_index((i / layers) as usize % layout.num_pillars() as usize);
            let layer = (i % layers) as u8;
            CpuSeat {
                cpu: CpuId::from_index(i as usize),
                coord: layout.pillar_coord(pillar, layer),
                pillar: Some(pillar),
            }
        })
        .collect()
}

/// CPUs evenly spaced along the perimeter of layer 0 (CMP-DNUCA [2]).
fn edges(layout: &ChipLayout, num_cpus: u32) -> Vec<CpuSeat> {
    let w = u32::from(layout.width());
    let h = u32::from(layout.height());
    let perimeter = if w > 1 && h > 1 {
        2 * (w + h) - 4
    } else {
        w * h
    };
    (0..num_cpus)
        .map(|i| {
            let pos = (i * perimeter) / num_cpus.max(1);
            let (x, y) = perimeter_point(pos, w, h);
            CpuSeat {
                cpu: CpuId::from_index(i as usize),
                coord: Coord::new(x as u8, y as u8, 0),
                pillar: None,
            }
        })
        .collect()
}

/// Walks the perimeter clockwise from the south-west corner.
fn perimeter_point(pos: u32, w: u32, h: u32) -> (u32, u32) {
    crate::layout::perimeter_point_pub(pos, w, h)
}

/// CPUs spread over the interior of layer 0, surrounded by cache banks.
fn interior_2d(layout: &ChipLayout, num_cpus: u32) -> Vec<CpuSeat> {
    let positions =
        crate::layout::spread_positions_pub(num_cpus as u16, layout.width(), layout.height());
    positions
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| CpuSeat {
            cpu: CpuId::from_index(i),
            coord: Coord::new(x, y, 0),
            pillar: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    fn layout_with(layers: u8, pillars: u16) -> ChipLayout {
        ChipLayout::new(
            &SystemConfig::default()
                .with_layers(layers)
                .with_pillars(pillars),
        )
        .expect("layout")
    }

    #[test]
    fn maximal_offset_offsets_in_all_three_dimensions() {
        let layout = layout_with(2, 8);
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        assert_eq!(seats.len(), 8);
        // Distinct (x, y) for every CPU (no vertical stacking)...
        let xy: std::collections::HashSet<_> =
            seats.iter().map(|s| (s.coord.x, s.coord.y)).collect();
        assert_eq!(xy.len(), 8);
        // ...and both layers used.
        let layers: std::collections::HashSet<_> = seats.iter().map(|s| s.coord.layer).collect();
        assert_eq!(layers.len(), 2);
        // Every CPU on its own pillar, sitting exactly on it.
        for s in &seats {
            let p = s.pillar.expect("3D seat has pillar");
            assert_eq!(layout.pillar_xy(p), (s.coord.x, s.coord.y));
        }
    }

    #[test]
    fn maximal_offset_rejects_too_few_pillars() {
        let layout = layout_with(2, 4);
        assert!(matches!(
            PlacementPolicy::MaximalOffset.place(&layout, 8),
            Err(PlacementError::NotEnoughPillars { .. })
        ));
    }

    #[test]
    fn algorithm1_seats_everyone_near_their_pillar() {
        // 8 CPUs over 2 pillars x 2 layers => c = 2 per pillar per layer.
        let layout = layout_with(2, 2);
        let seats = PlacementPolicy::Algorithm1 { k: 1 }
            .place(&layout, 8)
            .unwrap();
        assert_eq!(seats.len(), 8);
        for s in &seats {
            let p = s.pillar.unwrap();
            let (px, py) = layout.pillar_xy(p);
            let d = u32::from(s.coord.x.abs_diff(px)) + u32::from(s.coord.y.abs_diff(py));
            assert!(
                (1..=2).contains(&d),
                "at most two hops from the pillar (paper)"
            );
        }
    }

    #[test]
    fn algorithm1_c1_rotates_by_layer() {
        // 8 CPUs over 4 pillars x 2 layers => c = 1.
        let layout = layout_with(2, 4);
        let seats = PlacementPolicy::Algorithm1 { k: 1 }
            .place(&layout, 8)
            .unwrap();
        // No CPU stacked on another.
        let xy: std::collections::HashSet<_> = seats
            .iter()
            .map(|s| (s.coord.x, s.coord.y, s.coord.layer))
            .collect();
        assert_eq!(xy.len(), 8);
    }

    #[test]
    fn algorithm1_rejects_non_dividing_counts() {
        let layout = layout_with(2, 8);
        assert!(matches!(
            PlacementPolicy::Algorithm1 { k: 1 }.place(&layout, 7),
            Err(PlacementError::UnsupportedSharing { .. })
        ));
        // c = 3 unsupported: 48 cpus over 8 pillars x 2 layers.
        assert!(matches!(
            PlacementPolicy::Algorithm1 { k: 1 }.place(&layout, 48),
            Err(PlacementError::UnsupportedSharing { .. })
        ));
    }

    #[test]
    fn stacked_stacks_cpus_vertically() {
        let layout = layout_with(2, 8);
        let seats = PlacementPolicy::Stacked.place(&layout, 8).unwrap();
        // 8 CPUs, 2 layers -> 4 (x,y) positions each hosting 2 CPUs.
        let xy: std::collections::HashSet<_> =
            seats.iter().map(|s| (s.coord.x, s.coord.y)).collect();
        assert_eq!(xy.len(), 4, "CPUs share vertical planes");
    }

    #[test]
    fn edges_put_everyone_on_the_perimeter() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let seats = PlacementPolicy::Edges.place(&layout, 8).unwrap();
        for s in &seats {
            let on_edge = s.coord.x == 0
                || s.coord.y == 0
                || s.coord.x == layout.width() - 1
                || s.coord.y == layout.height() - 1;
            assert!(on_edge, "{} not on perimeter", s.coord);
            assert_eq!(s.coord.layer, 0);
            assert_eq!(s.pillar, None);
        }
    }

    #[test]
    fn interior_2d_keeps_cpus_off_the_edges() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let seats = PlacementPolicy::Interior2d.place(&layout, 8).unwrap();
        for s in &seats {
            assert!(s.coord.x >= 1 && s.coord.x <= layout.width() - 2);
            assert!(s.coord.y >= 1 && s.coord.y <= layout.height() - 2);
        }
    }

    #[test]
    fn three_d_policies_degrade_to_2d_on_single_layer() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let a = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        let b = PlacementPolicy::Interior2d.place(&layout, 8).unwrap();
        assert_eq!(a, b, "2D is the single-layer special case (paper §5.2)");
    }

    #[test]
    fn four_layer_algorithm1_uses_all_layers() {
        // 16 CPUs over 4 pillars x 4 layers => c = 1; exercises all four
        // cases of the layer rotation.
        let mut cfg = SystemConfig::default().with_layers(4).with_pillars(4);
        cfg.num_cpus = 16;
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = PlacementPolicy::Algorithm1 { k: 1 }
            .place(&layout, 16)
            .unwrap();
        let layers: std::collections::HashSet<_> = seats.iter().map(|s| s.coord.layer).collect();
        assert_eq!(layers.len(), 4);
    }

    #[test]
    fn perimeter_walk_is_injective_for_small_counts() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let seats = PlacementPolicy::Edges.place(&layout, 16).unwrap();
        let set: std::collections::HashSet<_> = seats.iter().map(|s| s.coord).collect();
        assert_eq!(set.len(), 16);
    }
}
