//! 3D chip topology: stacked meshes, clusters, pillars, CPU placement.
//!
//! The chip is a stack of `layers` identical 2D meshes. Every mesh node
//! hosts one L2 cache bank and its router; banks are grouped into
//! rectangular *clusters*, each with its own tag array (paper §4.1).
//! Vertical *pillars* — dTDMA buses — connect the layers at a small number
//! of `(x, y)` positions (paper §3.1). CPUs are seated on or near pillars
//! with thermally-aware offsets (paper §3.3, Algorithm 1).
//!
//! * [`layout`] — [`ChipLayout`]: all geometry derived from a
//!   [`SystemConfig`](nim_types::SystemConfig).
//! * [`placement`] — [`PlacementPolicy`] and the seating of CPUs.
//! * [`floorplan`] — physical dimensions for the thermal model.
//! * [`topology`] — the [`Topology`] trait, O(1) [`RouteMap`]s, and the
//!   `--topology` spec grammar ([`TopoSpec`]).
//! * [`shard`] — [`ShardPlan`]: cluster-row shard cuts and the boundary
//!   tables the parallel network engine's window planner uses.
//!
//! # Examples
//!
//! ```
//! use nim_topology::{ChipLayout, PlacementPolicy};
//! use nim_types::SystemConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::default();
//! let layout = ChipLayout::new(&cfg)?;
//! assert_eq!(layout.layers(), 2);
//! let seats = PlacementPolicy::MaximalOffset.place(&layout, cfg.num_cpus)?;
//! assert_eq!(seats.len(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod floorplan;
pub mod layout;
pub mod placement;
pub mod shard;
pub mod topology;

pub use floorplan::Floorplan;
pub use layout::{ChipLayout, TopologyError};
pub use placement::{CpuSeat, PlacementError, PlacementPolicy};
pub use shard::ShardPlan;
pub use topology::{MeshTopology, RouteMap, TopoSpec, TopoSpecError, Topology};
