//! Trace-viewer quickstart: produce a Perfetto-loadable trace of a short
//! CMP-DNUCA-3D run.
//!
//! Writes `nim-trace.json` in the current directory — a Chrome
//! `trace_event` JSON array with one track per event category (packets,
//! dTDMA pillar slots, NUCA search probes, migrations, coherence, banks),
//! async begin/end spans for sampled L2 transactions (each end event
//! carries the five-phase latency breakdown in its args), and counter
//! tracks for the epoch-sampled series. Open it at
//! <https://ui.perfetto.dev> or `chrome://tracing`; 1 µs on the timeline
//! is 1 simulated cycle.
//!
//! ```sh
//! cargo run --release --example trace_viewer
//! ```

use std::error::Error;
use std::fs::File;
use std::io::BufWriter;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::obs::{CategoryMask, Obs, ObsConfig};
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    // Everything except the per-flit hop firehose, sampled every 500
    // cycles, plus a span for every 20th transaction. Add
    // `.with(Category::Hop)` to see individual router hops.
    let obs = Obs::new(ObsConfig {
        trace: true,
        mask: CategoryMask::default_trace(),
        sample_every: 500,
        txn_sample: 20,
        ..ObsConfig::default()
    });
    SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(7)
        .warmup_transactions(500)
        .sampled_transactions(5_000)
        .observability(obs.clone())
        .build()?
        .run(&BenchmarkProfile::swim())?;

    let path = "nim-trace.json";
    let mut w = BufWriter::new(File::create(path)?);
    obs.export_trace(&mut w)?;
    println!(
        "wrote {path}: {} events ({} dropped, ring capacity {}),\n\
         simulated {:.0} cycles per wall-second",
        obs.event_count(),
        obs.dropped_events(),
        ObsConfig::default().trace_capacity,
        obs.cycles_per_sec(),
    );
    println!("open it at https://ui.perfetto.dev — tracks are event categories;");
    println!("counter tracks carry the epoch-sampled occupancy/hit series;");
    println!("the txn track holds sampled transaction spans whose end events");
    println!("carry the noc_hop/pillar_wait/resource_queue/l2_service/mem_wait");
    println!("latency breakdown in their args.");
    Ok(())
}
