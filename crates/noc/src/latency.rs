//! Analytic zero-load latency model of the pillar network.
//!
//! [`zero_load_path`] predicts, without simulating a single flit, the
//! exact end-to-end timing the cycle-accurate engine produces for a
//! packet that never contends with other traffic: the latency-table and
//! ideal fabrics in `nim-core` are built on it, and
//! `tests/fabric_equivalence.rs` pins it against the real [`Network`]
//! flit by flit.
//!
//! The closed forms fall out of the engine's phase ordering (bus, then
//! routers, then injection; a flit stamped `arrived == now` cannot move
//! again at `now`). With router latency `L`, bus cycles per flit `k`,
//! and `n` flits:
//!
//! * **Same layer**, `h` mesh hops: the head flit enters the source
//!   router one cycle after `send`, dwells `L` in each of the `h + 1`
//!   routers it traverses (including the final local ejection), and the
//!   tail trails `n - 1` cycles behind —
//!   `latency = 1 + (h + 1)·L + (n - 1)`.
//! * **Cross layer** via a pillar at `m1` hops from the source and `m2`
//!   from the destination: the head reaches the pillar's transceiver
//!   interface at `t_if = 1 + (m1 + 1)·L`, must sit there one full
//!   cycle before the dTDMA grant, then flits cross one per `k` cycles;
//!   the tail's grant is followed by `(m2 + 1)·L` of mesh descent —
//!   `latency = 2 + (m1 + 1)·L + (m2 + 1)·L + (n - 1)·k`.
//!
//! The recorded `bus_wait` is the *tail* flit's (deliveries surface the
//! tail's counters): it waits `1` cycle for its own grant plus `k - 1`
//! serialisation cycles for each predecessor —
//! `bus_wait = 1 + (n - 1)·(k - 1)`.
//!
//! When no pillar is pinned (`via == None`) the engine re-picks the
//! nearest pillar at every router; the model replays that greedy walk
//! decision-for-decision, so the two agree even when the walk commits
//! to a different pillar than the source's nearest.
//!
//! [`Network`]: crate::Network

use nim_topology::Topology;
use nim_types::{Coord, PillarId};

use crate::routing::xy_toward;

/// The predicted contention-free timing of one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZeroLoadPath {
    /// End-to-end latency in cycles (send to tail ejection).
    pub latency: u64,
    /// Router/bus traversals of every flit.
    pub hops: u16,
    /// The tail flit's accumulated dTDMA wait (0 on same-layer routes).
    pub bus_wait: u32,
    /// The pillar the packet crosses layers on, if any.
    pub pillar: Option<PillarId>,
    /// Cycles after send at which the head flit reaches the pillar's
    /// transceiver interface (meaningful only when `pillar` is set) —
    /// the instant a contention model starts queueing for the bus.
    pub bus_enqueue: u64,
}

/// Predicts the zero-load timing of a packet of `flits` flits sent from
/// `src` to `dst` riding `via` (or the per-hop nearest pillar when
/// `None`), on a pillar-mode network with the given router latency and
/// bus serialisation factor.
///
/// # Panics
///
/// Panics on a cross-layer route when the topology has no pillars.
pub fn zero_load_path(
    topo: &impl Topology,
    src: Coord,
    dst: Coord,
    via: Option<PillarId>,
    flits: u32,
    router_latency: u64,
    bus_cycles_per_flit: u64,
) -> ZeroLoadPath {
    let l = router_latency.max(1);
    let k = bus_cycles_per_flit.max(1);
    let n = u64::from(flits.max(1));
    if src.same_layer(dst) {
        let h = u64::from(src.manhattan_2d(dst));
        return ZeroLoadPath {
            latency: 1 + (h + 1) * l + (n - 1),
            hops: h as u16,
            bus_wait: 0,
            pillar: None,
            bus_enqueue: 0,
        };
    }
    // Replay the greedy per-hop pillar walk of `routing::route`: every
    // router steps XY towards `via`, or towards its *own* nearest
    // pillar, until it stands on one. Each step strictly shrinks the
    // distance to the currently-nearest pillar, so the walk terminates.
    let mut at = src;
    let mut m1 = 0u64;
    let pillar = loop {
        let p = via
            .or_else(|| topo.nearest_pillar(at))
            .expect("cross-layer route on a chip without pillars");
        let (px, py) = topo.pillar_xy(p);
        if (at.x, at.y) == (px, py) {
            break p;
        }
        let d = xy_toward(at, px, py);
        let (x, y) = d
            .step(at.x, at.y, topo.width(), topo.height())
            .expect("routing stays on the mesh");
        at = Coord::new(x, y, at.layer);
        m1 += 1;
    };
    let (px, py) = topo.pillar_xy(pillar);
    let m2 = u64::from(Coord::new(px, py, dst.layer).manhattan_2d(dst));
    let bus_enqueue = 1 + (m1 + 1) * l;
    ZeroLoadPath {
        latency: bus_enqueue + 1 + (n - 1) * k + (m2 + 1) * l,
        hops: (m1 + 1 + m2) as u16,
        bus_wait: (1 + (n - 1) * (k - 1)) as u32,
        pillar: Some(pillar),
        bus_enqueue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_topology::MeshTopology;
    use nim_types::SystemConfig;

    fn topo() -> MeshTopology {
        MeshTopology::from_config(&SystemConfig::default()).unwrap()
    }

    #[test]
    fn same_layer_formula() {
        let t = topo();
        let p = zero_load_path(&t, Coord::new(0, 0, 0), Coord::new(5, 3, 0), None, 4, 1, 1);
        // 1 + (8 + 1)·1 + 3
        assert_eq!(p.latency, 13);
        assert_eq!(p.hops, 8);
        assert_eq!(p.bus_wait, 0);
        assert_eq!(p.pillar, None);
    }

    #[test]
    fn cross_layer_on_pillar_nodes() {
        let t = topo();
        let (px, py) = t.pillar_xy(PillarId(0));
        let src = Coord::new(px, py, 0);
        let dst = Coord::new(px, py, 1);
        let p = zero_load_path(&t, src, dst, Some(PillarId(0)), 1, 1, 1);
        // t_if = 1 + 1, grant at 3, ejection at 3 + 1.
        assert_eq!(p.latency, 4);
        assert_eq!(p.hops, 1);
        assert_eq!(p.bus_wait, 1);
        assert_eq!(p.pillar, Some(PillarId(0)));
        assert_eq!(p.bus_enqueue, 2);
    }

    #[test]
    fn narrow_bus_serialises_the_tail() {
        let t = topo();
        let (px, py) = t.pillar_xy(PillarId(2));
        let src = Coord::new(px, py, 0);
        let dst = Coord::new(px, py, 1);
        let one = zero_load_path(&t, src, dst, Some(PillarId(2)), 4, 1, 1);
        let two = zero_load_path(&t, src, dst, Some(PillarId(2)), 4, 1, 2);
        assert_eq!(two.latency - one.latency, 3, "3 extra bus cycles");
        assert_eq!(two.bus_wait, 1 + 3, "tail waits out 3 serialisations");
    }

    #[test]
    fn greedy_walk_matches_pinned_pillar_when_nearest() {
        let t = topo();
        for y in 0..t.height() {
            for x in 0..t.width() {
                let src = Coord::new(x, y, 0);
                let dst = Coord::new(t.width() - 1 - x, y, 1);
                let free = zero_load_path(&t, src, dst, None, 2, 1, 1);
                let pinned = zero_load_path(&t, src, dst, free.pillar, 2, 1, 1);
                assert_eq!(free, pinned, "walk commits to its own choice");
            }
        }
    }
}
