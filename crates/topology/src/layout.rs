//! [`ChipLayout`]: all geometry of the stacked chip, derived from a
//! [`SystemConfig`].
//!
//! The layout answers every "where is it?" question the rest of the
//! simulator asks: which mesh node a bank occupies, which cluster a node
//! belongs to, where the pillars stand, which clusters are lateral or
//! vertical neighbours of which. It is pure geometry — no simulation state.

use core::error::Error;
use core::fmt;

use nim_types::{BankId, ClusterId, Coord, PillarId, PillarPlacement, SystemConfig};

/// Error building a [`ChipLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The cluster count does not divide evenly across the layers.
    ClustersPerLayer {
        /// Total clusters.
        clusters: u32,
        /// Device layers.
        layers: u8,
    },
    /// More pillars requested than interior mesh positions available.
    TooManyPillars {
        /// Requested pillar count.
        pillars: u16,
        /// Interior positions available.
        available: u32,
    },
    /// The mesh is too large for 8-bit coordinates.
    MeshTooLarge {
        /// Computed layer width.
        width: u32,
        /// Computed layer height.
        height: u32,
    },
    /// The underlying configuration failed validation.
    Config(nim_types::ConfigError),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ClustersPerLayer { clusters, layers } => {
                write!(
                    f,
                    "{clusters} clusters do not divide across {layers} layers"
                )
            }
            TopologyError::TooManyPillars { pillars, available } => {
                write!(
                    f,
                    "{pillars} pillars requested, only {available} interior positions"
                )
            }
            TopologyError::MeshTooLarge { width, height } => {
                write!(f, "mesh {width}x{height} exceeds 8-bit coordinates")
            }
            TopologyError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl Error for TopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopologyError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nim_types::ConfigError> for TopologyError {
    fn from(e: nim_types::ConfigError) -> Self {
        TopologyError::Config(e)
    }
}

/// Splits `n` into `(a, b)` with `a * b == n`, `a >= b`, and `a - b`
/// minimal — the most nearly square factorisation.
fn balanced_factors(n: u32) -> (u32, u32) {
    debug_assert!(n > 0);
    let mut b = (n as f64).sqrt() as u32;
    while b > 1 && !n.is_multiple_of(b) {
        b -= 1;
    }
    (n / b.max(1), b.max(1))
}

/// Geometry of the stacked chip.
///
/// Immutable once constructed; cheap to clone (a few dozen words plus the
/// pillar position list).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChipLayout {
    layers: u8,
    width: u8,
    height: u8,
    /// Cluster extent in x (banks).
    cluster_w: u8,
    /// Cluster extent in y (banks).
    cluster_h: u8,
    /// Cluster-grid extent in x (clusters per layer row).
    grid_w: u8,
    /// Cluster-grid extent in y.
    grid_h: u8,
    clusters_per_layer: u16,
    banks_per_cluster: u32,
    /// Pillar positions, shared by every layer.
    pillars: Vec<(u8, u8)>,
}

impl ChipLayout {
    /// Builds the layout for a configuration.
    ///
    /// Banks per cluster and clusters per layer are each factored as close
    /// to square as possible, orienting the cluster grid so that the full
    /// layer is as square as possible. Pillars are spread uniformly over
    /// the interior of the layer (not on edges — paper §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the configuration is invalid, the
    /// clusters do not divide across layers, or the requested pillar count
    /// cannot be seated in the interior of the mesh.
    pub fn new(cfg: &SystemConfig) -> Result<Self, TopologyError> {
        cfg.validate()?;
        let layers = cfg.network.layers;
        let clusters = cfg.l2.clusters;
        if !clusters.is_multiple_of(u32::from(layers)) {
            return Err(TopologyError::ClustersPerLayer { clusters, layers });
        }
        let clusters_per_layer = clusters / u32::from(layers);
        let (cw, ch) = balanced_factors(cfg.l2.banks_per_cluster);
        // Orient the cluster grid to make the layer as square as possible.
        let (ga, gb) = balanced_factors(clusters_per_layer);
        let candidates = [(ga, gb), (gb, ga)];
        let (grid_w, grid_h) = candidates
            .into_iter()
            .min_by_key(|&(gx, gy)| {
                let w = gx * cw;
                let h = gy * ch;
                let (hi, lo) = if w > h { (w, h) } else { (h, w) };
                // Scaled aspect ratio; ties broken by the first candidate.
                hi * 1000 / lo
            })
            .expect("two candidates");
        let width = grid_w * cw;
        let height = grid_h * ch;
        if width > u8::MAX as u32 || height > u8::MAX as u32 {
            return Err(TopologyError::MeshTooLarge { width, height });
        }
        let pillar_count = if layers > 1 { cfg.network.pillars } else { 0 };
        let interior = (width.saturating_sub(2)) * (height.saturating_sub(2));
        if u32::from(pillar_count) > interior.max(width * height) {
            return Err(TopologyError::TooManyPillars {
                pillars: pillar_count,
                available: interior,
            });
        }
        let pillars = pillar_sites(
            pillar_count,
            width as u8,
            height as u8,
            cfg.network.pillar_placement,
        );
        if pillars.len() < pillar_count as usize {
            return Err(TopologyError::TooManyPillars {
                pillars: pillar_count,
                available: width * height,
            });
        }
        Ok(Self {
            layers,
            width: width as u8,
            height: height as u8,
            cluster_w: cw as u8,
            cluster_h: ch as u8,
            grid_w: grid_w as u8,
            grid_h: grid_h as u8,
            clusters_per_layer: clusters_per_layer as u16,
            banks_per_cluster: cfg.l2.banks_per_cluster,
            pillars,
        })
    }

    /// Number of device layers.
    #[inline]
    pub const fn layers(&self) -> u8 {
        self.layers
    }

    /// Mesh width (nodes) of one layer.
    #[inline]
    pub const fn width(&self) -> u8 {
        self.width
    }

    /// Mesh height (nodes) of one layer.
    #[inline]
    pub const fn height(&self) -> u8 {
        self.height
    }

    /// Total mesh nodes across all layers (one bank per node).
    #[inline]
    pub const fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize * self.layers as usize
    }

    /// Nodes per layer.
    #[inline]
    pub const fn nodes_per_layer(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of clusters on each layer.
    #[inline]
    pub const fn clusters_per_layer(&self) -> u16 {
        self.clusters_per_layer
    }

    /// Total clusters.
    #[inline]
    pub const fn num_clusters(&self) -> u16 {
        self.clusters_per_layer * self.layers as u16
    }

    /// Cluster extent `(w, h)` in banks.
    #[inline]
    pub const fn cluster_dims(&self) -> (u8, u8) {
        (self.cluster_w, self.cluster_h)
    }

    /// Cluster-grid extent `(w, h)` in clusters per layer.
    #[inline]
    pub const fn cluster_grid(&self) -> (u8, u8) {
        (self.grid_w, self.grid_h)
    }

    /// Whether a coordinate lies on the mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height && c.layer < self.layers
    }

    /// Dense index of a node, suitable for indexing router arrays.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn node_index(&self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside mesh");
        (c.layer as usize * self.height as usize + c.y as usize) * self.width as usize
            + c.x as usize
    }

    /// Inverse of [`node_index`](Self::node_index).
    #[inline]
    pub fn coord_of_index(&self, index: usize) -> Coord {
        debug_assert!(index < self.num_nodes());
        let per_layer = self.nodes_per_layer();
        let layer = (index / per_layer) as u8;
        let rem = index % per_layer;
        Coord::new(
            (rem % self.width as usize) as u8,
            (rem / self.width as usize) as u8,
            layer,
        )
    }

    /// The cluster containing a node.
    #[inline]
    pub fn cluster_of(&self, c: Coord) -> ClusterId {
        debug_assert!(self.contains(c));
        let gx = c.x / self.cluster_w;
        let gy = c.y / self.cluster_h;
        ClusterId(
            u16::from(c.layer) * self.clusters_per_layer
                + u16::from(gy) * u16::from(self.grid_w)
                + u16::from(gx),
        )
    }

    /// Layer a cluster lives on.
    #[inline]
    pub fn cluster_layer(&self, cl: ClusterId) -> u8 {
        (cl.0 / self.clusters_per_layer) as u8
    }

    /// Grid position `(gx, gy)` of a cluster within its layer.
    #[inline]
    pub fn cluster_grid_pos(&self, cl: ClusterId) -> (u8, u8) {
        let within = cl.0 % self.clusters_per_layer;
        (
            (within % u16::from(self.grid_w)) as u8,
            (within / u16::from(self.grid_w)) as u8,
        )
    }

    /// The cluster at a grid position on a layer.
    #[inline]
    pub fn cluster_at_grid(&self, layer: u8, gx: u8, gy: u8) -> ClusterId {
        debug_assert!(layer < self.layers && gx < self.grid_w && gy < self.grid_h);
        ClusterId(
            u16::from(layer) * self.clusters_per_layer
                + u16::from(gy) * u16::from(self.grid_w)
                + u16::from(gx),
        )
    }

    /// The node at the (rounded-down) centre of a cluster — where its tag
    /// array sits and where distance-to-cluster is measured from.
    pub fn cluster_center(&self, cl: ClusterId) -> Coord {
        let (gx, gy) = self.cluster_grid_pos(cl);
        Coord::new(
            gx * self.cluster_w + self.cluster_w / 2,
            gy * self.cluster_h + self.cluster_h / 2,
            self.cluster_layer(cl),
        )
    }

    /// The mesh node of a bank: banks fill each cluster row-major.
    pub fn coord_of_bank(&self, bank: BankId) -> Coord {
        let cluster = ClusterId((bank.0 / self.banks_per_cluster) as u16);
        let within = bank.0 % self.banks_per_cluster;
        let (gx, gy) = self.cluster_grid_pos(cluster);
        let lx = (within % u32::from(self.cluster_w)) as u8;
        let ly = (within / u32::from(self.cluster_w)) as u8;
        Coord::new(
            gx * self.cluster_w + lx,
            gy * self.cluster_h + ly,
            self.cluster_layer(cluster),
        )
    }

    /// The bank at a mesh node (every node hosts exactly one bank).
    pub fn bank_at(&self, c: Coord) -> BankId {
        debug_assert!(self.contains(c));
        let cluster = self.cluster_of(c);
        let lx = c.x % self.cluster_w;
        let ly = c.y % self.cluster_h;
        BankId(
            u32::from(cluster.0) * self.banks_per_cluster
                + u32::from(ly) * u32::from(self.cluster_w)
                + u32::from(lx),
        )
    }

    /// The cluster owning a bank.
    #[inline]
    pub fn cluster_of_bank(&self, bank: BankId) -> ClusterId {
        ClusterId((bank.0 / self.banks_per_cluster) as u16)
    }

    /// Iterator over all banks of a cluster.
    pub fn banks_in_cluster(&self, cl: ClusterId) -> impl Iterator<Item = BankId> + '_ {
        let base = u32::from(cl.0) * self.banks_per_cluster;
        (0..self.banks_per_cluster).map(move |i| BankId(base + i))
    }

    /// Clusters sharing a grid edge with `cl` on the same layer.
    pub fn lateral_neighbors(&self, cl: ClusterId) -> Vec<ClusterId> {
        let layer = self.cluster_layer(cl);
        let (gx, gy) = self.cluster_grid_pos(cl);
        let mut out = Vec::with_capacity(4);
        if gx > 0 {
            out.push(self.cluster_at_grid(layer, gx - 1, gy));
        }
        if gx + 1 < self.grid_w {
            out.push(self.cluster_at_grid(layer, gx + 1, gy));
        }
        if gy > 0 {
            out.push(self.cluster_at_grid(layer, gx, gy - 1));
        }
        if gy + 1 < self.grid_h {
            out.push(self.cluster_at_grid(layer, gx, gy + 1));
        }
        out
    }

    /// Clusters at the same grid position on every *other* layer — the
    /// clusters reachable in a single pillar hop, which the search policy
    /// treats as local vicinity (paper §4.2.1).
    pub fn vertical_neighbors(&self, cl: ClusterId) -> Vec<ClusterId> {
        let layer = self.cluster_layer(cl);
        let (gx, gy) = self.cluster_grid_pos(cl);
        (0..self.layers)
            .filter(|&l| l != layer)
            .map(|l| self.cluster_at_grid(l, gx, gy))
            .collect()
    }

    /// Number of pillars (zero on a single-layer chip).
    #[inline]
    pub fn num_pillars(&self) -> u16 {
        self.pillars.len() as u16
    }

    /// The `(x, y)` position of a pillar (valid on every layer).
    ///
    /// # Panics
    ///
    /// Panics if the pillar id is out of range.
    #[inline]
    pub fn pillar_xy(&self, p: PillarId) -> (u8, u8) {
        self.pillars[p.index()]
    }

    /// The pillar's node on a given layer.
    #[inline]
    pub fn pillar_coord(&self, p: PillarId, layer: u8) -> Coord {
        let (x, y) = self.pillar_xy(p);
        Coord::new(x, y, layer)
    }

    /// Whether the node at `c` is a pillar node (hosts a vertical port).
    pub fn is_pillar_node(&self, c: Coord) -> bool {
        self.pillars.iter().any(|&(x, y)| x == c.x && y == c.y)
    }

    /// The pillar standing at `(x, y)`, if any.
    pub fn pillar_at(&self, x: u8, y: u8) -> Option<PillarId> {
        self.pillars
            .iter()
            .position(|&(px, py)| px == x && py == y)
            .map(PillarId::from_index)
    }

    /// The pillar whose position is nearest to `c` (2D Manhattan);
    /// `None` on a single-layer chip.
    pub fn nearest_pillar(&self, c: Coord) -> Option<PillarId> {
        self.pillars
            .iter()
            .enumerate()
            .min_by_key(|(_, &(x, y))| c.manhattan_2d(Coord::new(x, y, c.layer)))
            .map(|(i, _)| PillarId::from_index(i))
    }

    /// Positions of `n` memory controllers: evenly spaced around the
    /// perimeter of layer 0, where the package's DRAM channels attach.
    pub fn memory_controller_coords(&self, n: u16) -> Vec<Coord> {
        let w = u32::from(self.width);
        let h = u32::from(self.height);
        let perimeter = if w > 1 && h > 1 {
            2 * (w + h) - 4
        } else {
            w * h
        };
        (0..u32::from(n))
            .map(|i| {
                // Offset by half a stride so controllers sit mid-edge
                // rather than on corners.
                let pos =
                    (i * perimeter + perimeter / (2 * u32::from(n).max(1))) / u32::from(n).max(1);
                let (x, y) = perimeter_point_pub(pos, w, h);
                Coord::new(x as u8, y as u8, 0)
            })
            .collect()
    }

    /// Router hops between two nodes under the paper's routing: XY within a
    /// layer; cross-layer via the given pillar (one bus hop).
    pub fn hops(&self, from: Coord, to: Coord, via: Option<PillarId>) -> u32 {
        if from.same_layer(to) {
            from.manhattan_2d(to)
        } else {
            let p = via
                .or_else(|| self.nearest_pillar(from))
                .expect("cross-layer route on a chip without pillars");
            from.hop_distance_via_pillar(to, self.pillar_coord(p, from.layer))
        }
    }
}

/// Chooses pillar positions for a placement strategy.
///
/// [`PillarPlacement::Spread`] is the paper's rule (§3.3): pillars are
/// placed *as far apart from each other as possible* within the layer to
/// avoid congested areas, but never on the edges. A uniform interior
/// lattice realises this for most counts; for two pillars the lattice
/// would collapse onto the centre row, so a quarter-inset diagonal keeps
/// them genuinely far apart. The other strategies sweep the placement
/// dimension of the design space (corners ring, interior diagonal); on
/// meshes too small to have an interior they fall back to the spread
/// lattice.
fn pillar_sites(n: u16, w: u8, h: u8, placement: PillarPlacement) -> Vec<(u8, u8)> {
    match placement {
        PillarPlacement::Spread => {
            if n == 2 && w >= 4 && h >= 4 {
                let (x0, y0) = (w / 4, h / 4);
                let (x1, y1) = (w - 1 - w / 4, h - 1 - h / 4);
                return vec![(x0, y0), (x1, y1)];
            }
            spread_positions(n, w, h)
        }
        PillarPlacement::Corners => corner_positions(n, w, h),
        PillarPlacement::Diagonal => diagonal_positions(n, w, h),
    }
}

/// Pillars evenly spaced along the perimeter of the interior rectangle
/// one node in from every edge (so the placement honours the no-edge
/// rule of §3.3 while hugging the corners).
fn corner_positions(n: u16, w: u8, h: u8) -> Vec<(u8, u8)> {
    if n == 0 {
        return Vec::new();
    }
    // The interior ring needs at least a 2×2 interior rectangle.
    if w < 4 || h < 4 {
        return spread_positions(n, w, h);
    }
    let (iw, ih) = (u32::from(w) - 2, u32::from(h) - 2);
    let perimeter = 2 * (iw + ih) - 4;
    let mut out = Vec::with_capacity(n as usize);
    let mut used = std::collections::HashSet::new();
    for i in 0..u32::from(n) {
        let pos = i * perimeter / u32::from(n);
        let (x, y) = perimeter_point_pub(pos, iw, ih);
        let site = ((x + 1) as u8, (y + 1) as u8);
        if used.insert(site) {
            out.push(site);
        }
    }
    refill_collisions(&mut out, &mut used, n, w, h);
    out
}

/// Pillars along the main diagonal of the interior rectangle.
fn diagonal_positions(n: u16, w: u8, h: u8) -> Vec<(u8, u8)> {
    if n == 0 {
        return Vec::new();
    }
    if w < 3 || h < 3 {
        return spread_positions(n, w, h);
    }
    let (iw, ih) = (u32::from(w) - 2, u32::from(h) - 2);
    let mut out = Vec::with_capacity(n as usize);
    let mut used = std::collections::HashSet::new();
    for i in 0..u32::from(n) {
        // Cell-centre parameterisation of the diagonal, like the spread
        // lattice: t = (2i + 1) / 2n.
        let x = 1 + ((2 * i + 1) * (iw - 1) + u32::from(n)) / (2 * u32::from(n));
        let y = 1 + ((2 * i + 1) * (ih - 1) + u32::from(n)) / (2 * u32::from(n));
        let site = (x as u8, y as u8);
        if used.insert(site) {
            out.push(site);
        }
    }
    refill_collisions(&mut out, &mut used, n, w, h);
    out
}

/// Deterministically nudges colliding positions to free nodes (interior
/// scan order) until `out` holds `n` distinct sites, or the mesh is
/// full. `used` must already contain every member of `out`.
fn refill_collisions(
    out: &mut Vec<(u8, u8)>,
    used: &mut std::collections::HashSet<(u8, u8)>,
    n: u16,
    w: u8,
    h: u8,
) {
    'refill: while out.len() < n as usize {
        for y in 0..h {
            for x in 0..w {
                if used.insert((x, y)) {
                    out.push((x, y));
                    continue 'refill;
                }
            }
        }
        break; // the mesh is full
    }
    out.truncate(n as usize);
}

/// Walks the layer perimeter clockwise from the south-west corner
/// (shared by edge CPU placement and memory-controller placement).
pub(crate) fn perimeter_point_pub(pos: u32, w: u32, h: u32) -> (u32, u32) {
    let pos = pos % (2 * (w + h) - 4).max(1);
    if pos < w {
        (pos, 0) // south edge, west to east
    } else if pos < w + h - 1 {
        (w - 1, pos - w + 1) // east edge, south to north
    } else if pos < 2 * w + h - 2 {
        (w - 1 - (pos - (w + h - 1)) - 1, h - 1) // north edge, east to west
    } else {
        (0, h - 1 - (pos - (2 * w + h - 2)) - 1) // west edge, north to south
    }
}

/// Crate-internal re-export of [`spread_positions`] for the placement
/// module (interior CPU placement uses the same spreading rule as pillars).
pub(crate) fn spread_positions_pub(n: u16, w: u8, h: u8) -> Vec<(u8, u8)> {
    spread_positions(n, w, h)
}

/// Spreads `n` positions uniformly over the interior of a `w × h` mesh.
///
/// Positions form an `a × b` lattice (`a ≥ b` oriented along the longer
/// mesh side), each at the centre of its lattice cell, clamped one node
/// away from the mesh edge when the mesh is large enough.
fn spread_positions(n: u16, w: u8, h: u8) -> Vec<(u8, u8)> {
    if n == 0 {
        return Vec::new();
    }
    let (a, b) = balanced_factors(u32::from(n));
    let (nx, ny) = if w >= h { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(n as usize);
    for j in 0..ny {
        for i in 0..nx {
            let x = ((2 * i + 1) * u32::from(w)) / (2 * nx);
            let y = ((2 * j + 1) * u32::from(h)) / (2 * ny);
            let clamp = |v: u32, max: u8| -> u8 {
                if max >= 3 {
                    (v as u8).clamp(1, max - 2)
                } else {
                    (v as u8).min(max - 1)
                }
            };
            out.push((clamp(x, w), clamp(y, h)));
        }
    }
    out.sort_unstable();
    out.dedup();
    // Extremely dense requests can collide after clamping; nudge the
    // duplicates to free positions (deterministic scan, interior first,
    // then the whole mesh). If the mesh genuinely has fewer positions
    // than requested, return what fits — the caller checks the count.
    let mut used: std::collections::HashSet<(u8, u8)> = out.iter().copied().collect();
    'refill: while out.len() < n as usize {
        for y in 0..h {
            for x in 0..w {
                if used.insert((x, y)) {
                    out.push((x, y));
                    continue 'refill;
                }
            }
        }
        break; // the mesh is full
    }
    out.truncate(n as usize);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    fn default_layout() -> ChipLayout {
        ChipLayout::new(&SystemConfig::default()).expect("default layout")
    }

    #[test]
    fn default_layout_is_16x8_times_2() {
        let l = default_layout();
        assert_eq!(l.layers(), 2);
        assert_eq!((l.width(), l.height()), (16, 8));
        assert_eq!(l.num_nodes(), 256);
        assert_eq!(l.cluster_dims(), (4, 4));
        assert_eq!(l.cluster_grid(), (4, 2));
        assert_eq!(l.clusters_per_layer(), 8);
        assert_eq!(l.num_clusters(), 16);
    }

    #[test]
    fn flat_layout_is_16x16() {
        let l = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        assert_eq!((l.width(), l.height(), l.layers()), (16, 16, 1));
        assert_eq!(l.num_pillars(), 0);
    }

    #[test]
    fn four_layer_layout_is_8x8() {
        let l = ChipLayout::new(&SystemConfig::default().with_layers(4)).unwrap();
        assert_eq!((l.width(), l.height(), l.layers()), (8, 8, 4));
        assert_eq!(l.clusters_per_layer(), 4);
    }

    #[test]
    fn node_index_round_trips() {
        let l = default_layout();
        for i in 0..l.num_nodes() {
            let c = l.coord_of_index(i);
            assert_eq!(l.node_index(c), i);
            assert!(l.contains(c));
        }
    }

    #[test]
    fn bank_coord_round_trips_and_covers_all_nodes() {
        let l = default_layout();
        let mut seen = vec![false; l.num_nodes()];
        for b in 0..256u32 {
            let c = l.coord_of_bank(BankId(b));
            assert_eq!(l.bank_at(c), BankId(b));
            assert_eq!(l.cluster_of(c), l.cluster_of_bank(BankId(b)));
            seen[l.node_index(c)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every node hosts a bank");
    }

    #[test]
    fn clusters_partition_banks() {
        let l = default_layout();
        let mut count = 0;
        for cl in 0..l.num_clusters() {
            for b in l.banks_in_cluster(ClusterId(cl)) {
                assert_eq!(l.cluster_of_bank(b), ClusterId(cl));
                count += 1;
            }
        }
        assert_eq!(count, 256);
    }

    #[test]
    fn cluster_center_is_inside_cluster() {
        let l = default_layout();
        for cl in 0..l.num_clusters() {
            let c = l.cluster_center(ClusterId(cl));
            assert_eq!(l.cluster_of(c), ClusterId(cl));
        }
    }

    #[test]
    fn lateral_neighbors_are_adjacent_same_layer() {
        let l = default_layout();
        for cl in 0..l.num_clusters() {
            let cl = ClusterId(cl);
            for n in l.lateral_neighbors(cl) {
                assert_eq!(l.cluster_layer(n), l.cluster_layer(cl));
                let (ax, ay) = l.cluster_grid_pos(cl);
                let (bx, by) = l.cluster_grid_pos(n);
                assert_eq!((ax.abs_diff(bx) + ay.abs_diff(by)), 1, "grid-adjacent");
            }
        }
    }

    #[test]
    fn vertical_neighbors_share_grid_pos_differ_in_layer() {
        let l = default_layout();
        let cl = ClusterId(0);
        let vs = l.vertical_neighbors(cl);
        assert_eq!(vs.len(), 1); // 2 layers -> exactly one vertical neighbor
        assert_eq!(l.cluster_grid_pos(vs[0]), l.cluster_grid_pos(cl));
        assert_ne!(l.cluster_layer(vs[0]), l.cluster_layer(cl));
    }

    #[test]
    fn default_pillars_are_interior_and_distinct() {
        let l = default_layout();
        assert_eq!(l.num_pillars(), 8);
        let mut seen = std::collections::HashSet::new();
        for p in 0..8u16 {
            let (x, y) = l.pillar_xy(PillarId(p));
            assert!(x >= 1 && x <= l.width() - 2, "pillar x interior");
            assert!(y >= 1 && y <= l.height() - 2, "pillar y interior");
            assert!(seen.insert((x, y)), "pillar positions distinct");
            assert!(l.is_pillar_node(Coord::new(x, y, 0)));
            assert!(l.is_pillar_node(Coord::new(x, y, 1)), "pillar spans layers");
            assert_eq!(l.pillar_at(x, y), Some(PillarId(p)));
        }
    }

    #[test]
    fn nearest_pillar_is_actually_nearest() {
        let l = default_layout();
        for i in 0..l.num_nodes() {
            let c = l.coord_of_index(i);
            let p = l.nearest_pillar(c).unwrap();
            let (px, py) = l.pillar_xy(p);
            let d = c.manhattan_2d(Coord::new(px, py, c.layer));
            for q in 0..l.num_pillars() {
                let (qx, qy) = l.pillar_xy(PillarId(q));
                assert!(d <= c.manhattan_2d(Coord::new(qx, qy, c.layer)));
            }
        }
    }

    #[test]
    fn hops_same_layer_is_manhattan() {
        let l = default_layout();
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(5, 3, 0);
        assert_eq!(l.hops(a, b, None), 8);
    }

    #[test]
    fn hops_cross_layer_uses_pillar() {
        let l = default_layout();
        let p = PillarId(0);
        let (px, py) = l.pillar_xy(p);
        let a = Coord::new(px, py, 0);
        let b = Coord::new(px, py, 1);
        assert_eq!(l.hops(a, b, Some(p)), 1, "on-pillar cross-layer is one hop");
    }

    #[test]
    fn odd_cluster_division_is_rejected() {
        let mut cfg = SystemConfig::default();
        cfg.network.layers = 8; // paper limit is 8; but 16 clusters / 8 = 2, fine
        assert!(ChipLayout::new(&cfg).is_ok());
        cfg.network.layers = 5;
        assert!(matches!(
            ChipLayout::new(&cfg),
            Err(TopologyError::ClustersPerLayer { .. })
        ));
    }

    #[test]
    fn invalid_config_is_surfaced() {
        let cfg = SystemConfig {
            num_cpus: 0,
            ..SystemConfig::default()
        };
        assert!(matches!(
            ChipLayout::new(&cfg),
            Err(TopologyError::Config(_))
        ));
    }

    #[test]
    fn scaled_l2_layouts_grow() {
        let mut cfg = SystemConfig::default();
        cfg.l2 = cfg.l2.scaled(2); // 32 MB
        let l = ChipLayout::new(&cfg).unwrap();
        assert_eq!(l.num_nodes(), 512);
        cfg.l2 = SystemConfig::default().l2.scaled(4); // 64 MB
        let l = ChipLayout::new(&cfg).unwrap();
        assert_eq!(l.num_nodes(), 1024);
    }

    #[test]
    fn balanced_factors_are_balanced() {
        assert_eq!(balanced_factors(16), (4, 4));
        assert_eq!(balanced_factors(8), (4, 2));
        assert_eq!(balanced_factors(2), (2, 1));
        assert_eq!(balanced_factors(1), (1, 1));
        assert_eq!(balanced_factors(7), (7, 1));
    }

    #[test]
    fn alternate_placements_are_interior_and_distinct() {
        for placement in [PillarPlacement::Corners, PillarPlacement::Diagonal] {
            for n in [2u16, 4, 7, 8] {
                let sites = pillar_sites(n, 16, 8, placement);
                assert_eq!(sites.len(), n as usize, "{placement:?} n={n}");
                let set: std::collections::HashSet<_> = sites.iter().collect();
                assert_eq!(set.len(), n as usize, "distinct for {placement:?} n={n}");
                for &(x, y) in &sites {
                    assert!((1..=14).contains(&x), "{placement:?} x={x} interior");
                    assert!((1..=6).contains(&y), "{placement:?} y={y} interior");
                }
            }
        }
    }

    #[test]
    fn placement_changes_geometry_but_not_defaults() {
        let spread = default_layout();
        let corners = ChipLayout::new(
            &SystemConfig::default().with_pillar_placement(PillarPlacement::Corners),
        )
        .unwrap();
        assert_eq!(spread.num_pillars(), corners.num_pillars());
        let xy = |l: &ChipLayout| -> Vec<(u8, u8)> {
            (0..l.num_pillars())
                .map(|p| l.pillar_xy(PillarId(p)))
                .collect()
        };
        assert_ne!(xy(&spread), xy(&corners), "strategies genuinely differ");
        // The default config must keep producing the exact sites the
        // fingerprint tests were recorded against.
        assert_eq!(xy(&spread), pillar_sites(8, 16, 8, PillarPlacement::Spread));
    }

    #[test]
    fn tiny_meshes_fall_back_to_spread() {
        assert_eq!(
            pillar_sites(2, 3, 3, PillarPlacement::Corners),
            pillar_sites(2, 3, 3, PillarPlacement::Spread)
        );
        assert_eq!(
            pillar_sites(1, 2, 2, PillarPlacement::Diagonal),
            pillar_sites(1, 2, 2, PillarPlacement::Spread)
        );
    }

    #[test]
    fn spread_positions_handles_odd_counts() {
        for n in [1u16, 2, 3, 5, 7, 8, 16] {
            let ps = spread_positions(n, 16, 8);
            assert_eq!(ps.len(), n as usize, "n={n}");
            let set: std::collections::HashSet<_> = ps.iter().collect();
            assert_eq!(set.len(), n as usize, "distinct for n={n}");
        }
    }
}
