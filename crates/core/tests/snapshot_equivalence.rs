//! The tentpole invariant of ISSUE 10: snapshot at an epoch boundary +
//! resume must be **byte-identical** to the uninterrupted run — same
//! report fingerprint, same hit-matrix metrics, same sample rows, same
//! trace suffix — for every scheme, topology, shard count, and fabric.
//!
//! Any simulator field missed by a `Checkpoint` impl shows up here as a
//! fingerprint divergence, which is exactly what forces the state tree
//! to stay complete as the simulator grows.

use nim_core::experiments::{run_cells, ExperimentScale, SweepSpec};
use nim_core::{FabricKind, Scheme, SnapshotError, System, SystemBuilder};
use nim_obs::{Metric, Obs, ObsConfig};
use nim_workload::{BenchmarkProfile, TraceGenerator};

const SEED: u64 = 7;
const WARMUP: u64 = 60;
const SAMPLE: u64 = 540;
const SAMPLE_EVERY: u64 = 400;
/// Transactions completed before the snapshot is taken (mid-run, after
/// warmup so the measurement window is already open).
const STOP_AT: u64 = 300;

/// One cell of the equivalence matrix.
#[derive(Clone, Copy, Debug)]
struct Cell {
    scheme: Scheme,
    layers: u8,
    shards: usize,
    fabric: FabricKind,
    /// Shard count the resumed half runs under (the snapshot must be
    /// shard-agnostic).
    resume_shards: Option<usize>,
}

impl Cell {
    fn new(scheme: Scheme, layers: u8, shards: usize, fabric: FabricKind) -> Self {
        Self {
            scheme,
            layers,
            shards,
            fabric,
            resume_shards: None,
        }
    }

    fn resume_under(mut self, shards: usize) -> Self {
        self.resume_shards = Some(shards);
        self
    }

    fn label(&self) -> String {
        format!(
            "{} layers={} shards={} fabric={} resume_shards={:?}",
            self.scheme.label(),
            self.layers,
            self.shards,
            self.fabric.name(),
            self.resume_shards
        )
    }

    fn build(&self) -> System {
        let obs = Obs::new(ObsConfig {
            trace: true,
            trace_capacity: 1 << 16,
            sample_every: SAMPLE_EVERY,
            ..ObsConfig::default()
        });
        SystemBuilder::new(self.scheme)
            .layers(self.layers)
            .shards(self.shards)
            .fabric(self.fabric)
            .seed(SEED)
            .warmup_transactions(WARMUP)
            .sampled_transactions(SAMPLE)
            .observability(obs)
            .build()
            .expect("cell builds")
    }
}

/// Everything the equivalence bar compares, captured from one finished
/// run. Wall-clock fields (`SampleRow::wall_secs`, `sim/cycles_per_sec`,
/// `net/window/*`) are excluded: they measure host speed, not simulated
/// behavior.
#[derive(Debug, PartialEq)]
struct Observed {
    fingerprint: u64,
    /// `(cycle, values)` of every sampler row.
    sample_rows: Vec<(u64, Vec<f64>)>,
    /// Deterministic metrics, including the `l2/hits/{local}/{serve}`
    /// and `l2/miss_from/{local}` hit-matrix counters.
    metrics: Vec<(String, Metric)>,
    /// Digest of all trace events from the snapshot cycle onward.
    trace_suffix: u64,
}

fn observe(system: &System, fingerprint: u64, suffix_from: u64) -> Observed {
    let obs = system.obs();
    let (_, rows) = obs.sampler_state().expect("obs enabled");
    let metrics = obs
        .metrics_state()
        .expect("obs enabled")
        .into_iter()
        .filter(|(name, _)| !name.starts_with("net/window/") && !name.starts_with("sim/"))
        .collect();
    Observed {
        fingerprint,
        sample_rows: rows.into_iter().map(|r| (r.cycle, r.values)).collect(),
        metrics,
        trace_suffix: obs.trace_digest_from(suffix_from),
    }
}

/// Runs `cell` twice — uninterrupted, and snapshot-at-`STOP_AT` +
/// resume — and asserts the two halves observed the same simulation.
fn assert_cell_equivalence(cell: Cell) {
    // Interrupted half first: it discovers the snapshot cycle that the
    // trace-suffix comparison anchors on.
    let mut system = cell.build();
    let profile = BenchmarkProfile::synthetic();
    let mut gen = system.begin(&profile);
    let paused = system
        .run_until(&mut gen, STOP_AT)
        .expect("run reaches the stop");
    assert!(
        paused.is_none(),
        "{}: run must pause, not finish",
        cell.label()
    );
    let snap_cycle = system.network().now().0;
    let bytes = system.snapshot(&gen).expect("snapshot at epoch boundary");
    // The trace ring is deliberately not serialized: the resumed ring
    // holds events strictly *after* the boundary (events stamped at the
    // boundary cycle itself — e.g. the stop transaction completing —
    // were emitted before the pause), so the suffix comparison anchors
    // one cycle past it.
    let suffix_from = snap_cycle + 1;

    let mut resumed =
        SystemBuilder::resume_from(&bytes, cell.resume_shards).expect("snapshot resumes");
    assert_eq!(resumed.benchmark(), profile.name);
    let report = resumed.finish().expect("resumed run finishes");
    let interrupted = observe(resumed.system(), report.fingerprint(), suffix_from);

    // Uninterrupted half.
    let mut cold = cell.build();
    let cold_report = cold.run(&profile).expect("cold run finishes");
    let uninterrupted = observe(&cold, cold_report.fingerprint(), suffix_from);

    assert_eq!(
        format!("{cold_report:?}"),
        format!("{report:?}"),
        "{}: reports diverge",
        cell.label()
    );
    assert_eq!(
        uninterrupted,
        interrupted,
        "{}: snapshot+resume diverges from the uninterrupted run",
        cell.label()
    );
}

#[test]
fn snapshot_resume_is_bit_identical_across_schemes_topologies_shards_and_fabrics() {
    let cells = [
        // All four schemes at the paper's default topology.
        Cell::new(Scheme::CmpDnuca, 2, 1, FabricKind::Sim),
        Cell::new(Scheme::CmpDnuca2d, 2, 1, FabricKind::Sim),
        Cell::new(Scheme::CmpSnuca3d, 2, 1, FabricKind::Sim),
        Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::Sim),
        // Taller stacks.
        Cell::new(Scheme::CmpSnuca3d, 4, 1, FabricKind::Sim),
        Cell::new(Scheme::CmpDnuca3d, 8, 1, FabricKind::Sim),
        // Sharded runs, including snapshot-under-one-count,
        // resume-under-another (the shard-agnostic bar).
        Cell::new(Scheme::CmpDnuca3d, 2, 2, FabricKind::Sim),
        Cell::new(Scheme::CmpDnuca3d, 4, 64, FabricKind::Sim), // clamped to max
        Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::Sim).resume_under(4),
        Cell::new(Scheme::CmpSnuca3d, 8, 2, FabricKind::Sim).resume_under(1),
        // Modeled fabrics.
        Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::LatencyTable),
        Cell::new(Scheme::CmpSnuca3d, 4, 1, FabricKind::Ideal),
    ];
    for cell in cells {
        assert_cell_equivalence(cell);
    }
}

#[test]
fn resumed_runs_can_pause_and_snapshot_again() {
    let cell = Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::Sim);
    let mut system = cell.build();
    let profile = BenchmarkProfile::synthetic();
    let mut gen = system.begin(&profile);
    assert!(system.run_until(&mut gen, 150).expect("pauses").is_none());
    let first = system.snapshot(&gen).expect("first snapshot");

    // Chain: resume, advance further, snapshot again, resume again.
    let mut resumed = SystemBuilder::resume_from(&first, None).expect("resumes");
    assert!(resumed.run_until(STOP_AT).expect("pauses again").is_none());
    let second = resumed.snapshot().expect("second snapshot");
    let mut chained = SystemBuilder::resume_from(&second, None).expect("resumes again");
    let report = chained.finish().expect("finishes");

    let mut cold = cell.build();
    let cold_report = cold.run(&profile).expect("cold run");
    assert_eq!(cold_report.fingerprint(), report.fingerprint());
}

#[test]
fn warmup_forked_cells_match_cold_started_cells() {
    let benchmarks = [BenchmarkProfile::synthetic()];
    let scale = ExperimentScale {
        seed: 42,
        warmup: 150,
        sample: 450,
    };
    // One lone cell runs cold; three identical cells warmup-fork from a
    // shared image.
    let lone = [SweepSpec::new(Scheme::CmpDnuca3d, 0)];
    let cold = run_cells(&benchmarks, scale, &lone).expect("cold cell runs");
    let trio = [
        SweepSpec::new(Scheme::CmpDnuca3d, 0),
        SweepSpec::new(Scheme::CmpDnuca3d, 0),
        SweepSpec::new(Scheme::CmpDnuca3d, 0),
    ];
    let forked = run_cells(&benchmarks, scale, &trio).expect("forked cells run");
    assert_eq!(forked.len(), 3);
    for report in &forked {
        assert_eq!(
            report.fingerprint(),
            cold[0].fingerprint(),
            "forked cell diverges from cold start"
        );
    }
}

// ---------------------------------------------------------------------------
// Malformed snapshots must come back as typed errors, never panics.
// ---------------------------------------------------------------------------

fn valid_snapshot() -> Vec<u8> {
    let mut system = Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::Sim).build();
    let mut gen = system.begin(&BenchmarkProfile::synthetic());
    assert!(system
        .run_until(&mut gen, STOP_AT)
        .expect("pauses")
        .is_none());
    system.snapshot(&gen).expect("snapshot")
}

#[test]
fn truncated_snapshots_fail_with_a_typed_error() {
    let bytes = valid_snapshot();
    for len in [
        0,
        1,
        7,
        9,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        match SystemBuilder::resume_from(&bytes[..len], None) {
            Err(SnapshotError::Codec(_)) => {}
            other => panic!("truncation at {len} must fail with Codec, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_snapshots_fail_with_a_typed_error() {
    let bytes = valid_snapshot();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        SystemBuilder::resume_from(&bad, None),
        Err(SnapshotError::Codec(nim_types::codec::CodecError::BadMagic))
    ));
    // The first byte after the CFG section header is the scheme tag:
    // 10 header bytes, 4+4 tag string, 2 version, 4 length prefix.
    let mut bad = bytes.clone();
    bad[24] = 0xEE;
    assert!(matches!(
        SystemBuilder::resume_from(&bad, None),
        Err(SnapshotError::Codec(nim_types::codec::CodecError::Corrupt(
            _
        )))
    ));
    // Trailing garbage.
    let mut bad = bytes.clone();
    bad.extend_from_slice(b"junk");
    assert!(matches!(
        SystemBuilder::resume_from(&bad, None),
        Err(SnapshotError::Codec(nim_types::codec::CodecError::Corrupt(
            _
        )))
    ));
}

#[test]
fn version_mismatched_snapshots_fail_with_a_typed_error() {
    let mut bytes = valid_snapshot();
    // The u16 after the 8-byte magic is the global snapshot version.
    bytes[8] = 0xFF;
    bytes[9] = 0xFF;
    match SystemBuilder::resume_from(&bytes, None) {
        Err(SnapshotError::Codec(nim_types::codec::CodecError::UnsupportedVersion {
            found,
            ..
        })) => assert_eq!(found, 0xFFFF),
        other => panic!("version skew must fail with UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_benchmarks_fail_with_a_typed_error() {
    let mut bytes = valid_snapshot();
    // The benchmark name is stored once, in the WKLD section; misspell
    // it in place.
    let name = b"synthetic";
    let at = bytes
        .windows(name.len())
        .position(|w| w == name)
        .expect("benchmark name in snapshot");
    bytes[at] = b'z';
    match SystemBuilder::resume_from(&bytes, None) {
        Err(SnapshotError::UnknownBenchmark(n)) => assert_eq!(n, "zynthetic"),
        other => panic!("unknown benchmark must be typed, got {other:?}"),
    }
}

#[test]
fn snapshot_legality_is_enforced() {
    let profile = BenchmarkProfile::synthetic();
    let cell = Cell::new(Scheme::CmpDnuca3d, 2, 1, FabricKind::Sim);

    // No run in progress.
    let system = cell.build();
    let gen = TraceGenerator::new(&profile, system.config().num_cpus, SEED);
    assert!(matches!(
        system.snapshot(&gen),
        Err(SnapshotError::NoRunInProgress)
    ));

    // Mid-run but not on an epoch boundary (no sample row recorded yet).
    let mut system = cell.build();
    let gen = system.begin(&profile);
    assert!(matches!(
        system.snapshot(&gen),
        Err(SnapshotError::NotEpochBoundary { .. })
    ));
}
