//! The dTDMA bus "communication pillar" (paper §3.1).
//!
//! A pillar is a vertical bus spanning all device layers, one flit wide.
//! Its arbiter dynamically grows and shrinks the number of timeslots to
//! match the number of active clients, which makes the bus nearly 100%
//! bandwidth-efficient: at the flit timeline level this is exactly
//! work-conserving round-robin over the interfaces that currently have
//! flits queued, transferring one flit per cycle, single-hop between any
//! two layers.
//!
//! Each layer's pillar router feeds the bus through a small transceiver
//! interface buffer; the network moves flits router → interface, and the
//! bus arbiter moves them interface → destination layer's pillar router.

use nim_types::PillarId;

use crate::packet::{Flit, FlitArena, FlitFifo};

/// Counters kept per pillar bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Flits transferred across the bus.
    pub transfers: u64,
    /// Cycles in which a flit was transferred.
    pub busy_cycles: u64,
    /// Cycles in which two or more interfaces had flits waiting — the
    /// contention the paper varies via the pillar count (Fig. 17).
    pub contention_cycles: u64,
    /// Running peak of the total flits queued at the bus interfaces.
    pub peak_queued: u64,
}

/// One transceiver interface: the per-layer queue feeding the bus.
#[derive(Clone, Debug)]
pub(crate) struct Iface {
    pub q: FlitFifo,
    /// Destination-side VC bound by the in-transfer packet (set by its
    /// head flit, cleared by its tail), so multi-flit packets land in a
    /// single VC even when the arbiter interleaves transmitters.
    pub bound_vc: Option<usize>,
}

/// A dTDMA pillar bus.
#[derive(Clone, Debug)]
pub(crate) struct DtdmaBus {
    #[allow(dead_code)] // identifies the bus in diagnostics and tests
    pub pillar: PillarId,
    /// Pillar position, identical on every layer.
    pub xy: (u8, u8),
    /// One interface per device layer.
    pub ifaces: Vec<Iface>,
    /// Round-robin pointer over interfaces (the dynamic slot schedule).
    pub rr: usize,
    pub stats: BusStats,
}

impl DtdmaBus {
    pub(crate) fn new(
        arena: &mut FlitArena,
        pillar: PillarId,
        xy: (u8, u8),
        layers: u8,
        iface_cap: usize,
    ) -> Self {
        Self {
            pillar,
            xy,
            ifaces: (0..layers)
                .map(|_| Iface {
                    q: FlitFifo::new(arena, iface_cap),
                    bound_vc: None,
                })
                .collect(),
            rr: 0,
            stats: BusStats::default(),
        }
    }

    /// Whether the interface on `layer` can take one more flit.
    #[inline]
    pub(crate) fn can_enqueue(&self, layer: u8) -> bool {
        !self.ifaces[layer as usize].q.is_full()
    }

    /// Queues a flit at the `layer` interface (router → transceiver).
    pub(crate) fn enqueue(&mut self, arena: &mut FlitArena, layer: u8, flit: Flit) {
        debug_assert!(self.can_enqueue(layer));
        self.ifaces[layer as usize].q.push_back(arena, flit);
        let queued: u64 = self.ifaces.iter().map(|i| i.q.len() as u64).sum();
        self.stats.peak_queued = self.stats.peak_queued.max(queued);
    }

    /// Total flits queued across all interfaces.
    pub(crate) fn queued(&self) -> usize {
        self.ifaces.iter().map(|i| i.q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlitKind, TrafficClass};
    use nim_types::{Coord, Cycle, PacketId};

    fn flit() -> Flit {
        Flit {
            pkt: PacketId(1),
            kind: FlitKind::HeadTail,
            src: Coord::new(0, 0, 0),
            dst: Coord::new(0, 0, 1),
            via: Some(PillarId(0)),
            class: TrafficClass::Control,
            token: 0,
            injected: Cycle::ZERO,
            arrived: Cycle::ZERO,
            hops: 0,
            bus_wait: 0,
        }
    }

    #[test]
    fn enqueue_respects_capacity() {
        let mut arena = FlitArena::default();
        let mut bus = DtdmaBus::new(&mut arena, PillarId(0), (2, 2), 2, 2);
        assert!(bus.can_enqueue(0));
        bus.enqueue(&mut arena, 0, flit());
        bus.enqueue(&mut arena, 0, flit());
        assert!(!bus.can_enqueue(0));
        assert!(bus.can_enqueue(1), "interfaces are independent");
        assert_eq!(bus.queued(), 2);
        assert_eq!(bus.stats.peak_queued, 2);
    }

    #[test]
    fn one_interface_per_layer() {
        let mut arena = FlitArena::default();
        let bus = DtdmaBus::new(&mut arena, PillarId(3), (1, 1), 4, 4);
        assert_eq!(bus.ifaces.len(), 4);
        assert_eq!(bus.pillar, PillarId(3));
    }
}
