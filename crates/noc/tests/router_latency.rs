//! Router-latency semantics: the configurable per-hop dwell time behaves
//! exactly linearly at zero load — the knob the §3.1 ablation relies on
//! to model the slower 7-port router.

use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::ChipLayout;
use nim_types::{Coord, SystemConfig};

fn one_packet_latency(router_latency: u32, hops: u8, flits: u32) -> u64 {
    let mut cfg = SystemConfig::default().flattened();
    cfg.network.router_latency = router_latency;
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    net.send(SendRequest {
        src: Coord::new(0, 0, 0),
        dst: Coord::new(hops, 0, 0),
        via: None,
        class: TrafficClass::Data,
        flits,
        token: 0,
    });
    net.run_until_idle(10_000).expect("drains");
    net.drain_delivered().pop().expect("delivered").latency()
}

#[test]
fn zero_load_latency_is_linear_in_router_delay() {
    // Single-flit packet over h hops: 1 (inject) + h·L (hops) + L (eject).
    for hops in [1u8, 3, 6] {
        for latency in [1u32, 2, 4] {
            let measured = one_packet_latency(latency, hops, 1);
            let expected = 1 + u64::from(hops + 1) * u64::from(latency);
            assert_eq!(measured, expected, "hops={hops} router_latency={latency}");
        }
    }
}

#[test]
fn multi_flit_packets_pipeline_behind_the_head() {
    // Per-flit dwell times overlap across routers, so once the wormhole
    // is streaming, flits emerge one per cycle regardless of the dwell:
    // the tail trails the head by exactly (flits − 1) cycles.
    let l1 = one_packet_latency(1, 4, 4);
    let l2 = one_packet_latency(2, 4, 4);
    assert_eq!(l1, 1 + 5 + 3, "1-cycle routers: head 6, tail +3");
    assert_eq!(l2, 1 + 10 + 3, "2-cycle routers: head 11, tail +3");
}
