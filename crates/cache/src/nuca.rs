//! The shared NUCA L2: placement, location tracking, and lazy migration.
//!
//! Placement follows the paper (§4.2.2): a line's *initial* cluster comes
//! from the low-order bits of its tag; its bank within the cluster and set
//! within the bank come from the index bits. Once lines migrate, the
//! cluster can no longer be derived from the address, so [`NucaL2`] keeps
//! the authoritative line → cluster map (the union of all cluster tag
//! arrays).
//!
//! Migration is *lazy* (§4.2.3): a migrating line stays visible at its old
//! location until the move commits, so searches issued mid-migration never
//! produce false misses.
//!
//! Beyond the paper's design, the L2 optionally supports *replication*
//! (the alternative §1 discusses via NuRapid and victim replication):
//! read-only copies of a line may be installed in additional clusters with
//! [`NucaL2::add_replica`]; the primary copy remains authoritative
//! ([`NucaL2::locate`]) and writers must [`NucaL2::drop_replicas`].

use nim_obs::{Category, EventData, Obs};
use nim_types::addr::L2Map;
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{ClusterId, FxHashMap, L2Config, LineAddr};

use crate::cluster::Cluster;

/// Outcome of placing a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Cluster the line was placed in.
    pub cluster: ClusterId,
    /// Line evicted from that cluster's set to make room (a write-back /
    /// invalidation the caller must act on).
    pub evicted: Option<LineAddr>,
}

/// Outcome of committing a migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// Where the line moved from.
    pub from: ClusterId,
    /// Where it now lives.
    pub to: ClusterId,
    /// Victim evicted at the destination, if its set was full.
    pub evicted: Option<LineAddr>,
}

/// Errors from the migration two-phase protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationError {
    /// The line is not resident in the L2.
    NotResident(LineAddr),
    /// The line is already migrating.
    InFlight(LineAddr),
    /// Destination equals the current cluster.
    SamePlace(LineAddr),
}

impl core::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationError::NotResident(l) => write!(f, "line {l} not resident"),
            MigrationError::InFlight(l) => write!(f, "line {l} already migrating"),
            MigrationError::SamePlace(l) => write!(f, "line {l} already at destination"),
        }
    }
}

impl core::error::Error for MigrationError {}

/// Counters kept by the L2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Lines placed (initial placements, not migrations).
    pub insertions: u64,
    /// Lines evicted by placements or migrations.
    pub evictions: u64,
    /// Migrations committed.
    pub migrations: u64,
    /// Migrations aborted (line evicted mid-flight, or cancelled).
    pub migrations_aborted: u64,
    /// Read-only replicas installed.
    pub replicas_created: u64,
    /// Replicas dropped (write invalidations, evictions, removals).
    pub replicas_dropped: u64,
}

/// The shared NUCA L2 cache.
#[derive(Clone, Debug)]
pub struct NucaL2 {
    map: L2Map,
    clusters: Vec<Cluster>,
    /// Authoritative line → committed cluster map. [`FxHashMap`] because
    /// [`NucaL2::locate`] sits on the per-transaction hot path and the
    /// keys are trusted line addresses.
    resident: FxHashMap<LineAddr, ClusterId>,
    /// Lines mid-migration: line → destination cluster.
    migrating: FxHashMap<LineAddr, ClusterId>,
    /// Read-only replicas: line → clusters holding extra copies.
    replicas: FxHashMap<LineAddr, Vec<ClusterId>>,
    stats: L2Stats,
    /// Observability sink; disabled by default.
    obs: Obs,
}

impl NucaL2 {
    /// Creates an empty L2 with the given geometry.
    pub fn new(l2: &L2Config) -> Self {
        let map = l2.map();
        Self {
            map,
            clusters: (0..l2.clusters)
                .map(|i| Cluster::new(ClusterId(i as u16), &map, l2.ways))
                .collect(),
            resident: FxHashMap::default(),
            migrating: FxHashMap::default(),
            replicas: FxHashMap::default(),
            stats: L2Stats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; migration and eviction events
    /// flow into it from now on (cycle stamps come from whichever
    /// component drives [`Obs::set_now`], normally the network).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The address decomposition in use.
    #[inline]
    pub fn map(&self) -> &L2Map {
        &self.map
    }

    /// Accumulated counters.
    #[inline]
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Which cluster currently holds `line` (its *visible* location; a
    /// mid-migration line reports its old cluster — lazy migration).
    #[inline]
    pub fn locate(&self, line: LineAddr) -> Option<ClusterId> {
        self.resident.get(&line).copied()
    }

    /// The cluster a line would be *initially* placed in.
    #[inline]
    pub fn home_cluster(&self, line: LineAddr) -> ClusterId {
        self.map.home_cluster(line)
    }

    /// Marks a hit on `line` (updates pseudo-LRU at its location).
    ///
    /// Returns the cluster that served the hit, or `None` on a miss.
    pub fn touch(&mut self, line: LineAddr) -> Option<ClusterId> {
        let cl = self.locate(line)?;
        self.clusters[cl.index()].touch(&self.map, line);
        Some(cl)
    }

    /// Places `line` at its home cluster (servicing an L2 miss).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is already resident.
    pub fn insert(&mut self, line: LineAddr) -> Placement {
        self.insert_at(line, self.home_cluster(line))
    }

    /// Places `line` in a specific cluster — used to set up a pre-warmed
    /// state in which migration has already pulled lines toward their
    /// steady-state position (the paper samples after a 500 M-cycle
    /// warm-up during which exactly this convergence happens).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is already resident, or if the cluster
    /// id is out of range.
    pub fn insert_at(&mut self, line: LineAddr, cluster: ClusterId) -> Placement {
        debug_assert!(self.locate(line).is_none(), "line already resident");
        let ins = self.clusters[cluster.index()].insert(&self.map, line);
        self.resident.insert(line, cluster);
        self.stats.insertions += 1;
        if let Some(victim) = ins.evicted {
            self.note_eviction(victim);
        }
        Placement {
            cluster,
            evicted: ins.evicted,
        }
    }

    /// Invalidates `line` (primary and every replica); returns its
    /// primary cluster if it was resident.
    pub fn remove(&mut self, line: LineAddr) -> Option<ClusterId> {
        let cl = self.resident.remove(&line)?;
        let removed = self.clusters[cl.index()].remove(&self.map, line);
        debug_assert!(removed, "resident map out of sync");
        if let Some(to) = self.migrating.remove(&line) {
            self.stats.migrations_aborted += 1;
            self.obs
                .emit(Category::Migration, || EventData::MigrationAbort {
                    line: line.0,
                    from: u32::from(cl.0),
                    to: u32::from(to.0),
                });
        }
        self.drop_replicas(line);
        Some(cl)
    }

    /// Starts a lazy migration of `line` to cluster `to`. The line remains
    /// visible at its current location until [`commit_migration`].
    ///
    /// # Errors
    ///
    /// See [`MigrationError`].
    ///
    /// [`commit_migration`]: Self::commit_migration
    pub fn begin_migration(&mut self, line: LineAddr, to: ClusterId) -> Result<(), MigrationError> {
        let from = self.locate(line).ok_or(MigrationError::NotResident(line))?;
        if from == to {
            return Err(MigrationError::SamePlace(line));
        }
        if self.migrating.contains_key(&line) {
            return Err(MigrationError::InFlight(line));
        }
        self.migrating.insert(line, to);
        self.obs
            .emit(Category::Migration, || EventData::MigrationStart {
                line: line.0,
                from: u32::from(from.0),
                to: u32::from(to.0),
            });
        Ok(())
    }

    /// Whether `line` is currently migrating (and to where).
    #[inline]
    pub fn migration_of(&self, line: LineAddr) -> Option<ClusterId> {
        self.migrating.get(&line).copied()
    }

    /// Completes a migration: the line disappears from its old cluster and
    /// appears at the destination, evicting a victim there if needed.
    ///
    /// # Errors
    ///
    /// Returns [`MigrationError::NotResident`] if the migration was
    /// aborted in the meantime (e.g. the line was evicted mid-flight).
    pub fn commit_migration(&mut self, line: LineAddr) -> Result<MigrationOutcome, MigrationError> {
        let to = self
            .migrating
            .remove(&line)
            .ok_or(MigrationError::NotResident(line))?;
        let from = self.locate(line).ok_or(MigrationError::NotResident(line))?;
        let removed = self.clusters[from.index()].remove(&self.map, line);
        debug_assert!(removed);
        // If the destination already holds a replica, the arriving
        // primary simply takes its place (promote in place).
        let promoted = self
            .replicas
            .get_mut(&line)
            .map(|rs| {
                let had = rs.iter().position(|c| *c == to);
                if let Some(i) = had {
                    rs.swap_remove(i);
                }
                had.is_some()
            })
            .unwrap_or(false);
        let evicted = if promoted {
            self.stats.replicas_dropped += 1;
            self.clusters[to.index()].touch(&self.map, line);
            None
        } else {
            let ins = self.clusters[to.index()].insert(&self.map, line);
            ins.evicted
        };
        self.resident.insert(line, to);
        self.stats.migrations += 1;
        self.obs
            .emit(Category::Migration, || EventData::MigrationCommit {
                line: line.0,
                from: u32::from(from.0),
                to: u32::from(to.0),
            });
        if let Some(victim) = evicted {
            self.note_eviction(victim);
        }
        Ok(MigrationOutcome { from, to, evicted })
    }

    /// Abandons an in-flight migration (the line stays where it is).
    pub fn abort_migration(&mut self, line: LineAddr) {
        if let Some(to) = self.migrating.remove(&line) {
            self.stats.migrations_aborted += 1;
            let from = self.locate(line).unwrap_or(to);
            self.obs
                .emit(Category::Migration, || EventData::MigrationAbort {
                    line: line.0,
                    from: u32::from(from.0),
                    to: u32::from(to.0),
                });
        }
    }

    /// Total resident lines.
    pub fn occupancy(&self) -> usize {
        self.resident.len()
    }

    /// Lines resident in one cluster.
    pub fn cluster_occupancy(&self, cl: ClusterId) -> usize {
        self.clusters[cl.index()].occupancy()
    }

    /// Bookkeeping shared by every eviction path. The evicted slot may
    /// have held either the victim's primary copy or one of its replicas;
    /// callers pass the cluster the eviction happened in via the bank
    /// structures, so this resolves which record to drop by comparing
    /// against the resident map.
    fn note_eviction(&mut self, victim: LineAddr) {
        // If the victim's primary is still present in some cluster's bank,
        // the slot we just reclaimed must have been a replica.
        let primary_still_resident = self
            .resident
            .get(&victim)
            .is_some_and(|cl| self.clusters[cl.index()].contains(&self.map, victim));
        if primary_still_resident {
            // A replica was evicted; find and drop the stale record.
            if let Some(rs) = self.replicas.get_mut(&victim) {
                let map = &self.map;
                if let Some(i) = rs
                    .iter()
                    .position(|c| !self.clusters[c.index()].contains(map, victim))
                {
                    rs.swap_remove(i);
                    self.stats.replicas_dropped += 1;
                }
                if rs.is_empty() {
                    self.replicas.remove(&victim);
                }
            }
            return;
        }
        self.stats.evictions += 1;
        let cl = self.resident.remove(&victim);
        self.obs.emit(Category::Bank, || EventData::Eviction {
            line: victim.0,
            cluster: cl.map_or(u32::MAX, |c| u32::from(c.0)),
        });
        if let Some(to) = self.migrating.remove(&victim) {
            self.stats.migrations_aborted += 1;
            let from = cl.unwrap_or(to);
            self.obs
                .emit(Category::Migration, || EventData::MigrationAbort {
                    line: victim.0,
                    from: u32::from(from.0),
                    to: u32::from(to.0),
                });
        }
        self.drop_replicas(victim);
    }

    // ----- replication (extension; see module docs) -----------------------

    /// Clusters holding read-only replicas of `line`.
    pub fn replicas_of(&self, line: LineAddr) -> &[ClusterId] {
        self.replicas.get(&line).map_or(&[], Vec::as_slice)
    }

    /// Whether `cluster` holds *any* copy of `line` — the primary, an
    /// in-flight migration destination, or a replica. This is what a tag
    /// probe of that cluster would answer.
    pub fn has_copy_at(&self, line: LineAddr, cluster: ClusterId) -> bool {
        self.locate(line) == Some(cluster)
            || self.migration_of(line) == Some(cluster)
            || self.replicas_of(line).contains(&cluster)
    }

    /// Installs a read-only replica of `line` in `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`MigrationError::NotResident`] if the line has no primary
    /// copy, or [`MigrationError::SamePlace`] if `cluster` already holds
    /// a copy.
    pub fn add_replica(
        &mut self,
        line: LineAddr,
        cluster: ClusterId,
    ) -> Result<Placement, MigrationError> {
        if self.locate(line).is_none() {
            return Err(MigrationError::NotResident(line));
        }
        if self.has_copy_at(line, cluster) {
            return Err(MigrationError::SamePlace(line));
        }
        let ins = self.clusters[cluster.index()].insert(&self.map, line);
        self.replicas.entry(line).or_default().push(cluster);
        self.stats.replicas_created += 1;
        if let Some(victim) = ins.evicted {
            self.note_eviction(victim);
        }
        Ok(Placement {
            cluster,
            evicted: ins.evicted,
        })
    }

    /// Drops every replica of `line` (a write is about to make them
    /// stale). Returns the clusters that held one.
    pub fn drop_replicas(&mut self, line: LineAddr) -> Vec<ClusterId> {
        let Some(clusters) = self.replicas.remove(&line) else {
            return Vec::new();
        };
        for cl in &clusters {
            let removed = self.clusters[cl.index()].remove(&self.map, line);
            debug_assert!(removed, "replica map out of sync");
            self.stats.replicas_dropped += 1;
        }
        clusters
    }

    /// Total replicas currently installed.
    pub fn replica_count(&self) -> usize {
        self.replicas.values().map(Vec::len).sum()
    }

    /// Saves one line → cluster map, key-sorted for determinism.
    fn save_line_map(w: &mut ByteWriter, map: &FxHashMap<LineAddr, ClusterId>) {
        let mut entries: Vec<(LineAddr, ClusterId)> = map.iter().map(|(l, c)| (*l, *c)).collect();
        entries.sort_unstable_by_key(|(l, _)| *l);
        w.u32(entries.len() as u32);
        for (line, cl) in entries {
            w.u64(line.0);
            w.u16(cl.0);
        }
    }

    fn restore_line_map(
        r: &mut ByteReader<'_>,
        clusters: usize,
    ) -> Result<FxHashMap<LineAddr, ClusterId>, CodecError> {
        let n = r.u32()? as usize;
        let mut map = FxHashMap::default();
        map.reserve(n);
        for _ in 0..n {
            let line = LineAddr(r.u64()?);
            let cl = ClusterId(r.u16()?);
            if cl.index() >= clusters {
                return Err(CodecError::Corrupt("cluster id out of range"));
            }
            map.insert(line, cl);
        }
        Ok(map)
    }

    /// Marks a hit on the copy of `line` held by `cluster` — primary or
    /// replica, whichever that cluster's bank actually contains. Falls
    /// back to touching the primary if the cluster holds no copy (e.g. a
    /// replica dropped while the request was in flight). Returns whether
    /// any copy was touched.
    pub fn touch_at(&mut self, line: LineAddr, cluster: ClusterId) -> bool {
        let holds = self.locate(line) == Some(cluster) || self.replicas_of(line).contains(&cluster);
        if holds && self.clusters[cluster.index()].contains(&self.map, line) {
            self.clusters[cluster.index()].touch(&self.map, line);
            true
        } else {
            self.touch(line).is_some()
        }
    }
}

impl Checkpoint for NucaL2 {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(self.stats.insertions);
        w.u64(self.stats.evictions);
        w.u64(self.stats.migrations);
        w.u64(self.stats.migrations_aborted);
        w.u64(self.stats.replicas_created);
        w.u64(self.stats.replicas_dropped);
        w.u32(self.clusters.len() as u32);
        for cluster in &self.clusters {
            cluster.save(w);
        }
        Self::save_line_map(w, &self.resident);
        Self::save_line_map(w, &self.migrating);
        // Replica vectors keep their insertion order (swap_remove depends
        // on it), so entries are key-sorted but each Vec is verbatim.
        let mut reps: Vec<(&LineAddr, &Vec<ClusterId>)> = self.replicas.iter().collect();
        reps.sort_unstable_by_key(|(l, _)| **l);
        w.u32(reps.len() as u32);
        for (line, clusters) in reps {
            w.u64(line.0);
            w.u32(clusters.len() as u32);
            for cl in clusters {
                w.u16(cl.0);
            }
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.stats.insertions = r.u64()?;
        self.stats.evictions = r.u64()?;
        self.stats.migrations = r.u64()?;
        self.stats.migrations_aborted = r.u64()?;
        self.stats.replicas_created = r.u64()?;
        self.stats.replicas_dropped = r.u64()?;
        if r.u32()? as usize != self.clusters.len() {
            return Err(CodecError::Corrupt("L2 cluster count mismatch"));
        }
        for cluster in &mut self.clusters {
            cluster.restore(r)?;
        }
        let clusters = self.clusters.len();
        self.resident = Self::restore_line_map(r, clusters)?;
        self.migrating = Self::restore_line_map(r, clusters)?;
        let n = r.u32()? as usize;
        self.replicas = FxHashMap::default();
        self.replicas.reserve(n);
        for _ in 0..n {
            let line = LineAddr(r.u64()?);
            let count = r.u32()? as usize;
            let mut holders = Vec::with_capacity(count.min(clusters));
            for _ in 0..count {
                let cl = ClusterId(r.u16()?);
                if cl.index() >= clusters {
                    return Err(CodecError::Corrupt("replica cluster out of range"));
                }
                holders.push(cl);
            }
            self.replicas.insert(line, holders);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::L2Config;

    fn l2() -> NucaL2 {
        NucaL2::new(&L2Config::default())
    }

    /// A line whose home cluster is `cl` (cluster field is bits [10,14)).
    fn line_in_cluster(cl: u16, salt: u64) -> LineAddr {
        LineAddr((salt << 14) | (u64::from(cl) << 10))
    }

    #[test]
    fn insert_places_at_home_cluster() {
        let mut l2 = l2();
        let line = line_in_cluster(5, 1);
        let p = l2.insert(line);
        assert_eq!(p.cluster, ClusterId(5));
        assert_eq!(p.evicted, None);
        assert_eq!(l2.locate(line), Some(ClusterId(5)));
        assert_eq!(l2.occupancy(), 1);
        assert_eq!(l2.stats().insertions, 1);
    }

    #[test]
    fn touch_hits_only_resident_lines() {
        let mut l2 = l2();
        let line = line_in_cluster(0, 1);
        assert_eq!(l2.touch(line), None);
        l2.insert(line);
        assert_eq!(l2.touch(line), Some(ClusterId(0)));
    }

    #[test]
    fn migration_is_lazy_until_commit() {
        let mut l2 = l2();
        let line = line_in_cluster(2, 7);
        l2.insert(line);
        l2.begin_migration(line, ClusterId(3)).unwrap();
        // Still visible at the old place: no false misses (paper §4.2.3).
        assert_eq!(l2.locate(line), Some(ClusterId(2)));
        assert_eq!(l2.migration_of(line), Some(ClusterId(3)));
        let out = l2.commit_migration(line).unwrap();
        assert_eq!((out.from, out.to), (ClusterId(2), ClusterId(3)));
        assert_eq!(l2.locate(line), Some(ClusterId(3)));
        assert_eq!(l2.stats().migrations, 1);
        assert_eq!(l2.cluster_occupancy(ClusterId(2)), 0);
        assert_eq!(l2.cluster_occupancy(ClusterId(3)), 1);
    }

    #[test]
    fn begin_migration_rejects_bad_states() {
        let mut l2 = l2();
        let line = line_in_cluster(2, 7);
        assert_eq!(
            l2.begin_migration(line, ClusterId(3)),
            Err(MigrationError::NotResident(line))
        );
        l2.insert(line);
        assert_eq!(
            l2.begin_migration(line, ClusterId(2)),
            Err(MigrationError::SamePlace(line))
        );
        l2.begin_migration(line, ClusterId(3)).unwrap();
        assert_eq!(
            l2.begin_migration(line, ClusterId(4)),
            Err(MigrationError::InFlight(line))
        );
    }

    #[test]
    fn eviction_mid_migration_aborts_it() {
        let mut l2 = l2();
        // Fill one (cluster, bank, set) slot: 16 ways + 1.
        let mk = |i: u64| LineAddr(i << 14); // cluster 0, bank 0, set 0
        for i in 0..16 {
            l2.insert(mk(i));
        }
        l2.begin_migration(mk(0), ClusterId(1)).unwrap();
        // The 17th insert evicts someone; make every line migrating so the
        // abort path must fire for the victim.
        for i in 1..16 {
            l2.begin_migration(mk(i), ClusterId(1)).unwrap();
        }
        let p = l2.insert(mk(16));
        let victim = p.evicted.expect("16-way set overflows");
        assert_eq!(l2.locate(victim), None);
        assert!(
            l2.commit_migration(victim).is_err(),
            "aborted migration cannot commit"
        );
        assert_eq!(l2.stats().migrations_aborted, 1);
        assert_eq!(l2.stats().evictions, 1);
    }

    #[test]
    fn commit_migration_can_evict_at_destination() {
        let mut l2 = l2();
        // Fill (cluster 1, bank 0, set 0) completely.
        let mk1 = |i: u64| LineAddr((i << 14) | (1 << 10));
        for i in 0..16 {
            l2.insert(mk1(i));
        }
        // Migrate a cluster-0 line into cluster 1's identical slot.
        let mover = LineAddr(99 << 14);
        l2.insert(mover);
        l2.begin_migration(mover, ClusterId(1)).unwrap();
        let out = l2.commit_migration(mover).unwrap();
        assert!(out.evicted.is_some(), "destination set was full");
        assert_eq!(l2.locate(out.evicted.unwrap()), None);
    }

    #[test]
    fn remove_aborts_migration_and_clears_maps() {
        let mut l2 = l2();
        let line = line_in_cluster(4, 2);
        l2.insert(line);
        l2.begin_migration(line, ClusterId(5)).unwrap();
        assert_eq!(l2.remove(line), Some(ClusterId(4)));
        assert_eq!(l2.locate(line), None);
        assert_eq!(l2.migration_of(line), None);
        assert_eq!(l2.stats().migrations_aborted, 1);
        assert_eq!(l2.remove(line), None, "double remove");
    }

    #[test]
    fn abort_is_idempotent() {
        let mut l2 = l2();
        let line = line_in_cluster(0, 3);
        l2.insert(line);
        l2.begin_migration(line, ClusterId(1)).unwrap();
        l2.abort_migration(line);
        l2.abort_migration(line);
        assert_eq!(l2.stats().migrations_aborted, 1);
        assert_eq!(l2.locate(line), Some(ClusterId(0)), "line untouched");
    }

    #[test]
    fn replica_lifecycle_install_hit_drop() {
        let mut l2 = l2();
        let line = line_in_cluster(0, 9);
        l2.insert(line);
        assert!(l2.replicas_of(line).is_empty());
        let p = l2.add_replica(line, ClusterId(5)).unwrap();
        assert_eq!(p.cluster, ClusterId(5));
        assert!(l2.has_copy_at(line, ClusterId(0)), "primary");
        assert!(l2.has_copy_at(line, ClusterId(5)), "replica");
        assert!(!l2.has_copy_at(line, ClusterId(3)));
        assert_eq!(l2.locate(line), Some(ClusterId(0)), "primary unchanged");
        assert_eq!(l2.replica_count(), 1);
        assert_eq!(l2.stats().replicas_created, 1);
        // A write drops every replica.
        let dropped = l2.drop_replicas(line);
        assert_eq!(dropped, vec![ClusterId(5)]);
        assert!(!l2.has_copy_at(line, ClusterId(5)));
        assert_eq!(l2.stats().replicas_dropped, 1);
        assert_eq!(l2.cluster_occupancy(ClusterId(5)), 0);
    }

    #[test]
    fn replicas_reject_duplicates_and_ghosts() {
        let mut l2 = l2();
        let line = line_in_cluster(1, 4);
        assert!(matches!(
            l2.add_replica(line, ClusterId(2)),
            Err(MigrationError::NotResident(_))
        ));
        l2.insert(line);
        l2.add_replica(line, ClusterId(2)).unwrap();
        assert!(matches!(
            l2.add_replica(line, ClusterId(2)),
            Err(MigrationError::SamePlace(_))
        ));
        assert!(
            matches!(
                l2.add_replica(line, ClusterId(1)),
                Err(MigrationError::SamePlace(_)),
            ),
            "the primary cluster already holds a copy"
        );
    }

    #[test]
    fn remove_clears_replicas_too() {
        let mut l2 = l2();
        let line = line_in_cluster(3, 6);
        l2.insert(line);
        l2.add_replica(line, ClusterId(7)).unwrap();
        l2.add_replica(line, ClusterId(9)).unwrap();
        assert_eq!(l2.replica_count(), 2);
        l2.remove(line);
        assert_eq!(l2.replica_count(), 0);
        assert_eq!(l2.cluster_occupancy(ClusterId(7)), 0);
        assert_eq!(l2.cluster_occupancy(ClusterId(9)), 0);
    }

    #[test]
    fn migration_into_a_replica_promotes_it() {
        let mut l2 = l2();
        let line = line_in_cluster(0, 2);
        l2.insert(line);
        l2.add_replica(line, ClusterId(4)).unwrap();
        l2.begin_migration(line, ClusterId(4)).unwrap();
        let out = l2.commit_migration(line).unwrap();
        assert_eq!(out.to, ClusterId(4));
        assert_eq!(out.evicted, None, "replica slot is reused");
        assert_eq!(l2.locate(line), Some(ClusterId(4)));
        assert!(!l2.replicas_of(line).contains(&ClusterId(4)));
        assert_eq!(l2.cluster_occupancy(ClusterId(0)), 0);
        assert_eq!(l2.cluster_occupancy(ClusterId(4)), 1);
    }

    #[test]
    fn evicting_a_replica_keeps_the_primary() {
        let mut l2 = l2();
        // Fill (cluster 1, bank 0, set 0) with 15 lines + 1 replica.
        let mk1 = |i: u64| LineAddr((i << 14) | (1 << 10));
        for i in 0..15 {
            l2.insert(mk1(i));
        }
        let shared = LineAddr(77 << 14); // home cluster 0
        l2.insert(shared);
        l2.add_replica(shared, ClusterId(1)).unwrap(); // fills way 16
                                                       // One more insert into the same set evicts pseudo-LRU — keep
                                                       // inserting until the replica is the victim.
        let mut i = 15u64;
        while l2.replica_count() == 1 && i < 40 {
            l2.insert(mk1(i));
            i += 1;
        }
        assert_eq!(l2.replica_count(), 0, "replica eventually evicted");
        assert_eq!(
            l2.locate(shared),
            Some(ClusterId(0)),
            "primary copy survives replica eviction"
        );
    }

    #[test]
    fn checkpoint_round_trips_residency_migration_and_replicas() {
        use nim_types::codec::{ByteReader, ByteWriter};
        let mut a = l2();
        for cl in 0..8u16 {
            a.insert(line_in_cluster(cl, 1));
        }
        let mover = line_in_cluster(1, 1);
        a.begin_migration(mover, ClusterId(9)).unwrap();
        a.add_replica(line_in_cluster(2, 1), ClusterId(11)).unwrap();
        let mut w = ByteWriter::new();
        a.save(&mut w);
        let bytes = w.into_bytes();

        let mut b = l2();
        b.restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(b.stats(), a.stats());
        assert_eq!(b.occupancy(), a.occupancy());
        assert_eq!(b.migration_of(mover), Some(ClusterId(9)));
        assert_eq!(b.replicas_of(line_in_cluster(2, 1)), &[ClusterId(11)]);
        // Both replicas must behave identically from here on.
        let out_a = a.commit_migration(mover).unwrap();
        let out_b = b.commit_migration(mover).unwrap();
        assert_eq!(out_a, out_b);
        // Corrupt/truncated bytes are typed errors, not panics.
        let mut c = l2();
        assert!(c.restore(&mut ByteReader::new(&bytes[..20])).is_err());
    }

    #[test]
    fn distinct_home_clusters_cover_the_whole_l2() {
        let mut l2 = l2();
        for cl in 0..16u16 {
            let line = line_in_cluster(cl, 0);
            assert_eq!(l2.home_cluster(line), ClusterId(cl));
            l2.insert(line);
        }
        for cl in 0..16u16 {
            assert_eq!(l2.cluster_occupancy(ClusterId(cl)), 1);
        }
    }
}
