//! Recording and replaying reference traces.
//!
//! The synthetic generator is deterministic, but recorded traces make
//! experiments portable (e.g. replaying the exact same reference stream
//! against modified cache policies) and allow externally captured traces
//! to drive the simulator. The format is line-oriented text:
//!
//! ```text
//! # nim-trace v1
//! <cpu> <gap> <R|W|I> <hex-address>
//! ```

use std::io::{self, BufRead, Write};

use nim_types::{AccessKind, Address, CpuId, TraceOp};

/// Magic first line of a trace file.
pub const TRACE_HEADER: &str = "# nim-trace v1";

/// Writes `(cpu, op)` pairs as a portable text trace.
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep using the
/// writer afterwards.
///
/// ```
/// use nim_workload::{TraceReader, TraceWriter};
/// use nim_types::{AccessKind, Address, CpuId, TraceOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let op = TraceOp { gap: 3, kind: AccessKind::Read, addr: Address(0x40) };
/// let mut writer = TraceWriter::new(Vec::new())?;
/// writer.record(CpuId(0), op)?;
/// let bytes = writer.finish()?;
///
/// let mut reader = TraceReader::new(bytes.as_slice())?;
/// assert_eq!(reader.next_record()?, Some((CpuId(0), op)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace, writing the header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        writeln!(out, "{TRACE_HEADER}")?;
        Ok(Self { out, records: 0 })
    }

    /// Appends one reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn record(&mut self, cpu: CpuId, op: TraceOp) -> io::Result<()> {
        let kind = match op.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
            AccessKind::IFetch => 'I',
        };
        writeln!(self.out, "{} {} {} {:x}", cpu.0, op.gap, kind, op.addr.0)?;
        self.records += 1;
        Ok(())
    }

    /// References written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Error while parsing a trace.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong header line.
    BadHeader(String),
    /// A malformed record, with its line number.
    BadRecord {
        /// 1-based line number.
        line: u64,
        /// What went wrong.
        reason: String,
    },
}

impl core::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "i/o error: {e}"),
            TraceReadError::BadHeader(h) => write!(f, "not a nim trace (header {h:?})"),
            TraceReadError::BadRecord { line, reason } => {
                write!(f, "bad record at line {line}: {reason}")
            }
        }
    }
}

impl core::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn core::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Reads a recorded trace back as `(cpu, op)` pairs.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    input: R,
    line: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Opens a trace, checking the header. Accepts any [`BufRead`]er by
    /// value; pass `&mut reader` to keep it.
    ///
    /// # Errors
    ///
    /// [`TraceReadError::BadHeader`] if the first line is not
    /// [`TRACE_HEADER`].
    pub fn new(mut input: R) -> Result<Self, TraceReadError> {
        let mut header = String::new();
        input.read_line(&mut header)?;
        if header.trim_end() != TRACE_HEADER {
            return Err(TraceReadError::BadHeader(header.trim_end().to_string()));
        }
        Ok(Self { input, line: 1 })
    }

    /// Reads the next reference; `Ok(None)` at end of trace.
    ///
    /// # Errors
    ///
    /// [`TraceReadError::BadRecord`] on malformed lines.
    pub fn next_record(&mut self) -> Result<Option<(CpuId, TraceOp)>, TraceReadError> {
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.input.read_line(&mut buf)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            let text = buf.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let bad = |reason: &str| TraceReadError::BadRecord {
                line: self.line,
                reason: reason.to_string(),
            };
            let mut fields = text.split_whitespace();
            let cpu: u16 = fields
                .next()
                .ok_or_else(|| bad("missing cpu"))?
                .parse()
                .map_err(|_| bad("cpu is not a number"))?;
            let gap: u32 = fields
                .next()
                .ok_or_else(|| bad("missing gap"))?
                .parse()
                .map_err(|_| bad("gap is not a number"))?;
            let kind = match fields.next().ok_or_else(|| bad("missing kind"))? {
                "R" => AccessKind::Read,
                "W" => AccessKind::Write,
                "I" => AccessKind::IFetch,
                other => return Err(bad(&format!("unknown kind {other:?}"))),
            };
            let addr =
                u64::from_str_radix(fields.next().ok_or_else(|| bad("missing address"))?, 16)
                    .map_err(|_| bad("address is not hex"))?;
            if fields.next().is_some() {
                return Err(bad("trailing fields"));
            }
            return Ok(Some((
                CpuId(cpu),
                TraceOp {
                    gap,
                    kind,
                    addr: Address(addr),
                },
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkProfile, TraceGenerator};

    #[test]
    fn round_trip_preserves_every_record() {
        let mut gen = TraceGenerator::new(&BenchmarkProfile::synthetic(), 4, 5);
        let mut original = Vec::new();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        for i in 0..500u16 {
            let cpu = CpuId(i % 4);
            let op = gen.next_op(cpu);
            writer.record(cpu, op).unwrap();
            original.push((cpu, op));
        }
        assert_eq!(writer.records(), 500);
        let bytes = writer.finish().unwrap();

        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut replayed = Vec::new();
        while let Some(rec) = reader.next_record().unwrap() {
            replayed.push(rec);
        }
        assert_eq!(replayed, original);
    }

    #[test]
    fn rejects_foreign_files() {
        let err = TraceReader::new("not a trace\n1 2 R ff\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceReadError::BadHeader(_)));
    }

    #[test]
    fn reports_malformed_records_with_line_numbers() {
        let text = format!("{TRACE_HEADER}\n0 1 R 40\n0 x R 40\n");
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err();
        match err {
            TraceReadError::BadRecord { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("gap"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{TRACE_HEADER}\n\n# comment\n2 7 W dead\n");
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        let (cpu, op) = reader.next_record().unwrap().unwrap();
        assert_eq!(cpu, CpuId(2));
        assert_eq!(op.gap, 7);
        assert_eq!(op.kind, AccessKind::Write);
        assert_eq!(op.addr, Address(0xdead));
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_kind_and_trailing_fields_are_rejected() {
        let text = format!("{TRACE_HEADER}\n0 1 Q 40\n");
        let mut r = TraceReader::new(text.as_bytes()).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(TraceReadError::BadRecord { .. })
        ));
        let text = format!("{TRACE_HEADER}\n0 1 R 40 junk\n");
        let mut r = TraceReader::new(text.as_bytes()).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(TraceReadError::BadRecord { .. })
        ));
    }
}
