//! Message tokens and timed events.
//!
//! Every packet the system puts on the network carries a 64-bit token
//! identifying what should happen when it arrives. [`Token`] packs a
//! message kind and its payload (transaction id, cluster, or line
//! address) into the cookie; [`TimedEvent`] is the non-network companion
//! for fixed-latency steps (tag probes, bank accesses, memory fetches).

use nim_types::codec::{ByteReader, ByteWriter, CodecError};
use nim_types::{ClusterId, Coord, LineAddr};

use crate::txn::TxnId;

/// Decoded message token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Token {
    /// Tag-array probe for a transaction, aimed at one cluster.
    Probe { txn: TxnId, cluster: ClusterId },
    /// Tag broadcast riding the pillar: one packet probes the whole
    /// search-step disc on the destination layer (paper §4.2.1 — "all the
    /// vertically neighboring clusters receive the tag that is broadcast
    /// through the pillar").
    VerticalProbe {
        txn: TxnId,
        /// Layer whose clusters are probed.
        layer: u8,
        /// Search step the probe belongs to (selects the cluster set).
        step: u8,
    },
    /// A probed tag array reports a miss back to the requester.
    ProbeMiss { txn: TxnId },
    /// Forwarded request travelling from a tag array to the serving bank.
    BankFetch { txn: TxnId },
    /// Data packet from the serving bank back to the requesting CPU.
    DataToCpu { txn: TxnId },
    /// A probed tag array tells a writing CPU where the line lives.
    FoundForWrite { txn: TxnId, cluster: ClusterId },
    /// Write-through store data from the CPU to the serving bank.
    WriteData { txn: TxnId },
    /// Store acknowledgement from the bank back to the CPU.
    WriteAck { txn: TxnId },
    /// A migrating cache line moving between banks.
    MigrationMove { line: LineAddr },
    /// L1 invalidation (coherence or L2 eviction).
    Invalidate { line: LineAddr },
    /// A read-only replica copy travelling to its new cluster
    /// (replication extension).
    ReplicaFill { line: LineAddr, cluster: ClusterId },
    /// An L2 miss travelling to a memory controller.
    MemRequest { line: LineAddr },
    /// A line fetched from DRAM travelling from a memory controller to
    /// its home bank.
    MemFill { line: LineAddr },
}

const KIND_SHIFT: u32 = 56;
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

impl Token {
    /// Packs the token into a packet cookie.
    pub(crate) fn encode(self) -> u64 {
        let (kind, payload): (u64, u64) = match self {
            Token::Probe { txn, cluster } => (0, u64::from(txn) | (u64::from(cluster.0) << 32)),
            Token::ProbeMiss { txn } => (1, u64::from(txn)),
            Token::BankFetch { txn } => (2, u64::from(txn)),
            Token::DataToCpu { txn } => (3, u64::from(txn)),
            Token::FoundForWrite { txn, cluster } => {
                (4, u64::from(txn) | (u64::from(cluster.0) << 32))
            }
            Token::WriteData { txn } => (5, u64::from(txn)),
            Token::WriteAck { txn } => (6, u64::from(txn)),
            Token::MigrationMove { line } => (7, line.0),
            Token::Invalidate { line } => (8, line.0),
            Token::VerticalProbe { txn, layer, step } => (
                9,
                u64::from(txn) | (u64::from(layer) << 32) | (u64::from(step) << 40),
            ),
            Token::ReplicaFill { line, cluster } => {
                debug_assert!(line.0 < (1 << 40), "line address too large for token");
                (10, line.0 | (u64::from(cluster.0) << 40))
            }
            Token::MemRequest { line } => (11, line.0),
            Token::MemFill { line } => (12, line.0),
        };
        debug_assert!(payload <= PAYLOAD_MASK, "token payload overflow");
        (kind << KIND_SHIFT) | payload
    }

    /// The transaction this token belongs to, if it carries one (the
    /// line-scoped tokens — migrations, invalidations, replica and
    /// memory traffic — serve no single transaction; their network time
    /// lands in the waiters' memory-wait bucket or in no bucket at all).
    pub(crate) fn txn_id(self) -> Option<TxnId> {
        match self {
            Token::Probe { txn, .. }
            | Token::VerticalProbe { txn, .. }
            | Token::ProbeMiss { txn }
            | Token::BankFetch { txn }
            | Token::DataToCpu { txn }
            | Token::FoundForWrite { txn, .. }
            | Token::WriteData { txn }
            | Token::WriteAck { txn } => Some(txn),
            Token::MigrationMove { .. }
            | Token::Invalidate { .. }
            | Token::ReplicaFill { .. }
            | Token::MemRequest { .. }
            | Token::MemFill { .. } => None,
        }
    }

    /// Unpacks a packet cookie.
    ///
    /// # Panics
    ///
    /// Panics on an unknown kind tag (corrupted token).
    pub(crate) fn decode(raw: u64) -> Token {
        let kind = raw >> KIND_SHIFT;
        let payload = raw & PAYLOAD_MASK;
        let txn = payload as u32;
        let cluster = ClusterId(((payload >> 32) & 0xffff) as u16);
        match kind {
            0 => Token::Probe { txn, cluster },
            1 => Token::ProbeMiss { txn },
            2 => Token::BankFetch { txn },
            3 => Token::DataToCpu { txn },
            4 => Token::FoundForWrite { txn, cluster },
            5 => Token::WriteData { txn },
            6 => Token::WriteAck { txn },
            7 => Token::MigrationMove {
                line: LineAddr(payload),
            },
            8 => Token::Invalidate {
                line: LineAddr(payload),
            },
            9 => Token::VerticalProbe {
                txn,
                layer: ((payload >> 32) & 0xff) as u8,
                step: ((payload >> 40) & 0xff) as u8,
            },
            10 => Token::ReplicaFill {
                line: LineAddr(payload & ((1 << 40) - 1)),
                cluster: ClusterId(((payload >> 40) & 0xffff) as u16),
            },
            11 => Token::MemRequest {
                line: LineAddr(payload),
            },
            12 => Token::MemFill {
                line: LineAddr(payload),
            },
            k => panic!("unknown token kind {k}"),
        }
    }
}

/// A fixed-latency step that completes at a scheduled cycle.
///
/// `Ord` exists only so events can live inside the scheduler's binary
/// heap; the heap key is `(due_cycle, sequence_number)`, which is unique,
/// so the derived event ordering is never what decides execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimedEvent {
    /// A tag array finished probing for a transaction. `queue` is the
    /// serialization wait the claim charged before the lookup started —
    /// carried here so attribution can split the delay at fire time
    /// (the timeline must never be advanced past `now` at claim time:
    /// a racing serve path could complete first and break the sum
    /// invariant).
    ProbeResolved {
        txn: TxnId,
        cluster: ClusterId,
        queue: u64,
    },
    /// One tag array finished probing a pillar broadcast (fan-out from
    /// the pillar node charged per cluster; the misses of a layer are
    /// aggregated into a single reply). `queue` is the tag claim's
    /// serialization wait, `fanout` the per-hop charge from the pillar
    /// node to the probed cluster.
    VerticalClusterResolved {
        txn: TxnId,
        cluster: ClusterId,
        layer: u8,
        queue: u64,
        fanout: u64,
    },
    /// The bank at `at` finished a read for the transaction; `queue` is
    /// the combined tag/bank serialization wait of the claims.
    BankReadDone { txn: TxnId, at: Coord, queue: u64 },
    /// The bank at `at` finished a write for the transaction; `queue`
    /// as for [`TimedEvent::BankReadDone`].
    BankWritten { txn: TxnId, at: Coord, queue: u64 },
    /// A memory controller finished a DRAM access; the fill may depart.
    MemoryReady { line: LineAddr, mc: u16 },
    /// The fetched line is installed and ready to serve its waiters.
    MemoryFetched { line: LineAddr },
    /// A migrated line finished writing into its destination bank.
    MigrationDone { line: LineAddr },
    /// A replica copy finished writing into its new cluster's bank.
    ReplicaInstalled { line: LineAddr, cluster: ClusterId },
}

impl TimedEvent {
    /// Serializes the event for a snapshot (mirror of
    /// [`TimedEvent::restore`]).
    pub(crate) fn save(&self, w: &mut ByteWriter) {
        match *self {
            TimedEvent::ProbeResolved {
                txn,
                cluster,
                queue,
            } => {
                w.u8(0);
                w.u32(txn);
                w.u16(cluster.0);
                w.u64(queue);
            }
            TimedEvent::VerticalClusterResolved {
                txn,
                cluster,
                layer,
                queue,
                fanout,
            } => {
                w.u8(1);
                w.u32(txn);
                w.u16(cluster.0);
                w.u8(layer);
                w.u64(queue);
                w.u64(fanout);
            }
            TimedEvent::BankReadDone { txn, at, queue } => {
                w.u8(2);
                w.u32(txn);
                w.u8(at.x);
                w.u8(at.y);
                w.u8(at.layer);
                w.u64(queue);
            }
            TimedEvent::BankWritten { txn, at, queue } => {
                w.u8(3);
                w.u32(txn);
                w.u8(at.x);
                w.u8(at.y);
                w.u8(at.layer);
                w.u64(queue);
            }
            TimedEvent::MemoryReady { line, mc } => {
                w.u8(4);
                w.u64(line.0);
                w.u16(mc);
            }
            TimedEvent::MemoryFetched { line } => {
                w.u8(5);
                w.u64(line.0);
            }
            TimedEvent::MigrationDone { line } => {
                w.u8(6);
                w.u64(line.0);
            }
            TimedEvent::ReplicaInstalled { line, cluster } => {
                w.u8(7);
                w.u64(line.0);
                w.u16(cluster.0);
            }
        }
    }

    /// Reads an event written by [`TimedEvent::save`].
    pub(crate) fn restore(r: &mut ByteReader<'_>) -> Result<TimedEvent, CodecError> {
        Ok(match r.u8()? {
            0 => TimedEvent::ProbeResolved {
                txn: r.u32()?,
                cluster: ClusterId(r.u16()?),
                queue: r.u64()?,
            },
            1 => TimedEvent::VerticalClusterResolved {
                txn: r.u32()?,
                cluster: ClusterId(r.u16()?),
                layer: r.u8()?,
                queue: r.u64()?,
                fanout: r.u64()?,
            },
            2 => TimedEvent::BankReadDone {
                txn: r.u32()?,
                at: Coord::new(r.u8()?, r.u8()?, r.u8()?),
                queue: r.u64()?,
            },
            3 => TimedEvent::BankWritten {
                txn: r.u32()?,
                at: Coord::new(r.u8()?, r.u8()?, r.u8()?),
                queue: r.u64()?,
            },
            4 => TimedEvent::MemoryReady {
                line: LineAddr(r.u64()?),
                mc: r.u16()?,
            },
            5 => TimedEvent::MemoryFetched {
                line: LineAddr(r.u64()?),
            },
            6 => TimedEvent::MigrationDone {
                line: LineAddr(r.u64()?),
            },
            7 => TimedEvent::ReplicaInstalled {
                line: LineAddr(r.u64()?),
                cluster: ClusterId(r.u16()?),
            },
            _ => return Err(CodecError::Corrupt("bad timed event tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let samples = [
            Token::Probe {
                txn: 0xdead_beef,
                cluster: ClusterId(15),
            },
            Token::ProbeMiss { txn: 7 },
            Token::BankFetch { txn: u32::MAX },
            Token::DataToCpu { txn: 0 },
            Token::FoundForWrite {
                txn: 42,
                cluster: ClusterId(3),
            },
            Token::WriteData { txn: 1 },
            Token::WriteAck { txn: 2 },
            Token::MigrationMove {
                line: LineAddr((1 << 40) / 64),
            },
            Token::Invalidate {
                line: LineAddr(0x3fff_ffff),
            },
            Token::VerticalProbe {
                txn: 0xffff_ffff,
                layer: 7,
                step: 2,
            },
            Token::ReplicaFill {
                line: LineAddr((1 << 40) - 1),
                cluster: ClusterId(12),
            },
            Token::MemRequest {
                line: LineAddr(0x1234_5678),
            },
            Token::MemFill {
                line: LineAddr(0x8765_4321),
            },
        ];
        for t in samples {
            assert_eq!(Token::decode(t.encode()), t, "{t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown token kind")]
    fn corrupt_tokens_panic() {
        let _ = Token::decode(63 << 56);
    }

    #[test]
    fn timed_events_round_trip_through_the_codec() {
        let samples = [
            TimedEvent::ProbeResolved {
                txn: 9,
                cluster: ClusterId(3),
                queue: 4,
            },
            TimedEvent::VerticalClusterResolved {
                txn: 1,
                cluster: ClusterId(15),
                layer: 2,
                queue: 0,
                fanout: 3,
            },
            TimedEvent::BankReadDone {
                txn: 7,
                at: Coord::new(3, 1, 2),
                queue: 11,
            },
            TimedEvent::BankWritten {
                txn: 8,
                at: Coord::new(0, 0, 0),
                queue: 0,
            },
            TimedEvent::MemoryReady {
                line: LineAddr(77),
                mc: 1,
            },
            TimedEvent::MemoryFetched { line: LineAddr(78) },
            TimedEvent::MigrationDone { line: LineAddr(79) },
            TimedEvent::ReplicaInstalled {
                line: LineAddr(80),
                cluster: ClusterId(9),
            },
        ];
        let mut w = nim_types::codec::ByteWriter::new();
        for e in &samples {
            e.save(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = nim_types::codec::ByteReader::new(&bytes);
        for e in &samples {
            assert_eq!(TimedEvent::restore(&mut r).unwrap(), *e);
        }
        assert_eq!(r.remaining(), 0);
        let mut r = nim_types::codec::ByteReader::new(&[200u8]);
        assert!(TimedEvent::restore(&mut r).is_err());
    }
}
