//! Property-based tests: the MSI directory's protocol invariants hold
//! under arbitrary interleavings of accesses, evictions, and
//! invalidations.

use nim_coherence::{DirAccess, Directory, LineState, WritePolicy};
use nim_types::{CpuId, LineAddr};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Read(u8, u8),
    Write(u8, u8),
    Evict(u8, u8),
    InvalidateAll(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(c, l)| Op::Read(c, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(c, l)| Op::Write(c, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(c, l)| Op::Evict(c, l)),
        any::<u8>().prop_map(Op::InvalidateAll),
    ]
}

fn line(l: u8) -> LineAddr {
    LineAddr(u64::from(l % 16) * 64)
}

fn cpu(c: u8) -> CpuId {
    CpuId(u16::from(c % 8))
}

fn check(policy: WritePolicy, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut dir = Directory::new(8, policy);
    for op in ops {
        match op {
            Op::Read(c, l) => {
                let out = dir.access(cpu(c), line(l), DirAccess::Read);
                // A read never invalidates anyone.
                prop_assert!(out.invalidations.is_empty());
                prop_assert!(dir.holds(line(l), cpu(c)));
            }
            Op::Write(c, l) => {
                let out = dir.access(cpu(c), line(l), DirAccess::Write);
                // The writer never invalidates itself.
                prop_assert!(!out.invalidations.contains(&cpu(c)));
                // After a write, the writer is the only holder.
                prop_assert_eq!(dir.sharers(line(l)), vec![cpu(c)]);
            }
            Op::Evict(c, l) => {
                dir.evict(cpu(c), line(l));
                prop_assert!(!dir.holds(line(l), cpu(c)));
            }
            Op::InvalidateAll(l) => {
                dir.invalidate_all(line(l));
                prop_assert_eq!(dir.state(line(l)), LineState::Invalid);
                prop_assert!(dir.sharers(line(l)).is_empty());
            }
        }
        dir.check_invariants()
            .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
        // Write-through never leaves a Modified line behind.
        if policy == WritePolicy::WriteThrough {
            for l in 0..16u8 {
                prop_assert_ne!(dir.state(line(l)), LineState::Modified);
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn write_through_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..300)) {
        check(WritePolicy::WriteThrough, ops)?;
    }

    #[test]
    fn write_back_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..300)) {
        check(WritePolicy::WriteBack, ops)?;
    }

    #[test]
    fn invalidation_counts_match_reported_lists(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut dir = Directory::new(8, WritePolicy::WriteThrough);
        let mut counted = 0u64;
        for op in ops {
            match op {
                Op::Read(c, l) => {
                    counted += dir.access(cpu(c), line(l), DirAccess::Read).invalidations.len() as u64;
                }
                Op::Write(c, l) => {
                    counted += dir.access(cpu(c), line(l), DirAccess::Write).invalidations.len() as u64;
                }
                Op::Evict(c, l) => {
                    dir.evict(cpu(c), line(l));
                }
                Op::InvalidateAll(l) => {
                    counted += dir.invalidate_all(line(l)).len() as u64;
                }
            }
        }
        prop_assert_eq!(dir.invalidations_sent, counted);
    }
}
