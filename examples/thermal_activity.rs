//! Activity-driven thermal analysis — the coupling the paper's
//! conclusion points toward: feed the *measured* per-bank access activity
//! of a real simulation into the thermal model, instead of assuming
//! uniformly clock-gated banks.
//!
//! Runs CMP-DNUCA-3D on mgrid, converts each bank's access count into
//! dynamic power on top of the clock-gated baseline, and compares the
//! resulting thermal profile against the uniform-power assumption of
//! Table 3.
//!
//! ```sh
//! cargo run --release --example thermal_activity
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::thermal::{ThermalConfig, ThermalModel};
use network_in_memory::topology::Floorplan;
use network_in_memory::workload::BenchmarkProfile;

/// Energy of one 64 KB bank access (matches `nim-power`'s model).
const BANK_ACCESS_J: f64 = 390e-12;

fn main() -> Result<(), Box<dyn Error>> {
    let mut system = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(3)
        .warmup_transactions(2_000)
        .sampled_transactions(20_000)
        .build()?;
    let report = system.run(&BenchmarkProfile::mgrid())?;
    println!(
        "ran {} L2 transactions over {} cycles on {}",
        report.counters.l2_transactions, report.cycles, report.benchmark
    );

    let layout = system.layout().clone();
    let seats = system.seats().to_vec();
    let plan = Floorplan::new(&layout, &seats);
    let tcfg = ThermalConfig::default();

    // Uniform assumption (Table 3): every bank at the clock-gated floor.
    let uniform = ThermalModel::new(&plan, &tcfg).solve(&tcfg);

    // Activity-driven: dynamic power = accesses x energy / time, at a
    // 1 GHz clock, on top of the clock-gated floor.
    let mut model = ThermalModel::new(&plan, &tcfg);
    let cycles = report.cycles.max(1) as f64;
    let mut hottest_bank = (0u64, None);
    for i in 0..layout.num_nodes() {
        let c = layout.coord_of_index(i);
        let accesses = system.bank_access_counts()[i];
        if seats.iter().all(|s| s.coord != c) {
            let dynamic_w = accesses as f64 * BANK_ACCESS_J * 1e9 / cycles;
            model.set_power(c, tcfg.bank_w + dynamic_w);
        }
        if accesses > hottest_bank.0 {
            hottest_bank = (accesses, Some(c));
        }
    }
    let activity = model.solve(&tcfg);

    println!(
        "\n{:<22} {:>10} {:>10} {:>10}",
        "power model", "peak C", "avg C", "min C"
    );
    println!(
        "{:<22} {:>10.2} {:>10.2} {:>10.2}",
        "uniform (Table 3)",
        uniform.peak(),
        uniform.avg(),
        uniform.min()
    );
    println!(
        "{:<22} {:>10.2} {:>10.2} {:>10.2}",
        "activity-driven",
        activity.peak(),
        activity.avg(),
        activity.min()
    );
    if let (n, Some(c)) = hottest_bank {
        println!(
            "\nbusiest bank: {c} with {n} accesses ({:.1} accesses/kcycle) — {:.2} C",
            n as f64 / cycles * 1e3,
            activity.at(c)
        );
    }
    println!(
        "\nThe measured result backs the paper's modelling assumption: bank\n\
         dynamic power (sub-µW at real access rates) is negligible next to\n\
         the 8 W cores, so clock-gated banks are a sound Table 3 premise —\n\
         and any thermally-aware data management (the paper's future-work\n\
         direction) must steer CPU-side activity, not bank placement."
    );
    Ok(())
}
