//! The §3.1 design-search ablation: with realistic router timing, the
//! dTDMA bus is a better vertical gateway than extending the mesh with
//! 7-port routers — for the layer counts the paper considers.

use network_in_memory::noc::{Network, SendRequest, TrafficClass, VerticalMode};
use network_in_memory::topology::ChipLayout;
use network_in_memory::types::{Coord, SystemConfig};

fn avg_latency(mode: VerticalMode, layers: u8) -> f64 {
    let mut cfg = SystemConfig::default().with_layers(layers);
    if mode == VerticalMode::Mesh3d {
        // Every router in the rejected design is 7-port: the enlarged
        // crossbar and switch arbiters cost the single-cycle pipeline.
        cfg.network.router_latency = 2;
    }
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut net = Network::new(&layout, &cfg.network, mode);
    // Deterministic all-to-some traffic spanning the layers.
    let mut token = 0u64;
    for sl in 0..layers {
        for dl in 0..layers {
            for i in 0..layout.width() {
                let src = Coord::new(i, (i % layout.height()).min(layout.height() - 1), sl);
                let dst = Coord::new(
                    layout.width() - 1 - i,
                    layout.height() - 1 - (i % layout.height()),
                    dl,
                );
                net.send(SendRequest {
                    src,
                    dst,
                    via: layout.nearest_pillar(src),
                    class: TrafficClass::Data,
                    flits: 4,
                    token,
                });
                token += 1;
                // L2 traffic arrives spread over time, not as one burst.
                for _ in 0..12 {
                    net.tick();
                }
            }
        }
    }
    net.run_until_idle(1_000_000).expect("traffic drains");
    net.stats().avg_latency()
}

#[test]
fn dtdma_pillars_beat_the_seven_port_mesh_below_nine_layers() {
    for layers in [2u8, 4] {
        let bus = avg_latency(VerticalMode::Pillars, layers);
        let mesh = avg_latency(VerticalMode::Mesh3d, layers);
        assert!(
            bus < mesh,
            "{layers} layers: dTDMA {bus:.2} must beat 7-port mesh {mesh:.2} (§3.1)"
        );
    }
}

#[test]
fn with_free_routers_the_mesh_would_win_on_raw_hops() {
    // Sanity check of the ablation's mechanism: if the 7-port router were
    // as fast as the 5-port one (it is not — that is the point of §3.1),
    // the extra vertical bandwidth would make the mesh competitive.
    let mut cfg = SystemConfig::default().with_layers(2);
    cfg.network.router_latency = 1; // counterfactually free
    let layout = ChipLayout::new(&cfg).unwrap();
    let mut net = Network::new(&layout, &cfg.network, VerticalMode::Mesh3d);
    net.send(SendRequest {
        src: Coord::new(0, 0, 0),
        dst: Coord::new(0, 0, 1),
        via: None,
        class: TrafficClass::Control,
        flits: 1,
        token: 0,
    });
    net.run_until_idle(1_000).unwrap();
    let d = net.drain_delivered().pop().unwrap();
    assert_eq!(d.hops, 1, "directly-stacked nodes are one mesh hop apart");
}
