//! Virtual channels and input ports.
//!
//! Each physical channel of a router has a number of virtual channels
//! (VCs): FIFO flit buffers holding flits of different pending messages
//! (paper §3.2: 3 VCs per physical channel, each one 4-flit message deep).
//! A VC is *owned* by the packet whose head flit allocated it; ownership
//! is released when the tail flit drains, so a packet never interleaves
//! with another inside one VC.
//!
//! Flit storage lives in the network-wide [`FlitArena`]; the `Vc` itself
//! is a small inline record (ring indices + owner), so scanning a
//! router's VCs for occupancy touches no per-queue heap allocation.

use nim_types::PacketId;

use crate::packet::{Flit, FlitArena, FlitFifo};

/// One virtual channel: a bounded FIFO owned by at most one packet.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Vc {
    fifo: FlitFifo,
    owner: Option<PacketId>,
}

impl Vc {
    pub(crate) fn new(arena: &mut FlitArena, cap: usize) -> Self {
        assert!(cap >= 1, "VC depth must be at least one flit");
        Self {
            fifo: FlitFifo::new(arena, cap),
            owner: None,
        }
    }

    /// Whether a head flit of a *new* packet may allocate this VC.
    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.owner.is_none() && self.fifo.is_empty()
    }

    /// Whether a non-head flit of `pkt` may enter (right owner, space left).
    #[inline]
    pub(crate) fn accepts_continuation(&self, pkt: PacketId) -> bool {
        self.owner == Some(pkt) && !self.fifo.is_full()
    }

    /// Pushes a flit.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the push violates ownership or capacity — callers
    /// must check [`is_free`](Self::is_free) /
    /// [`accepts_continuation`](Self::accepts_continuation) first.
    pub(crate) fn push(&mut self, arena: &mut FlitArena, flit: Flit) {
        if flit.kind.is_head() {
            debug_assert!(self.is_free(), "head flit into occupied VC");
            self.owner = Some(flit.pkt);
        } else {
            debug_assert!(
                self.accepts_continuation(flit.pkt),
                "continuation flit into foreign or full VC"
            );
        }
        self.fifo.push_back(arena, flit);
    }

    /// The flit at the head of the FIFO, if any.
    #[inline]
    pub(crate) fn front<'a>(&self, arena: &'a FlitArena) -> Option<&'a Flit> {
        self.fifo.front(arena)
    }

    /// Pops the head flit, releasing ownership if it was the tail.
    pub(crate) fn pop(&mut self, arena: &FlitArena) -> Option<Flit> {
        let flit = self.fifo.pop_front(arena)?;
        if flit.kind.is_tail() {
            debug_assert!(self.fifo.is_empty(), "flits behind a tail");
            self.owner = None;
        }
        Some(flit)
    }

    #[inline]
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub(crate) fn len(&self) -> usize {
        self.fifo.len()
    }

    /// The owning packet, if any (snapshot save).
    #[inline]
    pub(crate) fn owner(&self) -> Option<PacketId> {
        self.owner
    }

    /// The underlying FIFO (snapshot save iterates its flits).
    #[inline]
    pub(crate) fn fifo(&self) -> &FlitFifo {
        &self.fifo
    }

    /// Pushes a flit without ownership bookkeeping and then pins the
    /// owner explicitly — the snapshot-restore path, which rebuilds VCs
    /// that may hold a packet mid-stream (body flits without their head,
    /// so [`Vc::push`]'s head/continuation invariants do not apply).
    pub(crate) fn restore_flits(
        &mut self,
        arena: &mut FlitArena,
        flits: &[Flit],
        owner: Option<PacketId>,
    ) {
        debug_assert!(self.fifo.is_empty() && self.owner.is_none());
        for &f in flits {
            self.fifo.push_back(arena, f);
        }
        self.owner = owner;
    }
}

/// One input port: the VCs fed by one upstream link.
#[derive(Clone, Debug)]
pub(crate) struct InputPort {
    vcs: Vec<Vc>,
}

impl InputPort {
    pub(crate) fn new(arena: &mut FlitArena, num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs >= 1);
        Self {
            vcs: (0..num_vcs).map(|_| Vc::new(arena, depth)).collect(),
        }
    }

    /// Index of a VC a new packet's head flit may allocate.
    pub(crate) fn free_vc(&self) -> Option<usize> {
        self.vcs.iter().position(Vc::is_free)
    }

    /// Index of the VC owned by `pkt` with space for another flit.
    pub(crate) fn continuation_vc(&self, pkt: PacketId) -> Option<usize> {
        self.vcs.iter().position(|vc| vc.accepts_continuation(pkt))
    }

    #[inline]
    pub(crate) fn vc(&self, idx: usize) -> &Vc {
        &self.vcs[idx]
    }

    #[inline]
    pub(crate) fn vc_mut(&mut self, idx: usize) -> &mut Vc {
        &mut self.vcs[idx]
    }

    #[inline]
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub(crate) fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Total buffered flits across all VCs.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub(crate) fn occupancy(&self) -> usize {
        self.vcs.iter().map(Vc::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlitKind, TrafficClass};
    use nim_types::{Coord, Cycle, PacketId};

    fn flit(pkt: u64, kind: FlitKind) -> Flit {
        Flit {
            pkt: PacketId(pkt),
            kind,
            src: Coord::new(0, 0, 0),
            dst: Coord::new(1, 1, 0),
            via: None,
            class: TrafficClass::Data,
            token: 0,
            injected: Cycle::ZERO,
            arrived: Cycle::ZERO,
            hops: 0,
            bus_wait: 0,
        }
    }

    #[test]
    fn ownership_lifecycle() {
        let mut arena = FlitArena::default();
        let mut vc = Vc::new(&mut arena, 4);
        assert!(vc.is_free());
        vc.push(&mut arena, flit(1, FlitKind::Head));
        assert!(!vc.is_free());
        assert!(vc.accepts_continuation(PacketId(1)));
        assert!(!vc.accepts_continuation(PacketId(2)));
        vc.push(&mut arena, flit(1, FlitKind::Body));
        vc.push(&mut arena, flit(1, FlitKind::Body));
        vc.push(&mut arena, flit(1, FlitKind::Tail));
        assert!(!vc.accepts_continuation(PacketId(1)), "full");
        assert_eq!(vc.pop(&arena).unwrap().kind, FlitKind::Head);
        assert_eq!(vc.pop(&arena).unwrap().kind, FlitKind::Body);
        assert!(!vc.is_free(), "owner retained until tail pops");
        vc.pop(&arena);
        vc.pop(&arena);
        assert!(vc.is_free(), "tail pop releases ownership");
    }

    #[test]
    fn single_flit_packet_frees_immediately() {
        let mut arena = FlitArena::default();
        let mut vc = Vc::new(&mut arena, 4);
        vc.push(&mut arena, flit(9, FlitKind::HeadTail));
        assert!(!vc.is_free());
        vc.pop(&arena);
        assert!(vc.is_free());
    }

    #[test]
    fn input_port_vc_selection() {
        let mut arena = FlitArena::default();
        let mut port = InputPort::new(&mut arena, 3, 4);
        assert_eq!(port.free_vc(), Some(0));
        port.vc_mut(0).push(&mut arena, flit(1, FlitKind::Head));
        assert_eq!(port.free_vc(), Some(1), "skips the owned VC");
        assert_eq!(port.continuation_vc(PacketId(1)), Some(0));
        assert_eq!(port.continuation_vc(PacketId(2)), None);
        assert_eq!(port.occupancy(), 1);
        assert_eq!(port.num_vcs(), 3);
    }

    #[test]
    fn all_vcs_busy_blocks_new_heads() {
        let mut arena = FlitArena::default();
        let mut port = InputPort::new(&mut arena, 2, 4);
        port.vc_mut(0).push(&mut arena, flit(1, FlitKind::Head));
        port.vc_mut(1).push(&mut arena, flit(2, FlitKind::Head));
        assert_eq!(port.free_vc(), None);
    }
}
