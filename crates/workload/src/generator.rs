//! Synthetic memory-reference generation.
//!
//! [`TraceGenerator`] turns a [`BenchmarkProfile`] into per-CPU infinite
//! reference streams. Each CPU owns a private region (a hot set the L1
//! absorbs, a large streaming array, a code loop) and all CPUs share one
//! region that creates inter-processor sharing and coherence traffic.
//! Everything is driven by one seeded RNG per CPU, so runs are
//! bit-for-bit reproducible and different CPUs are decorrelated.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use nim_types::{AccessKind, Address, CpuId, TraceOp};

use crate::profile::BenchmarkProfile;

/// Cache-line size assumed by the region layout (matches Table 4).
const LINE: u64 = 64;

/// Base of each CPU's private region (256 MB apart). The low offset
/// staggers the NUCA home-cluster field (byte-address bits [16, 20) for
/// the default geometry) so different CPUs' private data is born in
/// different clusters instead of aliasing onto the same sets.
fn private_base(cpu: CpuId) -> u64 {
    let c = cpu.index() as u64;
    ((1 + c) << 28) | (c << 16)
}

/// Base of the shared region (above every private region).
const SHARED_BASE: u64 = 1 << 40;

/// One contiguous region of memory, line-aligned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Extent in cache lines.
    pub lines: u32,
}

impl Region {
    /// Iterates the first byte address of every line in the region.
    pub fn line_addrs(&self) -> impl Iterator<Item = Address> + '_ {
        (0..u64::from(self.lines)).map(move |i| Address(self.base + i * LINE))
    }
}

/// The private regions one CPU touches under a profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuRegions {
    /// Hot set (L1-resident reuse).
    pub hot: Region,
    /// Streaming array.
    pub stream: Region,
    /// Code loop (instruction fetches).
    pub code: Region,
}

/// The private regions of `cpu` under `profile` (the same layout
/// [`TraceGenerator::next_op`] draws addresses from).
pub fn cpu_regions(profile: &BenchmarkProfile, cpu: CpuId) -> CpuRegions {
    let base = private_base(cpu);
    CpuRegions {
        hot: Region {
            base,
            lines: profile.hot_lines,
        },
        stream: Region {
            base: base + (1 << 24),
            lines: profile.footprint_lines,
        },
        code: Region {
            base: base + (1 << 26),
            lines: profile.code_lines,
        },
    }
}

/// The region all CPUs share under `profile`.
pub fn shared_region(profile: &BenchmarkProfile) -> Region {
    Region {
        base: SHARED_BASE,
        lines: profile.shared_lines,
    }
}

#[derive(Debug)]
struct CpuStream {
    rng: StdRng,
    /// Byte offset within the private streaming array.
    stream_pos: u64,
    /// Byte offset within the shared region (each thread walks its own
    /// moving window, like an OMP loop partition).
    shared_pos: u64,
    /// Byte offset within the code loop.
    code_pos: u64,
    /// References this thread has generated so far. Every mutation in
    /// [`TraceGenerator::draw`] is thread-local, so this single count
    /// pins the whole stream state — the basis of cursor reconstruction.
    ops: u64,
}

/// Total ops (across all CPUs) between thread-to-CPU rotations.
///
/// The paper's evaluation runs under Solaris 9, whose scheduler
/// periodically moves threads between processors; every rotation
/// invalidates whatever locality migration had built for the departing
/// thread. The period is chosen so a measurement window experiences a
/// handful of scheduler moves with enough time in between for migration
/// to partially re-converge — the same regime as the paper's 2 G-cycle
/// windows under ~10 ms Solaris scheduling quanta.
pub const ROTATION_PERIOD_OPS: u64 = 40_000;

/// The exact position of a [`TraceGenerator`] within its streams: the
/// `(seed, stream position)` pair ISSUE 10 asks for, with the stream
/// position spelled out per thread.
///
/// Together with the constructor arguments (`profile`, `num_cpus`,
/// `seed`), this reconstructs a generator mid-flight via
/// [`TraceGenerator::at_cursor`]: every mutation in the draw path is
/// thread-local, so replaying each thread's draw count reproduces its
/// RNG and walk state exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GeneratorCursor {
    /// Thread → CPU binding rotation count.
    pub rotation: u64,
    /// References left before the next rotation.
    pub ops_until_rotate: u64,
    /// References generated so far, per thread.
    pub thread_ops: Vec<u64>,
}

/// Where a [`TraceSource`] stands, for snapshot/resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceCursor {
    /// The source carries no resumable state (custom test stubs).
    None,
    /// A synthetic generator's position.
    Generator(GeneratorCursor),
    /// Per-CPU counts of references a replay trace has already served.
    Replay(Vec<u64>),
}

/// Anything that can feed per-CPU reference streams to the simulator:
/// the synthetic [`TraceGenerator`], a [`ReplayTrace`](crate::ReplayTrace)
/// read back from disk, or custom test stubs.
pub trait TraceSource {
    /// The next reference for `cpu`; `None` ends that CPU's stream (the
    /// core retires its last instruction and halts).
    fn next_for(&mut self, cpu: CpuId) -> Option<TraceOp>;

    /// The source's current position, for snapshot/resume. Sources that
    /// cannot be resumed report [`TraceCursor::None`] (the default).
    fn cursor(&self) -> TraceCursor {
        TraceCursor::None
    }
}

impl TraceSource for TraceGenerator {
    fn next_for(&mut self, cpu: CpuId) -> Option<TraceOp> {
        Some(self.next_op(cpu))
    }

    fn cursor(&self) -> TraceCursor {
        TraceCursor::Generator(self.cursor())
    }
}

/// Deterministic per-CPU reference generator for one benchmark.
///
/// Streams belong to *threads*; the thread → CPU binding rotates every
/// [`ROTATION_PERIOD_OPS`] references, as an OS scheduler would.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    threads: Vec<CpuStream>,
    /// Current rotation of the thread → CPU binding.
    rotation: usize,
    ops_until_rotate: u64,
}

impl TraceGenerator {
    /// Creates streams for `num_cpus` CPUs from a master `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: &BenchmarkProfile, num_cpus: u32, seed: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        Self {
            profile: *profile,
            rotation: 0,
            ops_until_rotate: ROTATION_PERIOD_OPS,
            threads: (0..num_cpus)
                .map(|c| {
                    let shared_bytes = u64::from(profile.shared_lines) * LINE;
                    CpuStream {
                        rng: StdRng::seed_from_u64(
                            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(c) + 1)),
                        ),
                        stream_pos: 0,
                        // Threads start spread over the shared region, as
                        // OMP's static loop scheduling would place them.
                        shared_pos: shared_bytes * u64::from(c) / u64::from(num_cpus.max(1)),
                        code_pos: 0,
                        ops: 0,
                    }
                })
                .collect(),
        }
    }

    /// The profile driving this generator.
    #[inline]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Next reference for `cpu` (streams are infinite).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn next_op(&mut self, cpu: CpuId) -> TraceOp {
        self.ops_until_rotate -= 1;
        if self.ops_until_rotate == 0 {
            self.ops_until_rotate = ROTATION_PERIOD_OPS;
            self.rotation += 1;
        }
        let thread = (cpu.index() + self.rotation) % self.threads.len();
        self.draw(thread)
    }

    /// The generator's current position. Feed back to
    /// [`TraceGenerator::at_cursor`] (with the same constructor
    /// arguments) to reconstruct the generator mid-stream.
    pub fn cursor(&self) -> GeneratorCursor {
        GeneratorCursor {
            rotation: self.rotation as u64,
            ops_until_rotate: self.ops_until_rotate,
            thread_ops: self.threads.iter().map(|t| t.ops).collect(),
        }
    }

    /// Reconstructs a generator at `cursor`, so its future output is
    /// identical to a generator that produced `cursor` live: each
    /// thread's draws are thread-local, so replaying its recorded draw
    /// count restores that thread's RNG and walk positions exactly.
    ///
    /// Returns `None` if the cursor's thread count does not match
    /// `num_cpus` (a snapshot from a different configuration).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn at_cursor(
        profile: &BenchmarkProfile,
        num_cpus: u32,
        seed: u64,
        cursor: &GeneratorCursor,
    ) -> Option<Self> {
        if cursor.thread_ops.len() != num_cpus as usize {
            return None;
        }
        let mut gen = Self::new(profile, num_cpus, seed);
        for (t, &ops) in cursor.thread_ops.iter().enumerate() {
            for _ in 0..ops {
                let _ = gen.draw(t);
            }
        }
        gen.rotation = usize::try_from(cursor.rotation).ok()?;
        gen.ops_until_rotate = cursor.ops_until_rotate;
        Some(gen)
    }

    /// Draws the next reference of `thread`. Mutates only that thread's
    /// stream state (the invariant [`TraceGenerator::at_cursor`] rests
    /// on).
    fn draw(&mut self, thread: usize) -> TraceOp {
        let p = self.profile;
        let thread_id = CpuId::from_index(thread);
        let state = &mut self.threads[thread];
        state.ops += 1;
        // Instruction gap: geometric with memory-op probability
        // mem_per_instr + ifetch_frac per instruction slot.
        let rate = (p.mem_per_instr + p.ifetch_frac).min(1.0);
        let u: f64 = state.rng.random();
        let gap = if rate >= 1.0 {
            0
        } else {
            ((1.0 - u).ln() / (1.0 - rate).ln()).min(10_000.0) as u32
        };
        // Kind: instruction fetch vs data; stores among data refs.
        let is_ifetch = state.rng.random::<f64>() < p.ifetch_frac / rate;
        if is_ifetch {
            // Walk the code loop: 4-byte instructions, sequential, wrapping.
            let code_bytes = u64::from(p.code_lines) * LINE;
            let addr = private_base(thread_id) + (1 << 26) + state.code_pos;
            state.code_pos = (state.code_pos + 4) % code_bytes;
            return TraceOp {
                gap,
                kind: AccessKind::IFetch,
                addr: Address(addr),
            };
        }
        let kind = if state.rng.random::<f64>() < p.store_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Region: shared, streaming, or hot.
        let r: f64 = state.rng.random();
        let addr = if r < p.shared_frac {
            // Walk the shared region with an 8 B stride — the OMP loop
            // partition pattern. With probability `shared_reuse`, re-touch
            // the current (L1-resident) line instead of advancing — inner
            // loops reusing operands. Occasionally jump to a random
            // position (reduction variables, boundary exchange), which
            // also makes the windows of different threads collide.
            let shared_bytes = u64::from(p.shared_lines) * LINE;
            if state.rng.random::<f64>() < p.shared_reuse {
                let line_base = state.shared_pos / LINE * LINE;
                SHARED_BASE + line_base + state.rng.random_range(0..8u64) * 8
            } else {
                if state.rng.random::<f64>() < 0.05 {
                    state.shared_pos = state.rng.random_range(0..u64::from(p.shared_lines)) * LINE;
                }
                let addr = SHARED_BASE + state.shared_pos;
                state.shared_pos = (state.shared_pos + 8) % shared_bytes;
                addr
            }
        } else if r < p.shared_frac + p.streaming_frac {
            let stream_bytes = u64::from(p.footprint_lines) * LINE;
            let addr = private_base(thread_id) + (1 << 24) + state.stream_pos;
            state.stream_pos = (state.stream_pos + 8) % stream_bytes;
            addr
        } else {
            let line = state.rng.random_range(0..u64::from(p.hot_lines));
            private_base(thread_id) + line * LINE + state.rng.random_range(0..8u64) * 8
        };
        TraceOp {
            gap,
            kind,
            addr: Address(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> TraceGenerator {
        TraceGenerator::new(&BenchmarkProfile::synthetic(), 8, 1234)
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = generator();
        let mut b = generator();
        for i in 0..1000 {
            assert_eq!(a.next_op(CpuId(3)), b.next_op(CpuId(3)), "op {i}");
        }
    }

    #[test]
    fn different_cpus_get_different_streams() {
        let mut g = generator();
        let ops0: Vec<_> = (0..100).map(|_| g.next_op(CpuId(0))).collect();
        let ops1: Vec<_> = (0..100).map(|_| g.next_op(CpuId(1))).collect();
        assert_ne!(ops0, ops1);
    }

    #[test]
    fn mean_gap_matches_the_memory_density() {
        let mut g = generator();
        let n = 50_000;
        let total_gap: u64 = (0..n).map(|_| u64::from(g.next_op(CpuId(0)).gap)).sum();
        let rate = 0.4 + 0.01; // synthetic profile: mem + ifetch
        let expect = (1.0 - rate) / rate;
        let mean = total_gap as f64 / f64::from(n);
        assert!(
            (mean - expect).abs() < 0.1,
            "mean gap {mean} vs expected {expect}"
        );
    }

    #[test]
    fn region_mix_approximates_the_profile() {
        let mut g = generator();
        let n = 50_000;
        let mut shared = 0u32;
        let mut stores = 0u32;
        let mut ifetch = 0u32;
        for _ in 0..n {
            let op = g.next_op(CpuId(2));
            if op.addr.0 >= SHARED_BASE {
                shared += 1;
            }
            match op.kind {
                AccessKind::Write => stores += 1,
                AccessKind::IFetch => ifetch += 1,
                AccessKind::Read => {}
            }
        }
        let shared_frac = f64::from(shared) / f64::from(n);
        assert!((shared_frac - 0.25).abs() < 0.03, "shared {shared_frac}");
        let store_frac = f64::from(stores) / f64::from(n - ifetch);
        assert!((store_frac - 0.15).abs() < 0.03, "stores {store_frac}");
    }

    #[test]
    fn private_addresses_never_collide_between_cpus() {
        let mut g = generator();
        for c in 0..8u16 {
            for _ in 0..200 {
                let op = g.next_op(CpuId(c));
                if op.addr.0 < SHARED_BASE {
                    let region = op.addr.0 >> 28;
                    assert_eq!(region, u64::from(c) + 1, "cpu {c} strayed");
                }
            }
        }
    }

    #[test]
    fn streaming_walks_sequentially() {
        // A profile that only streams: addresses must advance by 8 bytes.
        let mut p = BenchmarkProfile::synthetic();
        p.streaming_frac = 1.0;
        p.shared_frac = 0.0;
        p.ifetch_frac = 0.0;
        let mut g = TraceGenerator::new(&p, 1, 7);
        let a0 = g.next_op(CpuId(0)).addr.0;
        let a1 = g.next_op(CpuId(0)).addr.0;
        let a2 = g.next_op(CpuId(0)).addr.0;
        assert_eq!(a1 - a0, 8);
        assert_eq!(a2 - a1, 8);
    }

    #[test]
    fn generated_addresses_stay_inside_the_declared_regions() {
        let profile = BenchmarkProfile::synthetic();
        let mut g = TraceGenerator::new(&profile, 4, 99);
        let shared = shared_region(&profile);
        for c in 0..4u16 {
            let regions = cpu_regions(&profile, CpuId(c));
            for _ in 0..2_000 {
                let op = g.next_op(CpuId(c));
                let a = op.addr.0;
                let inside = |r: &Region| a >= r.base && a < r.base + u64::from(r.lines) * LINE;
                assert!(
                    inside(&regions.hot)
                        || inside(&regions.stream)
                        || inside(&regions.code)
                        || inside(&shared),
                    "address {a:#x} outside every declared region"
                );
            }
        }
    }

    #[test]
    fn region_line_addrs_cover_the_region_exactly() {
        let r = Region {
            base: 0x1000,
            lines: 4,
        };
        let addrs: Vec<u64> = r.line_addrs().map(|a| a.0).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
    }

    #[test]
    fn cursor_reconstruction_replays_identical_traffic() {
        let profile = BenchmarkProfile::synthetic();
        let mut live = TraceGenerator::new(&profile, 4, 77);
        // Uneven interleaving across CPUs, crossing a rotation boundary
        // so the thread → CPU binding is nontrivial at the cursor.
        for i in 0..(ROTATION_PERIOD_OPS + 1_500) {
            let cpu = CpuId((i % 4) as u16);
            let _ = live.next_op(cpu);
            if i % 7 == 0 {
                let _ = live.next_op(CpuId(2));
            }
        }
        let cursor = live.cursor();
        assert!(cursor.rotation >= 1, "rotation boundary crossed");

        let mut resumed =
            TraceGenerator::at_cursor(&profile, 4, 77, &cursor).expect("cursor matches config");
        assert_eq!(resumed.cursor(), cursor);
        for i in 0..5_000u64 {
            let cpu = CpuId((i % 4) as u16);
            assert_eq!(live.next_op(cpu), resumed.next_op(cpu), "op {i}");
        }
    }

    #[test]
    fn cursor_rejects_mismatched_thread_count() {
        let profile = BenchmarkProfile::synthetic();
        let g = TraceGenerator::new(&profile, 4, 1);
        let cursor = g.cursor();
        assert!(TraceGenerator::at_cursor(&profile, 8, 1, &cursor).is_none());
    }

    #[test]
    fn trace_source_cursor_reports_generator_position() {
        let mut g = generator();
        let _ = g.next_op(CpuId(0));
        match TraceSource::cursor(&g) {
            TraceCursor::Generator(c) => assert_eq!(c.thread_ops.iter().sum::<u64>(), 1),
            other => panic!("unexpected cursor {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn invalid_profiles_are_rejected() {
        let mut p = BenchmarkProfile::synthetic();
        p.streaming_frac = 0.9;
        p.shared_frac = 0.9;
        let _ = TraceGenerator::new(&p, 1, 0);
    }
}
