//! Simulated time.
//!
//! All timing in the simulator is expressed in processor clock cycles via
//! the [`Cycle`] newtype. Using a newtype instead of a bare `u64` prevents
//! cycle counts from being confused with the many other integers in the
//! simulator (addresses, counts, indices).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, or a duration, measured in clock cycles.
///
/// ```
/// use nim_types::time::Cycle;
/// let t = Cycle(100) + 26;
/// assert_eq!(t, Cycle(126));
/// assert_eq!(t - Cycle(100), 26);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// The later of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = u64;

    /// Elapsed cycles between two points in time.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle interval");
        self.0 - rhs.0
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Cycle {
        Cycle(iter.sum())
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl From<Cycle> for u64 {
    fn from(value: Cycle) -> u64 {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let start = Cycle(10);
        let end = start + 32;
        assert_eq!(end - start, 32);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 5;
        t += 7;
        assert_eq!(t, Cycle(12));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle(3).saturating_sub(Cycle(10)), 0);
        assert_eq!(Cycle(10).saturating_sub(Cycle(3)), 7);
    }

    #[test]
    fn min_max_pick_correct_endpoints() {
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(3).min(Cycle(9)), Cycle(3));
    }

    #[test]
    fn sum_collects_durations() {
        let total: Cycle = [1u64, 2, 3].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    #[should_panic(expected = "negative cycle interval")]
    #[cfg(debug_assertions)]
    fn negative_interval_panics_in_debug() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn display_is_bare_number_debug_is_tagged() {
        assert_eq!(format!("{}", Cycle(42)), "42");
        assert_eq!(format!("{:?}", Cycle(42)), "cy42");
    }
}
