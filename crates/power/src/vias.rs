//! Inter-wafer via area (paper Table 2).
//!
//! In Face-to-Back wafer bonding the pillar's vias tunnel through the
//! active device layer, so pillar wiring area is *wasted device area* —
//! the reason pillar count must be kept low at coarse via pitches.
//! Table 2 reports the area of a 170-wire pillar (128-bit bus + 42
//! control) at four via pitches. The table's areas correspond to a
//! 25 × 25 via field: via *pads* do not scale with the vias themselves,
//! so each of the 170 wires effectively costs `625/170 ≈ 3.68` pitch²
//! of device area. That pad factor is the one calibrated constant here.

use crate::components::pillar_wires;

/// Effective pitch² cost per wire implied by Table 2 (a 25 × 25 via
/// field for 170 wires).
pub const PAD_FACTOR: f64 = 625.0 / 170.0;

/// The four via pitches of Table 2, in µm.
pub const TABLE2_PITCHES_UM: [f64; 4] = [10.0, 5.0, 1.0, 0.2];

/// Area in µm² occupied by a pillar of `wires` wires at `pitch_um`.
pub fn pillar_area_um2(wires: u32, pitch_um: f64) -> f64 {
    f64::from(wires) * PAD_FACTOR * pitch_um * pitch_um
}

/// One row of Table 2: the area of the default 128-bit, 4-layer pillar.
pub fn table2_row(pitch_um: f64) -> f64 {
    pillar_area_um2(pillar_wires(128, 4), pitch_um)
}

/// Pillar area as a fraction of the generic 5-port router area (the
/// paper's ~4% at 5 µm pitch argument).
pub fn pillar_area_vs_router(pitch_um: f64) -> f64 {
    let router_um2 = crate::components::GENERIC_ROUTER.area_mm2 * 1e6;
    table2_row(pitch_um) / router_um2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_the_paper() {
        assert_eq!(table2_row(10.0), 62_500.0);
        assert_eq!(table2_row(5.0), 15_625.0);
        assert_eq!(table2_row(1.0), 625.0);
        assert!((table2_row(0.2) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn five_micron_pillar_costs_about_four_percent_of_a_router() {
        let frac = pillar_area_vs_router(5.0);
        assert!(
            (0.03..=0.05).contains(&frac),
            "paper: ~4% overhead at 5 um, got {frac}"
        );
    }

    #[test]
    fn state_of_the_art_pitch_is_negligible() {
        assert!(pillar_area_vs_router(0.2) < 1e-4);
    }

    #[test]
    fn area_scales_quadratically_with_pitch() {
        let a1 = pillar_area_um2(170, 1.0);
        let a2 = pillar_area_um2(170, 2.0);
        assert!((a2 / a1 - 4.0).abs() < 1e-12);
    }
}
