//! Property-based tests: geometry round-trips and placement invariants
//! hold for every configuration the workspace can express.

use nim_topology::{ChipLayout, MeshTopology, PlacementPolicy, Topology};
use nim_types::{ClusterId, PillarPlacement, SystemConfig};
use proptest::prelude::*;

/// Configurations with power-of-two geometry where clusters divide layers.
fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (0u8..=3, 1u16..=8, 2u32..=6).prop_map(|(layer_log, pillars, bank_log)| {
        let mut cfg = SystemConfig::default();
        cfg.network.layers = 1 << layer_log;
        cfg.network.pillars = pillars;
        cfg.l2.banks_per_cluster = 1 << bank_log;
        cfg
    })
}

/// [`arb_config`] crossed with every pillar placement strategy.
fn arb_placed_config() -> impl Strategy<Value = SystemConfig> {
    (arb_config(), 0usize..3).prop_map(|(mut cfg, i)| {
        cfg.network.pillar_placement = [
            PillarPlacement::Spread,
            PillarPlacement::Corners,
            PillarPlacement::Diagonal,
        ][i];
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_index_round_trips_everywhere(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            prop_assert_eq!(layout.node_index(c), i);
        }
    }

    #[test]
    fn banks_and_nodes_are_a_bijection(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let mut seen = vec![false; layout.num_nodes()];
        for b in 0..cfg.l2.total_banks() {
            let c = layout.coord_of_bank(nim_types::BankId(b));
            prop_assert_eq!(layout.bank_at(c), nim_types::BankId(b));
            let idx = layout.node_index(c);
            prop_assert!(!seen[idx], "two banks on one node");
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clusters_partition_the_mesh(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let mut counts = vec![0usize; layout.num_clusters() as usize];
        for i in 0..layout.num_nodes() {
            let c = layout.coord_of_index(i);
            counts[layout.cluster_of(c).index()] += 1;
        }
        let per_cluster = cfg.l2.banks_per_cluster as usize;
        prop_assert!(counts.iter().all(|&n| n == per_cluster));
    }

    #[test]
    fn placements_never_collide(
        cfg in arb_config(),
        policy_idx in 0usize..5,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        let policy = [
            PlacementPolicy::MaximalOffset,
            PlacementPolicy::Algorithm1 { k: 1 },
            PlacementPolicy::Stacked,
            PlacementPolicy::Edges,
            PlacementPolicy::Interior2d,
        ][policy_idx];
        if let Ok(seats) = policy.place(&layout, cfg.num_cpus) {
            let set: std::collections::HashSet<_> =
                seats.iter().map(|s| s.coord).collect();
            prop_assert_eq!(set.len(), seats.len(), "seats distinct");
            let pillar_based = matches!(
                policy,
                PlacementPolicy::MaximalOffset
                    | PlacementPolicy::Algorithm1 { .. }
                    | PlacementPolicy::Stacked
            );
            for s in &seats {
                prop_assert!(layout.contains(s.coord), "seat on the mesh");
                if layout.layers() > 1 && pillar_based {
                    prop_assert!(s.pillar.is_some(), "3D seats carry a pillar");
                }
            }
        }
    }

    #[test]
    fn route_costs_are_a_symmetric_metric(
        cfg in arb_placed_config(),
        ia in 0usize..1 << 16,
        ib in 0usize..1 << 16,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let mesh = MeshTopology::from_config(&cfg).expect("valid config builds");
        let a = mesh.layout().coord_of_index(ia % mesh.num_nodes());
        let b = mesh.layout().coord_of_index(ib % mesh.num_nodes());
        // Both Topology impls — the precomputed table and the linear
        // scan — must agree, and the metric must be symmetric with a
        // zero diagonal (the latency-table fabric assumes both).
        prop_assert_eq!(mesh.route_cost(a, b), mesh.route_cost(b, a));
        prop_assert_eq!(mesh.route_cost(a, a), 0);
        prop_assert_eq!(
            Topology::route_cost(mesh.layout(), a, b),
            mesh.route_cost(a, b)
        );
    }

    #[test]
    fn route_costs_obey_the_triangle_inequality(
        cfg in arb_placed_config(),
        ia in 0usize..1 << 16,
        ib in 0usize..1 << 16,
        ic in 0usize..1 << 16,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let mesh = MeshTopology::from_config(&cfg).expect("valid config builds");
        let a = mesh.layout().coord_of_index(ia % mesh.num_nodes());
        let b = mesh.layout().coord_of_index(ib % mesh.num_nodes());
        let c = mesh.layout().coord_of_index(ic % mesh.num_nodes());
        // min-over-pillars is the shortest-path metric of the chip
        // graph, so no detour through b may ever be cheaper than the
        // direct route — for any placement.
        prop_assert!(
            mesh.route_cost(a, c) <= mesh.route_cost(a, b) + mesh.route_cost(b, c),
            "d({a},{c}) > d({a},{b}) + d({b},{c})"
        );
    }

    #[test]
    fn lateral_and_vertical_neighbours_are_symmetric(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let layout = ChipLayout::new(&cfg).expect("valid config builds");
        for a in 0..layout.num_clusters() {
            let a = ClusterId(a);
            for b in layout.lateral_neighbors(a) {
                prop_assert!(layout.lateral_neighbors(b).contains(&a));
            }
            for b in layout.vertical_neighbors(a) {
                prop_assert!(layout.vertical_neighbors(b).contains(&a));
            }
        }
    }
}
