//! Figure 17 — impact of the number of pillars (8/4/2) on CMP-DNUCA-3D:
//! fewer pillars (coarser via pitches) mean shared, contended vertical
//! links and CPUs crowded around them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig17_pillars;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::swim()];
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.bench_function("swim_8_4_2_pillars", |b| {
        b.iter(|| black_box(fig17_pillars(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    for row in fig17_pillars(&bench_set, scale).expect("runs complete") {
        eprintln!(
            "fig17: {:<6} {} pillars -> {:.2} cycles",
            row.benchmark, row.pillars, row.latency
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
