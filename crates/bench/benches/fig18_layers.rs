//! Figure 18 — impact of the number of device layers (2/4) on
//! CMP-SNUCA-3D: more layers shrink each layer's mesh and put more of the
//! L2 a single pillar hop away.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig18_layers;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::galgel()];
    let mut group = c.benchmark_group("fig18");
    group.sample_size(10);
    group.bench_function("galgel_2_vs_4_layers", |b| {
        b.iter(|| black_box(fig18_layers(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    for row in fig18_layers(&bench_set, scale).expect("runs complete") {
        eprintln!(
            "fig18: {:<7} {} layers -> {:.2} cycles",
            row.benchmark, row.layers, row.latency
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
