//! Whole-simulator snapshot/resume.
//!
//! A snapshot is the versioned, serializable state tree of a run in
//! flight: six tagged sections behind the global
//! [`nim_types::codec`] header, each carrying one layer of the
//! simulator through its [`Checkpoint`] seam.
//!
//! | tag    | contents                                                    |
//! |--------|-------------------------------------------------------------|
//! | `CFG ` | the build recipe: scheme, fabric, knobs, full config        |
//! | `OBS ` | observability: sampler rows, metrics registry, epoch arm    |
//! | `WKLD` | workload position: benchmark name + [`TraceCursor`]         |
//! | `PROG` | the run loop's carried bookkeeping ([`RunProgress`])        |
//! | `ENGN` | protocol engine: counters, L2, directory, cores, txn table  |
//! | `FABR` | simulation fabric: NoC, event heaps, timing models          |
//!
//! Snapshots are legal only at *epoch boundaries*: when sampling is on,
//! the clock must sit exactly on a cycle where a sample row was
//! recorded (pause with [`System::run_until`], which suppresses horizon
//! skipping once the stop count is reached and ticks per-cycle to the
//! next boundary). At such a cycle every in-flight structure is in the
//! same state the per-cycle loop would have produced, so resuming the
//! snapshot replays the remainder of the run bit-identically.
//!
//! Restores always run against a *freshly built* system: the `CFG `
//! section records the exact build recipe, [`SystemBuilder::resume`]
//! rebuilds the topology and geometry from it, and the remaining
//! sections restore only live state into that scaffold. This is what
//! makes snapshots shard-agnostic — the network serializes per-node
//! logical state, so a snapshot taken under one `NIM_SHARDS` resumes
//! bit-identically under any other.

use std::path::Path;

use nim_obs::{CategoryMask, LatencyHistogram, Metric, Obs, ObsConfig, SampleRow};
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{
    CpuId, L1Config, L2Config, LineAddr, NetworkConfig, PillarPlacement, SystemConfig,
};
use nim_workload::{BenchmarkProfile, GeneratorCursor, TraceCursor, TraceGenerator, TraceSource};

use crate::error::{RunError, SnapshotError};
use crate::fabric::FabricKind;
use crate::report::{Counters, RunReport};
use crate::scheme::Scheme;
use crate::system::{RunProgress, System};
use crate::SystemBuilder;

/// Section tags, all 4 bytes so the encoded layout stays self-evident
/// in a hex dump.
const SEC_CFG: &str = "CFG ";
const SEC_OBS: &str = "OBS ";
const SEC_WKLD: &str = "WKLD";
const SEC_PROG: &str = "PROG";
const SEC_ENGN: &str = "ENGN";
const SEC_FABR: &str = "FABR";

/// Per-section versions, bumped independently when a section's encoding
/// changes (the global header version gates wholesale format breaks).
const V_CFG: u16 = 1;
const V_OBS: u16 = 1;
const V_WKLD: u16 = 1;
const V_PROG: u16 = 1;
const V_ENGN: u16 = 1;
const V_FABR: u16 = 1;

impl System {
    /// Serializes the entire simulator mid-run into a snapshot.
    ///
    /// `source` is the trace source driving the run; its
    /// [`TraceSource::cursor`] is recorded so the resumed run draws the
    /// exact same reference stream suffix.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NoRunInProgress`] if no run has been begun, and
    /// [`SnapshotError::NotEpochBoundary`] if the clock does not sit on
    /// a legal snapshot cycle — pause with [`System::run_until`], which
    /// stops only at legal boundaries.
    pub fn snapshot(&self, source: &dyn TraceSource) -> Result<Vec<u8>, SnapshotError> {
        let progress = self
            .progress
            .as_ref()
            .ok_or(SnapshotError::NoRunInProgress)?;
        let now = self.fabric.net.now().0;
        if self.obs.sample_every() != 0 && self.obs.last_sample_cycle() != Some(now) {
            return Err(SnapshotError::NotEpochBoundary { cycle: now });
        }
        let mut w = ByteWriter::new();
        w.header();
        self.save_cfg(&mut w);
        self.save_obs(&mut w);
        save_wkld(&mut w, &progress.benchmark, &source.cursor());
        save_prog(&mut w, progress);
        self.save_engine(&mut w);
        let h = w.begin_section(SEC_FABR, V_FABR);
        self.fabric.save(&mut w);
        w.end_section(h);
        Ok(w.into_bytes())
    }

    /// [`System::snapshot`] straight to a file.
    ///
    /// # Errors
    ///
    /// Everything [`System::snapshot`] returns, plus
    /// [`SnapshotError::Io`] if the write fails.
    pub fn snapshot_to(
        &self,
        path: impl AsRef<Path>,
        source: &dyn TraceSource,
    ) -> Result<(), SnapshotError> {
        let bytes = self.snapshot(source)?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// The build recipe: everything `SystemBuilder` needs to reproduce
    /// this exact system before live state is restored into it.
    fn save_cfg(&self, w: &mut ByteWriter) {
        let h = w.begin_section(SEC_CFG, V_CFG);
        w.u8(index_of(&Scheme::ALL, &self.scheme));
        w.u8(index_of(&FabricKind::ALL, &self.knobs.fabric));
        w.bool(self.knobs.vicinity_stop);
        w.bool(self.knobs.replication);
        w.bool(self.knobs.edge_memory);
        w.bool(self.skip);
        w.bool(self.prewarm);
        w.u64(self.seed);
        w.u64(self.warmup);
        w.u64(self.sample);
        let cfg = &self.cfg;
        w.u32(cfg.num_cpus);
        w.u32(cfg.issue_width);
        w.u32(cfg.l1.bytes);
        w.u32(cfg.l1.ways);
        w.u32(cfg.l1.line_bytes);
        w.u32(cfg.l1.latency);
        w.bool(cfg.l1.write_through);
        w.u32(cfg.l2.clusters);
        w.u32(cfg.l2.banks_per_cluster);
        w.u32(cfg.l2.bank_bytes);
        w.u32(cfg.l2.ways);
        w.u32(cfg.l2.line_bytes);
        w.u32(cfg.l2.bank_latency);
        w.u32(cfg.l2.tag_latency);
        w.u32(cfg.memory_latency);
        w.u16(cfg.memory_controllers);
        w.u32(cfg.memory_interval);
        let net = &cfg.network;
        w.u8(net.layers);
        w.u16(net.pillars);
        w.u8(index_of(&PillarPlacement::ALL, &net.pillar_placement));
        w.u32(net.flit_bits);
        w.u32(net.bus_width_bits);
        w.u32(net.data_packet_flits);
        w.u32(net.control_packet_flits);
        w.u32(net.router_latency);
        w.u32(net.vcs_per_port);
        w.u32(net.vc_depth_flits);
        w.end_section(h);
    }

    /// Observability state: the handle's configuration, the armed epoch
    /// boundary, every sample row, and the metrics registry (which
    /// carries the cumulative hit/miss matrices). The bounded trace
    /// ring is deliberately *not* serialized: a resumed run's ring
    /// holds exactly the trace suffix from the snapshot cycle onward,
    /// comparable via [`Obs::trace_digest_from`].
    fn save_obs(&self, w: &mut ByteWriter) {
        let h = w.begin_section(SEC_OBS, V_OBS);
        match self.obs.config() {
            None => w.u8(0),
            Some(cfg) => {
                w.u8(1);
                w.bool(cfg.trace);
                w.usize(cfg.trace_capacity);
                w.u16(cfg.mask.bits());
                w.u64(cfg.sample_every);
                w.u64(cfg.txn_sample);
                w.u64(self.obs.next_sample_at().unwrap_or(0));
                let (columns, rows) = self.obs.sampler_state().unwrap_or_default();
                w.u32(columns.len() as u32);
                for c in &columns {
                    w.str(c);
                }
                w.u32(rows.len() as u32);
                for row in &rows {
                    w.u64(row.cycle);
                    w.f64(row.wall_secs);
                    w.u32(row.values.len() as u32);
                    for v in &row.values {
                        w.f64(*v);
                    }
                }
                let metrics = self.obs.metrics_state().unwrap_or_default();
                w.u32(metrics.len() as u32);
                for (name, metric) in &metrics {
                    w.str(name);
                    match metric {
                        Metric::Counter(v) => {
                            w.u8(0);
                            w.u64(*v);
                        }
                        Metric::Gauge(v) => {
                            w.u8(1);
                            w.f64(*v);
                        }
                        Metric::Histogram(hist) => {
                            w.u8(2);
                            for b in hist.buckets() {
                                w.u64(*b);
                            }
                        }
                    }
                }
            }
        }
        w.end_section(h);
    }

    /// Engine live state. Geometry (layout, seats, plans, policy) is
    /// rebuilt from `CFG `; only what the run mutated is carried.
    fn save_engine(&self, w: &mut ByteWriter) {
        let h = w.begin_section(SEC_ENGN, V_ENGN);
        let e = &self.engine;
        e.counters.save(w);
        e.l2.save(w);
        e.dir.save(w);
        w.u32(e.cores.len() as u32);
        for core in &e.cores {
            core.save(w);
        }
        e.txns.save(w);
        let mut last: Vec<(u64, u16)> = e
            .last_accessor
            .iter()
            .map(|(line, cpu)| (line.0, cpu.0))
            .collect();
        last.sort_unstable();
        w.u32(last.len() as u32);
        for (line, cpu) in &last {
            w.u64(*line);
            w.u16(*cpu);
        }
        w.end_section(h);
    }
}

fn save_wkld(w: &mut ByteWriter, benchmark: &str, cursor: &TraceCursor) {
    let h = w.begin_section(SEC_WKLD, V_WKLD);
    w.str(benchmark);
    match cursor {
        TraceCursor::None => w.u8(0),
        TraceCursor::Generator(c) => {
            w.u8(1);
            w.u64(c.rotation);
            w.u64(c.ops_until_rotate);
            w.u64_slice(&c.thread_ops);
        }
        TraceCursor::Replay(consumed) => {
            w.u8(2);
            w.u64_slice(consumed);
        }
    }
    w.end_section(h);
}

fn save_prog(w: &mut ByteWriter, p: &RunProgress) {
    let h = w.begin_section(SEC_PROG, V_PROG);
    w.bool(p.warmed);
    match &p.window_start {
        None => w.u8(0),
        Some((counters, cycle, instr)) => {
            w.u8(1);
            counters.save(w);
            w.u64(*cycle);
            w.u64(*instr);
        }
    }
    w.u64(p.last_progress);
    w.u64(p.last_count);
    w.end_section(h);
}

/// The position of `v` in `all` — the stable codec tag for enums that
/// expose an `ALL` array instead of explicit discriminants.
fn index_of<T: PartialEq>(all: &[T], v: &T) -> u8 {
    all.iter().position(|x| x == v).expect("variant in ALL") as u8
}

/// Reads `v` back from its [`index_of`] tag.
fn from_index<T: Copy>(all: &[T], idx: u8, what: &'static str) -> Result<T, CodecError> {
    all.get(idx as usize)
        .copied()
        .ok_or(CodecError::Corrupt(what))
}

/// A run reconstructed mid-flight from a snapshot: the rebuilt+restored
/// [`System`] plus the workload position needed to keep drawing the
/// same reference stream.
///
/// Runs driven by the synthetic [`TraceGenerator`] carry their
/// reconstructed generator and can be driven directly with
/// [`ResumedRun::finish`] / [`ResumedRun::run_until`]. Runs driven by a
/// replay trace carry only the per-CPU consumed counts
/// ([`ResumedRun::replay_cursor`]) — reload the trace, fast-forward it,
/// and drive with [`ResumedRun::finish_with`].
#[derive(Debug)]
pub struct ResumedRun {
    system: System,
    generator: Option<TraceGenerator>,
    replay: Option<Vec<u64>>,
    benchmark: String,
}

impl ResumedRun {
    /// The benchmark name the snapshot recorded.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The restored system (snapshot-legal and mid-run).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Per-CPU consumed counts for a replay-trace run (`None` for
    /// generator-driven runs) — feed to
    /// [`ReplayTrace::fast_forward`](nim_workload::ReplayTrace::fast_forward).
    pub fn replay_cursor(&self) -> Option<&[u64]> {
        self.replay.as_deref()
    }

    /// Drives the resumed run to completion with its own generator.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] exactly like [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was not generator-driven (use
    /// [`ResumedRun::finish_with`]).
    pub fn finish(&mut self) -> Result<RunReport, RunError> {
        let gen = self
            .generator
            .as_mut()
            .expect("resumed run has no generator; drive it with finish_with");
        match self.system.advance(gen, None) {
            Ok(_) => Ok(self.system.finish_report()),
            Err(e) => {
                self.system.progress = None;
                Err(e)
            }
        }
    }

    /// Drives the resumed run with its own generator until at least
    /// `stop_after` transactions have completed and the clock sits on
    /// the next epoch boundary — see [`System::run_until`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] exactly like [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was not generator-driven.
    pub fn run_until(&mut self, stop_after: u64) -> Result<Option<RunReport>, RunError> {
        let gen = self
            .generator
            .as_mut()
            .expect("resumed run has no generator; drive it with finish_with");
        self.system.run_until(gen, stop_after)
    }

    /// Re-snapshots the resumed run (legal whenever the underlying
    /// [`System::snapshot`] is).
    ///
    /// # Errors
    ///
    /// Everything [`System::snapshot`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was not generator-driven.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let gen = self
            .generator
            .as_ref()
            .expect("resumed run has no generator; snapshot via System::snapshot");
        self.system.snapshot(gen)
    }

    /// Drives the resumed run to completion with a caller-supplied
    /// source (the replay-trace path: reload, fast-forward to
    /// [`ResumedRun::replay_cursor`], then call this).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] exactly like [`System::run`].
    pub fn finish_with(&mut self, source: &mut dyn TraceSource) -> Result<RunReport, RunError> {
        match self.system.advance(source, None) {
            Ok(_) => Ok(self.system.finish_report()),
            Err(e) => {
                self.system.progress = None;
                Err(e)
            }
        }
    }
}

impl SystemBuilder {
    /// Reconstructs a run mid-flight from a snapshot file.
    ///
    /// `shards` overrides the shard count of the rebuilt network
    /// (`None` keeps the `NIM_SHARDS` default) — snapshots serialize
    /// per-node logical state, so any shard count resumes
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, plus
    /// everything [`SystemBuilder::resume_from`] returns.
    pub fn resume(
        path: impl AsRef<Path>,
        shards: Option<usize>,
    ) -> Result<ResumedRun, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::resume_from(&bytes, shards)
    }

    /// Reconstructs a run mid-flight from snapshot bytes: rebuilds the
    /// system from the recorded recipe, restores every layer's live
    /// state, and re-positions the workload source.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Codec`] for truncated/corrupt/version-skewed
    /// bytes, [`SnapshotError::Build`] if the recorded configuration no
    /// longer builds, [`SnapshotError::UnknownBenchmark`] if this
    /// binary does not know the recorded benchmark.
    pub fn resume_from(bytes: &[u8], shards: Option<usize>) -> Result<ResumedRun, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        r.header()?;
        let recipe = read_cfg(&mut r)?;
        let obs_state = read_obs(&mut r)?;
        let (benchmark, cursor) = read_wkld(&mut r)?;
        let progress = read_prog(&mut r, benchmark.clone())?;

        let profile = profile_by_name(&benchmark)?;
        let obs = match &obs_state {
            None => Obs::disabled(),
            Some(s) => Obs::new(s.config.clone()),
        };
        let mut builder = SystemBuilder::new(recipe.scheme)
            .config(recipe.cfg)
            .seed(recipe.seed)
            .warmup_transactions(recipe.warmup)
            .sampled_transactions(recipe.sample)
            .prewarm(recipe.prewarm)
            .vicinity_stop(recipe.vicinity_stop)
            .replication(recipe.replication)
            .edge_memory_controllers(recipe.edge_memory)
            .horizon_skipping(recipe.skip)
            .fabric(recipe.fabric)
            .observability(obs.clone());
        if let Some(n) = shards {
            builder = builder.shards(n);
        }
        let mut system = builder.build()?;

        read_engine(&mut r, &mut system)?;
        let mut sec = r.section(SEC_FABR, V_FABR)?;
        system.fabric.restore(&mut sec.reader)?;
        sec.finish()?;
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("snapshot has trailing bytes").into());
        }

        if let Some(s) = obs_state {
            obs.restore_sampler_state(s.columns, s.rows, s.next_sample);
            obs.restore_metrics_state(s.metrics);
        }
        obs.set_now(system.fabric.net.now().0);
        system.progress = Some(progress);

        let (generator, replay) = match cursor {
            TraceCursor::None => (None, None),
            TraceCursor::Generator(c) => {
                let gen = TraceGenerator::at_cursor(&profile, recipe.cfg.num_cpus, recipe.seed, &c)
                    .ok_or(CodecError::Corrupt("generator cursor shape mismatch"))?;
                (Some(gen), None)
            }
            TraceCursor::Replay(consumed) => (None, Some(consumed)),
        };
        Ok(ResumedRun {
            system,
            generator,
            replay,
            benchmark,
        })
    }
}

/// Looks up `name` among the paper's Table 5 profiles plus the
/// synthetic test profile.
fn profile_by_name(name: &str) -> Result<BenchmarkProfile, SnapshotError> {
    if name == "synthetic" {
        return Ok(BenchmarkProfile::synthetic());
    }
    BenchmarkProfile::by_name(name).ok_or_else(|| SnapshotError::UnknownBenchmark(name.to_string()))
}

/// The decoded `CFG ` section.
struct Recipe {
    scheme: Scheme,
    fabric: FabricKind,
    vicinity_stop: bool,
    replication: bool,
    edge_memory: bool,
    skip: bool,
    prewarm: bool,
    seed: u64,
    warmup: u64,
    sample: u64,
    cfg: SystemConfig,
}

fn read_cfg(r: &mut ByteReader<'_>) -> Result<Recipe, CodecError> {
    let mut sec = r.section(SEC_CFG, V_CFG)?;
    let r = &mut sec.reader;
    let scheme = from_index(&Scheme::ALL, r.u8()?, "bad scheme tag")?;
    let fabric = from_index(&FabricKind::ALL, r.u8()?, "bad fabric tag")?;
    let vicinity_stop = r.bool()?;
    let replication = r.bool()?;
    let edge_memory = r.bool()?;
    let skip = r.bool()?;
    let prewarm = r.bool()?;
    let seed = r.u64()?;
    let warmup = r.u64()?;
    let sample = r.u64()?;
    let cfg = SystemConfig {
        num_cpus: r.u32()?,
        issue_width: r.u32()?,
        l1: L1Config {
            bytes: r.u32()?,
            ways: r.u32()?,
            line_bytes: r.u32()?,
            latency: r.u32()?,
            write_through: r.bool()?,
        },
        l2: L2Config {
            clusters: r.u32()?,
            banks_per_cluster: r.u32()?,
            bank_bytes: r.u32()?,
            ways: r.u32()?,
            line_bytes: r.u32()?,
            bank_latency: r.u32()?,
            tag_latency: r.u32()?,
        },
        memory_latency: r.u32()?,
        memory_controllers: r.u16()?,
        memory_interval: r.u32()?,
        network: NetworkConfig {
            layers: r.u8()?,
            pillars: r.u16()?,
            pillar_placement: from_index(&PillarPlacement::ALL, r.u8()?, "bad placement tag")?,
            flit_bits: r.u32()?,
            bus_width_bits: r.u32()?,
            data_packet_flits: r.u32()?,
            control_packet_flits: r.u32()?,
            router_latency: r.u32()?,
            vcs_per_port: r.u32()?,
            vc_depth_flits: r.u32()?,
        },
    };
    sec.finish()?;
    Ok(Recipe {
        scheme,
        fabric,
        vicinity_stop,
        replication,
        edge_memory,
        skip,
        prewarm,
        seed,
        warmup,
        sample,
        cfg,
    })
}

/// The decoded `OBS ` section (for an enabled handle).
struct ObsState {
    config: ObsConfig,
    next_sample: u64,
    columns: Vec<String>,
    rows: Vec<SampleRow>,
    metrics: Vec<(String, Metric)>,
}

fn read_obs(r: &mut ByteReader<'_>) -> Result<Option<ObsState>, CodecError> {
    let mut sec = r.section(SEC_OBS, V_OBS)?;
    let r = &mut sec.reader;
    let state = match r.u8()? {
        0 => None,
        1 => {
            let config = ObsConfig {
                trace: r.bool()?,
                trace_capacity: r.usize()?,
                mask: CategoryMask::from_bits(r.u16()?),
                sample_every: r.u64()?,
                txn_sample: r.u64()?,
            };
            let next_sample = r.u64()?;
            let mut columns = Vec::new();
            for _ in 0..r.u32()? {
                columns.push(r.str()?);
            }
            let mut rows = Vec::new();
            for _ in 0..r.u32()? {
                let cycle = r.u64()?;
                let wall_secs = r.f64()?;
                let mut values = Vec::new();
                for _ in 0..r.u32()? {
                    values.push(r.f64()?);
                }
                rows.push(SampleRow {
                    cycle,
                    wall_secs,
                    values,
                });
            }
            let mut metrics = Vec::new();
            for _ in 0..r.u32()? {
                let name = r.str()?;
                let metric = match r.u8()? {
                    0 => Metric::Counter(r.u64()?),
                    1 => Metric::Gauge(r.f64()?),
                    2 => {
                        let mut buckets = [0u64; 16];
                        for b in &mut buckets {
                            *b = r.u64()?;
                        }
                        Metric::Histogram(LatencyHistogram::from_buckets(buckets))
                    }
                    _ => return Err(CodecError::Corrupt("bad metric tag")),
                };
                metrics.push((name, metric));
            }
            Some(ObsState {
                config,
                next_sample,
                columns,
                rows,
                metrics,
            })
        }
        _ => return Err(CodecError::Corrupt("bad obs tag")),
    };
    sec.finish()?;
    Ok(state)
}

fn read_wkld(r: &mut ByteReader<'_>) -> Result<(String, TraceCursor), CodecError> {
    let mut sec = r.section(SEC_WKLD, V_WKLD)?;
    let r = &mut sec.reader;
    let benchmark = r.str()?;
    let cursor = match r.u8()? {
        0 => TraceCursor::None,
        1 => TraceCursor::Generator(GeneratorCursor {
            rotation: r.u64()?,
            ops_until_rotate: r.u64()?,
            thread_ops: r.u64_vec()?,
        }),
        2 => TraceCursor::Replay(r.u64_vec()?),
        _ => return Err(CodecError::Corrupt("bad cursor tag")),
    };
    sec.finish()?;
    Ok((benchmark, cursor))
}

fn read_prog(r: &mut ByteReader<'_>, benchmark: String) -> Result<RunProgress, CodecError> {
    let mut sec = r.section(SEC_PROG, V_PROG)?;
    let r = &mut sec.reader;
    let warmed = r.bool()?;
    let window_start = match r.u8()? {
        0 => None,
        1 => {
            let mut counters = Counters::default();
            counters.restore(r)?;
            Some((counters, r.u64()?, r.u64()?))
        }
        _ => return Err(CodecError::Corrupt("bad window tag")),
    };
    let last_progress = r.u64()?;
    let last_count = r.u64()?;
    sec.finish()?;
    Ok(RunProgress {
        benchmark,
        warmed,
        window_start,
        last_progress,
        last_count,
    })
}

fn read_engine(r: &mut ByteReader<'_>, system: &mut System) -> Result<(), CodecError> {
    let mut sec = r.section(SEC_ENGN, V_ENGN)?;
    let r = &mut sec.reader;
    let e = &mut system.engine;
    e.counters.restore(r)?;
    e.l2.restore(r)?;
    e.dir.restore(r)?;
    let cores = r.u32()? as usize;
    if cores != e.cores.len() {
        return Err(CodecError::Corrupt("core count mismatch"));
    }
    for core in &mut e.cores {
        core.restore(r)?;
    }
    e.txns.restore(r)?;
    e.last_accessor.clear();
    for _ in 0..r.u32()? {
        let line = LineAddr(r.u64()?);
        let cpu = CpuId(r.u16()?);
        e.last_accessor.insert(line, cpu);
    }
    sec.finish()
}
