//! End-to-end tests of the analytic fabrics ([`FabricKind::LatencyTable`]
//! and [`FabricKind::Ideal`]): the protocol engine runs unchanged on top
//! of a latency model instead of the flit-level NoC, so whole runs must
//! complete, stay deterministic, and order sensibly against each other
//! (contention can only add cycles, never remove them).
//!
//! The flit-exact validation of the underlying zero-load model lives in
//! `nim-noc`'s `fabric_equivalence` test; this file covers the system
//! integration: delivery scheduling, stall detection, and horizon
//! skipping over modeled deliveries.

use nim_core::{FabricKind, RunReport, Scheme, SystemBuilder};
use nim_workload::BenchmarkProfile;

fn run(kind: FabricKind, skip: bool) -> RunReport {
    let mut sys = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(42)
        .warmup_transactions(50)
        .sampled_transactions(400)
        .fabric(kind)
        .horizon_skipping(skip)
        .build()
        .expect("system builds");
    sys.run(&BenchmarkProfile::art()).expect("run completes")
}

#[test]
fn modeled_fabrics_complete_whole_runs() {
    for kind in [FabricKind::LatencyTable, FabricKind::Ideal] {
        let report = run(kind, true);
        assert_eq!(report.counters.l2_transactions, 400, "{kind}");
        assert!(report.cycles > 0, "{kind}");
        // Traffic bypasses the flit-level network entirely, so its
        // statistics stay zero — the analytic model is the only timing
        // source.
        assert_eq!(report.network.packets_delivered, 0, "{kind}");
        assert_eq!(report.network.flit_hops, 0, "{kind}");
    }
}

#[test]
fn ideal_fabric_is_no_slower_than_the_latency_table() {
    let table = run(FabricKind::LatencyTable, true);
    let ideal = run(FabricKind::Ideal, true);
    // The latency-table fabric only ever *adds* pillar serialisation
    // delay on top of the shared zero-load costs.
    assert!(
        ideal.cycles <= table.cycles,
        "ideal {} cycles vs latency-table {}",
        ideal.cycles,
        table.cycles
    );
}

#[test]
fn sim_fabric_still_simulates_flits() {
    let report = run(FabricKind::Sim, true);
    assert!(report.network.packets_delivered > 0);
    assert!(report.network.flit_hops > 0);
}

#[test]
fn modeled_runs_are_deterministic() {
    for kind in [FabricKind::LatencyTable, FabricKind::Ideal] {
        let a = run(kind, true).fingerprint();
        let b = run(kind, true).fingerprint();
        assert_eq!(a, b, "{kind} not deterministic");
    }
}

#[test]
fn horizon_skipping_is_invisible_under_modeled_fabrics() {
    // The fast-forward and shard-window bounds must treat a pending
    // modeled delivery exactly like a network event: skipping may elide
    // only cycles in which nothing observable happens.
    for kind in [FabricKind::LatencyTable, FabricKind::Ideal] {
        let skipped = run(kind, true);
        let naive = run(kind, false);
        assert_eq!(
            skipped.fingerprint(),
            naive.fingerprint(),
            "{kind} diverges under horizon skipping"
        );
        assert_eq!(skipped.cycles, naive.cycles, "{kind}");
    }
}

#[test]
fn fabric_kind_names_round_trip() {
    for kind in FabricKind::ALL {
        assert_eq!(FabricKind::parse(kind.name()), Ok(kind));
    }
    assert_eq!(FabricKind::parse("warp-drive"), Err("warp-drive"));
}
