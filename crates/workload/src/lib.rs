//! SPEC OMP-like synthetic multiprocessor reference streams.
//!
//! The paper evaluates on nine SPEC OMP benchmarks under Simics. This
//! crate substitutes statistically calibrated synthetic workloads: each
//! benchmark becomes a [`BenchmarkProfile`] (memory density, store share,
//! streaming/sharing mix, working-set sizes — Table 5 values carried for
//! reference) and a [`TraceGenerator`] that turns a profile into
//! deterministic per-CPU reference streams for the core model to execute.
//!
//! # Examples
//!
//! ```
//! use nim_workload::{BenchmarkProfile, TraceGenerator};
//! use nim_types::CpuId;
//!
//! let mut gen = TraceGenerator::new(&BenchmarkProfile::swim(), 8, 42);
//! let op = gen.next_op(CpuId(0));
//! assert!(op.addr.0 > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod profile;
mod replay;
mod trace_io;

pub use generator::{
    cpu_regions, shared_region, CpuRegions, GeneratorCursor, Region, TraceCursor, TraceGenerator,
    TraceSource, ROTATION_PERIOD_OPS,
};
pub use profile::BenchmarkProfile;
pub use replay::ReplayTrace;
pub use trace_io::{TraceReadError, TraceReader, TraceWriter, TRACE_HEADER};
