//! Engine transition tests against the [`TestFabric`] double.
//!
//! Each test drives the protocol engine through one transaction
//! lifecycle — the packets land in the double's queues and are pumped
//! back by hand, so every transition below runs without a network (or a
//! clock): read hits found in step 1, step 2, and over a vertical
//! pillar broadcast; read misses served flat and through edge memory
//! controllers; the write-through store path; L2 evictions; and the
//! migration and replication triggers.

use super::*;

use nim_cpu::CoreAction;
use nim_noc::SendRequest;
use nim_types::{Address, PacketId, TraceOp};

use crate::builder::SystemBuilder;
use crate::fabric::TestFabric;
use crate::scheme::Scheme;

/// Builds the engine exactly as the real builder wires it, paired with
/// a recording fabric sized to the same chip.
fn harness(
    scheme: Scheme,
    configure: impl FnOnce(SystemBuilder) -> SystemBuilder,
) -> (Engine, TestFabric) {
    let sys = configure(SystemBuilder::new(scheme))
        .build()
        .expect("system builds");
    let fabric = TestFabric::new(
        sys.engine.layout.num_clusters() as usize,
        sys.engine.layout.num_nodes(),
        sys.cfg.memory_controllers as usize,
    );
    (sys.engine, fabric)
}

/// "Delivers" a recorded send: same token, same endpoints, no network.
fn deliver(req: &SendRequest, at: u64) -> Delivered {
    Delivered {
        packet: PacketId(0),
        src: req.src,
        dst: req.dst,
        class: req.class,
        token: req.token,
        injected: Cycle(at),
        delivered: Cycle(at),
        hops: 0,
        bus_wait: 0,
    }
}

/// Pumps scheduled events and recorded sends until the system
/// quiesces; returns every decoded token that crossed the fabric, in
/// delivery order.
fn pump(eng: &mut Engine, f: &mut TestFabric) -> Vec<Token> {
    let mut log = Vec::new();
    let mut clock = 0;
    for _ in 0..100_000 {
        if let Some((due, ev)) = f.pop_event() {
            clock = clock.max(due);
            eng.handle_event(f, ev, Cycle(clock));
            continue;
        }
        let sent = f.take_sent();
        if sent.is_empty() {
            return log;
        }
        clock += 1;
        for req in sent {
            log.push(Token::decode(req.token));
            eng.handle_delivered(f, deliver(&req, clock), Cycle(clock));
        }
    }
    panic!("engine did not quiesce");
}

/// Issues one memory op through the requesting core — so its L1 and
/// stall state match the real pipeline — and pumps the resulting L2
/// transaction to completion.
fn issue(
    eng: &mut Engine,
    f: &mut TestFabric,
    cpu: CpuId,
    kind: AccessKind,
    addr: Address,
) -> Vec<Token> {
    let mut op = Some(TraceOp { gap: 0, kind, addr });
    let req = match eng.cores[cpu.index()].tick(&mut || op.take()) {
        CoreAction::Request(req) => req,
        other => panic!("core issued no L2 request: {other:?}"),
    };
    eng.handle_request(f, req, Cycle(0));
    pump(eng, f)
}

fn read(eng: &mut Engine, f: &mut TestFabric, cpu: CpuId, addr: Address) -> Vec<Token> {
    issue(eng, f, cpu, AccessKind::Read, addr)
}

const ADDR: Address = Address(0x4240);

/// Read hits, as a table over where the line sits relative to the
/// requester's search plan: its own cluster (step 1, local tag array),
/// a same-step cluster on a remote layer (step 1, via the pillar
/// broadcast), and a step-2 cluster. CMP-SNUCA-3D keeps every placement
/// stable, so the serving location is exactly where the test put it.
#[test]
fn read_hits_across_the_search_plan() {
    enum Spot {
        Local,
        RemoteLayerStep1,
        Step2,
    }
    let table = [
        (Spot::Local, 1u64, 0u64),
        (Spot::RemoteLayerStep1, 1, 0),
        (Spot::Step2, 0, 1),
    ];
    for (spot, want_step1, want_step2) in table {
        let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
        let cpu = CpuId::from_index(0);
        let seat = eng.seats[0];
        let plan = &eng.plans[0];
        let cluster = match spot {
            Spot::Local => plan.local,
            Spot::RemoteLayerStep1 => *plan
                .step1
                .iter()
                .find(|cl| eng.layout.cluster_layer(**cl) != seat.coord.layer)
                .expect("3D step 1 spans layers"),
            Spot::Step2 => plan.step2[0],
        };
        let line = ADDR.line(eng.line_bytes);
        eng.l2.insert_at(line, cluster);
        let log = read(&mut eng, &mut f, cpu, ADDR);
        assert_eq!(eng.counters.l2_transactions, 1);
        assert_eq!(eng.counters.l2_hits, 1);
        assert_eq!(eng.counters.l2_misses, 0);
        assert_eq!(eng.counters.step1_hits, want_step1);
        assert_eq!(eng.counters.step2_hits, want_step2);
        assert!(eng.txns.is_empty(), "transaction completed");
        assert!(
            log.iter().any(|t| matches!(t, Token::DataToCpu { .. })),
            "data returned to the CPU"
        );
        if matches!(spot, Spot::RemoteLayerStep1) {
            assert!(
                log.iter()
                    .any(|t| matches!(t, Token::VerticalProbe { step: 1, .. })),
                "remote layers are probed via the pillar broadcast"
            );
        }
    }
}

#[test]
fn read_miss_fetches_from_flat_memory() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    assert_eq!(eng.l2.locate(line), None);
    let log = read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.l2_misses, 1);
    assert_eq!(eng.counters.l2_hits, 0);
    // The flat model (Table 4) never puts memory traffic on the fabric.
    assert!(
        !log.iter().any(|t| matches!(t, Token::MemRequest { .. })),
        "flat memory is a timed event, not a packet"
    );
    assert_eq!(eng.l2.locate(line), Some(eng.l2.home_cluster(line)));
    assert!(eng.txns.is_empty());
}

#[test]
fn read_miss_routes_through_edge_memory_controllers() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b.edge_memory_controllers(true));
    let line = ADDR.line(eng.line_bytes);
    let log = read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.l2_misses, 1);
    assert!(
        log.iter().any(|t| matches!(t, Token::MemRequest { .. })),
        "the miss travels to a memory controller"
    );
    assert!(
        log.iter().any(|t| matches!(t, Token::MemFill { .. })),
        "the fill travels back to the home bank"
    );
    assert_eq!(eng.l2.locate(line), Some(eng.l2.home_cluster(line)));
}

#[test]
fn write_hit_round_trips_data_and_ack() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let cpu = CpuId::from_index(0);
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].local);
    let log = issue(&mut eng, &mut f, cpu, AccessKind::Write, ADDR);
    assert_eq!(eng.counters.l2_hits, 1);
    assert!(
        log.iter().any(|t| matches!(t, Token::WriteData { .. })),
        "store data shipped to the bank"
    );
    assert!(
        log.iter().any(|t| matches!(t, Token::WriteAck { .. })),
        "bank acknowledged the store"
    );
    assert!(eng.txns.is_empty());
}

#[test]
fn write_invalidates_other_sharers() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let writer = CpuId::from_index(0);
    let reader = CpuId::from_index(1);
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].local);
    eng.dir.access(reader, line, DirAccess::Read);
    let log = issue(&mut eng, &mut f, writer, AccessKind::Write, ADDR);
    assert_eq!(eng.counters.invalidations, 1, "the reader's L1 copy dies");
    assert!(log.iter().any(|t| matches!(t, Token::Invalidate { .. })));
}

#[test]
fn l2_eviction_invalidates_every_l1_sharer() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    // Two L1s hold the line; the L2 no longer does (capacity victim).
    eng.dir.access(CpuId::from_index(0), line, DirAccess::Read);
    eng.dir.access(CpuId::from_index(1), line, DirAccess::Read);
    let from = eng.layout.cluster_center(eng.l2.home_cluster(line));
    eng.handle_l2_eviction(&mut f, line, from);
    assert_eq!(eng.counters.l2_evictions, 1);
    assert_eq!(eng.counters.invalidations, 2);
    let sent = f.take_sent();
    assert_eq!(sent.len(), 2);
    for req in &sent {
        assert!(matches!(
            Token::decode(req.token),
            Token::Invalidate { line: l } if l == line
        ));
    }
}

#[test]
fn remote_read_triggers_one_migration_step() {
    let (mut eng, mut f) = harness(Scheme::CmpDnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    // Outside the requester's step-1 vicinity, so vicinity-stop cannot
    // suppress the move.
    let far = eng.plans[0].step2[0];
    eng.l2.insert_at(line, far);
    let log = read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.l2_hits, 1);
    assert_eq!(eng.counters.migrations, 1, "one gradual step committed");
    assert!(log.iter().any(|t| matches!(t, Token::MigrationMove { .. })));
    let now_at = eng.l2.locate(line).expect("line still resident");
    assert_ne!(now_at, far, "the line moved toward the accessor");
}

#[test]
fn static_nuca_never_migrates() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    let far = eng.plans[0].step2[0];
    eng.l2.insert_at(line, far);
    let log = read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.migrations, 0);
    assert!(!log.iter().any(|t| matches!(t, Token::MigrationMove { .. })));
    assert_eq!(eng.l2.locate(line), Some(far), "the placement is static");
}

/// The attribution invariant, per lifecycle path: the five phase
/// buckets of every completed transaction sum exactly to its
/// end-to-end latency (`finish_counters` debug-asserts the per-txn
/// equality; this checks the aggregated counters and that each path
/// fills the buckets it should).
#[test]
fn phase_buckets_sum_to_end_to_end_latency() {
    let check = |eng: &Engine, path: &str| {
        let total: u64 = eng.counters.phase_cycles().iter().sum();
        assert_eq!(
            total,
            eng.counters.hit_latency_sum + eng.counters.miss_latency_sum,
            "{path}: buckets must decompose the latency sums"
        );
        assert!(total > 0, "{path}: transactions take time");
    };

    // Local hit: network + tag/bank service, never memory.
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].local);
    read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    check(&eng, "hit");
    let [noc, _, _, service, mem] = eng.counters.phase_cycles();
    assert!(noc > 0 && service > 0, "a hit pays network and L2 service");
    assert_eq!(mem, 0, "a hit never waits on memory");

    // Flat miss: the fetch is a timed event, so its cycles are memory
    // wait by definition.
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    check(&eng, "flat miss");
    assert!(
        eng.counters.phase_cycles()[Phase::MemWait as usize] > 0,
        "a miss waits on the DRAM fetch"
    );

    // Edge-controller miss: adds the memory-side network legs, which
    // also land in the memory-wait bucket.
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b.edge_memory_controllers(true));
    read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    check(&eng, "edge-mc miss");

    // Migration path: the hit completes while the line moves behind it.
    let (mut eng, mut f) = harness(Scheme::CmpDnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].step2[0]);
    read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.migrations, 1);
    check(&eng, "migration");

    // Replication path: the replica fill rides the fabric after the
    // hit; the requester's own buckets still telescope.
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b.replication(true));
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].step2[0]);
    eng.dir.access(CpuId::from_index(1), line, DirAccess::Read);
    read(&mut eng, &mut f, CpuId::from_index(0), ADDR);
    assert_eq!(eng.counters.replicas_created, 1);
    check(&eng, "replication");

    // Write-through store: data + ack round trip.
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    eng.l2.insert_at(line, eng.plans[0].local);
    issue(
        &mut eng,
        &mut f,
        CpuId::from_index(0),
        AccessKind::Write,
        ADDR,
    );
    check(&eng, "write");
}

/// A search retry (the migration race of §4.2.3) keeps the timeline
/// telescoped: the line "migrates" away mid-search, both steps miss,
/// the retry finds it, and the buckets still sum to the latency.
#[test]
fn phase_buckets_survive_a_search_retry() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b);
    let line = ADDR.line(eng.line_bytes);
    let local = eng.plans[0].local;
    eng.l2.insert_at(line, eng.plans[0].step2[0]);
    let mut op = Some(TraceOp {
        gap: 0,
        kind: AccessKind::Read,
        addr: ADDR,
    });
    let req = match eng.cores[0].tick(&mut || op.take()) {
        CoreAction::Request(req) => req,
        other => panic!("core issued no L2 request: {other:?}"),
    };
    eng.handle_request(&mut f, req, Cycle(0));
    let mut clock = 0;
    let mut moved = false;
    for _ in 0..100_000 {
        // The instant step 2 is issued, yank the line to the local
        // cluster — every step-2 probe now misses a resident line,
        // which is exactly the racing-migration retry condition.
        if !moved && eng.txns.get(0).is_some_and(|t| t.step == 2) {
            eng.l2.remove(line);
            eng.l2.insert_at(line, local);
            moved = true;
        }
        if let Some((due, ev)) = f.pop_event() {
            clock = clock.max(due);
            eng.handle_event(&mut f, ev, Cycle(clock));
            continue;
        }
        let sent = f.take_sent();
        if sent.is_empty() {
            break;
        }
        clock += 1;
        for req in sent {
            eng.handle_delivered(&mut f, deliver(&req, clock), Cycle(clock));
        }
    }
    assert!(eng.txns.is_empty(), "transaction completed");
    assert_eq!(eng.counters.search_retries, 1, "the race forced a retry");
    assert_eq!(eng.counters.l2_hits, 1, "the retry found the line");
    let total: u64 = eng.counters.phase_cycles().iter().sum();
    assert_eq!(total, eng.counters.hit_latency_sum);
}

#[test]
fn shared_read_triggers_replication_into_the_local_cluster() {
    let (mut eng, mut f) = harness(Scheme::CmpSnuca3d, |b| b.replication(true));
    let reader = CpuId::from_index(0);
    let line = ADDR.line(eng.line_bytes);
    let remote = eng.plans[0].step2[0];
    eng.l2.insert_at(line, remote);
    // A second sharer makes the line read-shared (the trigger condition).
    eng.dir.access(CpuId::from_index(1), line, DirAccess::Read);
    let local = eng.plans[0].local;
    let log = read(&mut eng, &mut f, reader, ADDR);
    assert_eq!(eng.counters.replicas_created, 1);
    assert!(log.iter().any(|t| matches!(t, Token::ReplicaFill { .. })));
    assert!(
        eng.l2.has_copy_at(line, local),
        "the replica landed in the reader's cluster"
    );
    assert_eq!(eng.l2.locate(line), Some(remote), "the primary stays put");
}
